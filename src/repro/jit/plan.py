"""Compiled replay plans: preallocated-arena execution of a fused tape.

A :class:`CompiledPlan` turns a :class:`~repro.jit.tape.StepTape` into
straight-line NumPy with every buffer preallocated:

- **Arena** — one buffer per live tape slot (forward activations), one per
  gradient-carrying slot (adjoints), plus per-op scratch; all allocated at
  build time and reused every replay, so the steady-state path performs
  zero per-step data allocation and — because no :class:`Tensor` is ever
  constructed — zero graph-node construction.
- **Fused kernels** — elementwise chains run via ufunc ``out=`` into the
  arena; fused linear layers are single BLAS calls on the effective weight;
  dead branches the interpreter computes unconditionally (mask-side
  gradients, first-layer input gradients, ``g * other`` products for
  non-differentiable operands) are eliminated at build time.
- **Batched-adjoint backward** — :meth:`gradient` seeds the step's
  per-sample weights and accumulates straight into one flat ``(d,)``
  vector through parameter views (no per-parameter concatenation);
  :meth:`per_sample` seeds ones and keeps the batch axis at every
  parameter, emitting the whole per-sample O-matrix as one
  ``einsum``/matmul family that feeds matrix-free SR directly.

Parameter slots are rebound from ``Parameter.data`` on every replay, so
in-place optimizer updates need no re-trace; shape/dtype/identity changes
are caught by the compiler's guards. Value-level input validation (e.g.
the binary-configuration check) runs only at trace time — replay assumes
inputs drawn from the same pipeline as the traced batch.
"""

from __future__ import annotations

import numpy as np

from repro.jit.errors import TapeDivergenceError, TraceError
from repro.jit.fuse import FusedLinear, fuse_tape
from repro.jit.tape import StepTape

__all__ = ["CompiledPlan"]

_LOG2 = float(np.log(2.0))

_VIEW_OPS = ("reshape", "transpose")

_PS_GENERIC_OPS = frozenset(
    ("add", "mul", "neg", "truediv", "pow", "exp", "log", "sqrt", "abs",
     "tanh", "relu", "sigmoid", "log_sigmoid", "softplus", "log_cosh",
     "log1p", "expm1", "sin", "cos", "sum", "reshape", "transpose",
     "bernoulli_log_prob", "matmul")
)

_UNARY_UFUNC = {
    "exp": np.exp, "log": np.log, "sqrt": np.sqrt, "abs": np.abs,
    "tanh": np.tanh, "log1p": np.log1p, "expm1": np.expm1,
    "sin": np.sin, "cos": np.cos,
}


def _norm_axes(axis, ndim):
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, (int, np.integer)):
        axis = (int(axis),)
    return tuple(a % ndim for a in axis)


def _reduce_axes(from_shape, to_shape):
    """Axes to sum so a ``from_shape`` contribution collapses to
    ``to_shape`` (the closed form of ``tensor._unbroadcast``); ``None``
    when the shapes already match."""
    from_shape, to_shape = tuple(from_shape), tuple(to_shape)
    if from_shape == to_shape:
        return None
    lead = len(from_shape) - len(to_shape)
    return tuple(range(lead)) + tuple(
        lead + i for i, d in enumerate(to_shape) if d == 1 and from_shape[lead + i] != 1
    )


class CompiledPlan:
    """Executable compiled form of one traced step.

    Built by :class:`repro.jit.compiler.StepCompiler`; not constructed
    directly in normal use. ``params`` fixes the flat-gradient layout
    (``model.parameters()`` order) and may be a superset of the parameters
    the tape touches — untouched coordinates stay zero.
    """

    def __init__(self, tape: StepTape, params):
        self.tape = tape
        self.params = list(params)
        self._nodes, self._dead = fuse_tape(tape)
        self.batch = int(tape.input_shape[0])

        self.arena_bytes = 0
        self._vals: list = [None] * tape.n_slots
        self._grads: list = [None] * tape.n_slots
        self._written = [False] * tape.n_slots
        self._aux: dict[int, dict] = {}  # node.index -> kernel state
        self._binders = []  # per-replay leaf rebinding closures
        self._fsteps = []  # forward closures, execution order
        self._ps_steps = None  # per-sample backward (built lazily)
        self._ps_error: TraceError | None = None
        self._ps_ones: np.ndarray | None = None
        self._O: np.ndarray | None = None
        self._forward_ready = False

        self._leaves = {leaf.slot: leaf for leaf in tape.leaves}
        self._shapes = {leaf.slot: tuple(leaf.shape) for leaf in tape.leaves}
        for op in tape.ops:
            self._shapes[op.slot] = tuple(op.shape)
        self._rec = {leaf.slot: leaf.requires_grad for leaf in tape.leaves}
        for op in tape.ops:
            self._rec[op.slot] = op.requires_grad

        offsets, off = {}, 0
        for p in self.params:
            offsets[id(p)] = (off, p.data.size, tuple(p.data.shape))
            off += p.data.size
        self.n_params = off
        self._offsets = offsets
        self._grad_flat = self._alloc((off,))
        # Zeroed once at build, never per sweep: regions no backward step
        # writes (parameters dead in the traced graph) must read as zero in
        # every gradient() result.
        self._grad_flat.fill(0.0)
        for leaf in tape.leaves:
            if leaf.kind == "param" and id(leaf.param) not in offsets:
                raise TraceError(
                    "traced step consumed a Parameter that is not in the "
                    "plan's parameter list — cannot lay out its gradient"
                )

        self._bind_leaves()
        for node in self._nodes:
            self._fsteps.append(self._forward_step(node))
        self._bsteps = self._build_backward(per_sample=False)
        out_shape = self._shapes[tape.out_slot]
        if self._grads[tape.out_slot] is None:
            self._grad_buf(tape.out_slot, out_shape)
        self.out_shape = out_shape

    # -- arena ---------------------------------------------------------------------

    def _alloc(self, shape, dtype=np.float64):
        buf = np.empty(shape, dtype=dtype)
        self.arena_bytes += buf.nbytes
        return buf

    # -- leaves ----------------------------------------------------------------------

    def _bind_leaves(self) -> None:
        vals = self._vals
        for leaf in self.tape.leaves:
            slot = leaf.slot
            if leaf.kind == "const":
                vals[slot] = leaf.array
            elif leaf.kind == "param":

                def bind(x, *, slot=slot, param=leaf.param):
                    vals[slot] = param.data

                self._binders.append(bind)
            else:  # input

                def bind(x, *, slot=slot):
                    vals[slot] = x

                self._binders.append(bind)

    def _is_param(self, slot: int) -> bool:
        leaf = self._leaves.get(slot)
        return leaf is not None and leaf.kind == "param"

    # -- forward kernels ------------------------------------------------------------

    def _forward_step(self, node):
        vals = self._vals
        op = node.op
        o = node.slot
        ins = node.inputs

        if op in _VIEW_OPS:
            # Views are re-derived per replay (their base may be a rebound
            # leaf); a view costs an array header, not a data buffer.
            i = ins[0]
            if op == "reshape":
                shape = tuple(node.attrs["shape"])

                def step():
                    vals[o] = vals[i].reshape(shape)

            else:
                axes = node.attrs["axes"]

                def step():
                    vals[o] = vals[i].transpose(axes)

            return step

        out = vals[o] = self._alloc(node.shape, node.dtype)

        if isinstance(node, FusedLinear):
            src, w, b = node.src_slot, node.w_slot, node.bias_slot
            mask = node.mask
            if mask is not None:
                weff = self._alloc(mask.shape)
                self._aux[node.index] = {"weff": lambda: weff}

                def step():
                    np.multiply(vals[w], mask, out=weff)
                    np.matmul(vals[src], weff.T, out=out)
                    if b is not None:
                        np.add(out, vals[b], out=out)

            else:
                self._aux[node.index] = {"weff": lambda: vals[w]}

                def step():
                    np.matmul(vals[src], vals[w].T, out=out)
                    if b is not None:
                        np.add(out, vals[b], out=out)

            return step

        if op == "add":
            a, b = ins
            return lambda: np.add(vals[a], vals[b], out=out)
        if op == "mul":
            a, b = ins
            return lambda: np.multiply(vals[a], vals[b], out=out)
        if op == "neg":
            (a,) = ins
            return lambda: np.negative(vals[a], out=out)
        if op == "truediv":
            a, b = ins
            return lambda: np.divide(vals[a], vals[b], out=out)
        if op == "pow":
            (a,) = ins
            e = node.attrs["exponent"]
            return lambda: np.power(vals[a], e, out=out)
        if op == "matmul":
            a, b = ins
            return lambda: np.matmul(vals[a], vals[b], out=out)
        if op == "relu":
            (a,) = ins
            return lambda: np.maximum(vals[a], 0.0, out=out)
        if op in _UNARY_UFUNC:
            (a,) = ins
            fn = _UNARY_UFUNC[op]
            return lambda: fn(vals[a], out=out)
        if op == "sigmoid":
            (a,) = ins
            s = self._alloc(node.shape)
            neg = self._alloc(node.shape, bool)

            def step():
                x = vals[a]
                np.abs(x, out=s)
                np.negative(s, out=s)
                np.exp(s, out=s)  # s = e^{-|x|}
                np.add(s, 1.0, out=out)  # out = 1 + e^{-|x|}
                np.divide(s, out, out=s)  # branch for x < 0
                np.divide(1.0, out, out=out)  # branch for x >= 0
                np.less(x, 0.0, out=neg)
                np.copyto(out, s, where=neg)

            return step
        if op in ("log_sigmoid", "softplus"):
            (a,) = ins
            s = self._alloc(node.shape)
            clamp = np.minimum if op == "log_sigmoid" else np.maximum
            combine = np.subtract if op == "log_sigmoid" else np.add

            def step():
                x = vals[a]
                np.abs(x, out=s)
                np.negative(s, out=s)
                np.exp(s, out=s)
                np.log1p(s, out=s)  # s = log1p(e^{-|x|})
                clamp(x, 0.0, out=out)
                combine(out, s, out=out)

            return step
        if op == "log_cosh":
            (a,) = ins
            s = self._alloc(node.shape)

            def step():
                np.abs(vals[a], out=out)
                np.multiply(out, -2.0, out=s)
                np.exp(s, out=s)
                np.log1p(s, out=s)
                np.add(out, s, out=out)
                np.subtract(out, _LOG2, out=out)

            return step
        if op == "bernoulli_log_prob":
            # Fused form of ``t log sigma(z) + (1-t) log sigma(-z)``: using
            # ``log sigma(z) - log sigma(-z) = z`` the elementwise chain
            # collapses to ``t*z - softplus(z)`` — one exp and one log1p
            # instead of the interpreter's two-branch evaluation (values
            # agree to rounding; the tolerance is pinned in tests).
            z, t = ins
            s = self._alloc(node.shape)
            ez = self._alloc(node.shape)
            sig = self._alloc(node.shape)
            neg = self._alloc(node.shape, bool)
            self._aux[node.index] = {"sig": sig}

            def step():
                zz, tt = vals[z], vals[t]
                np.abs(zz, out=s)
                np.negative(s, out=s)
                np.exp(s, out=ez)  # ez = e^{-|z|}
                np.log1p(ez, out=s)
                np.maximum(zz, 0.0, out=out)
                np.add(out, s, out=out)  # out = softplus(z)
                np.multiply(tt, zz, out=s)
                np.subtract(s, out, out=out)
                # sigma(z) from the shared e^{-|z|}: 1/(1+e) for z >= 0,
                # e/(1+e) for z < 0 — no further transcendentals.
                np.add(ez, 1.0, out=s)
                np.divide(1.0, s, out=sig)
                np.multiply(sig, ez, out=s)
                np.less(zz, 0.0, out=neg)
                np.copyto(sig, s, where=neg)

            return step
        if op == "sum":
            (a,) = ins
            axis = node.attrs["axis"]
            keepdims = node.attrs["keepdims"]
            return lambda: np.sum(vals[a], axis=axis, keepdims=keepdims, out=out)

        raise TraceError(
            f"op {op!r} (recorded at {node.call_site}) has no compiled kernel; "
            "this step cannot be replayed"
        )

    # -- backward construction -----------------------------------------------------

    def _grad_buf(self, slot: int, shape):
        """Get-or-create the adjoint buffer for a slot; parameter slots are
        views into the flat gradient vector."""
        if self._grads[slot] is None:
            leaf = self._leaves.get(slot)
            if leaf is not None and leaf.kind == "param":
                off, size, pshape = self._offsets[id(leaf.param)]
                self._grads[slot] = self._grad_flat[off:off + size].reshape(pshape)
            else:
                self._grads[slot] = self._alloc(shape)
        return self._grads[slot]

    def _acc(self, slot, contrib_shape, per_sample=False, call_site=""):
        """Closure accumulating a ``contrib_shape`` adjoint term into a
        slot, reducing broadcast axes (the interpreter's ``_unbroadcast``)."""
        target_shape = self._shapes[slot]
        buf = self._grad_buf(slot, target_shape)
        written = self._written
        axes = _reduce_axes(contrib_shape, target_shape)
        if per_sample and axes is not None and 0 in axes:
            raise TraceError(
                f"per-sample compilation would contract the batch axis into "
                f"a shape-{target_shape} operand (recorded at {call_site})"
            )
        if axes is None:

            def acc(val):
                if written[slot]:
                    np.add(buf, val, out=buf)
                else:
                    np.copyto(buf, val)
                    written[slot] = True

        else:

            def acc(val):
                v = val.sum(axis=axes).reshape(buf.shape)
                if written[slot]:
                    np.add(buf, v, out=buf)
                else:
                    np.copyto(buf, v)
                    written[slot] = True

        return acc

    def _build_backward(self, per_sample: bool):
        """Compile the adjoint sweep (reverse node order).

        The scalar and per-sample sweeps share every propagation kernel —
        on a batch-diagonal tape the per-sample adjoints *are* the scalar
        adjoints under a ones seed — and differ only at parameter
        accumulation: scalar mode contracts the batch into the flat
        gradient, per-sample mode keeps it and writes O-matrix blocks.
        """
        steps = []
        if per_sample:
            counts: dict[int, int] = {}
            for node in self._nodes:
                slots = ((node.w_slot, node.bias_slot)
                         if isinstance(node, FusedLinear) else node.inputs)
                for s in slots:
                    if s is not None and self._is_param(s):
                        counts[s] = counts.get(s, 0) + 1
            if any(c > 1 for c in counts.values()):
                raise TraceError(
                    "per-sample compilation requires each parameter to be "
                    "consumed exactly once (shared weights would overwrite "
                    "their O block)"
                )
        for node in reversed(self._nodes):
            if not node.requires_grad:
                continue
            self._grad_buf(node.slot, node.shape)
            if isinstance(node, FusedLinear):
                steps.append(self._linear_backward(node, per_sample))
                continue
            rec = [s for s in node.inputs if self._rec.get(s, False)]
            if not rec:
                continue
            if per_sample:
                if node.op not in _PS_GENERIC_OPS:
                    raise TraceError(
                        f"per-sample compilation does not support op "
                        f"{node.op!r} (recorded at {node.call_site})"
                    )
                for s in rec:
                    if self._is_param(s):
                        raise TraceError(
                            f"per-sample compilation requires parameters to "
                            f"enter through fused linear layers; op "
                            f"{node.op!r} at {node.call_site} consumes one "
                            "directly"
                        )
            step = self._generic_backward(node, rec, per_sample)
            if step is not None:
                steps.append(step)
        return steps

    def _linear_backward(self, node: FusedLinear, per_sample: bool):
        vals = self._vals
        grads = self._grads
        written = self._written
        o = node.slot
        src, w, b = node.src_slot, node.w_slot, node.bias_slot
        mask = node.mask
        weff = self._aux[node.index]["weff"]
        B, _ = node.shape
        in_dim = self._shapes[src][1]
        x_rec = self._rec.get(src, False)
        if x_rec:
            acc_src = self._acc(src, (B, in_dim), per_sample, node.call_site)
            sx = self._alloc((B, in_dim))

        if not per_sample:
            woff, wsize, wshape = self._offsets[id(self._leaves[w].param)]
            wview = self._grad_flat[woff:woff + wsize].reshape(wshape)
            sw = self._alloc(wshape)
            if b is not None:
                boff, bsize, bshape = self._offsets[id(self._leaves[b].param)]
                bview = self._grad_flat[boff:boff + bsize].reshape(bshape)
                sb = self._alloc(bshape)

            def step():
                if not written[o]:
                    return
                g = grads[o]
                if b is not None:
                    # First write per sweep lands directly in the flat-grad
                    # view (no memset, no extra add pass); only shared
                    # parameters take the accumulate branch.
                    if written[b]:
                        np.sum(g, axis=0, out=sb)
                        np.add(bview, sb, out=bview)
                    else:
                        np.sum(g, axis=0, out=bview)
                        written[b] = True
                if written[w]:
                    np.matmul(g.T, vals[src], out=sw)
                    if mask is not None:
                        np.multiply(sw, mask, out=sw)
                    np.add(wview, sw, out=wview)
                else:
                    np.matmul(g.T, vals[src], out=wview)
                    if mask is not None:
                        np.multiply(wview, mask, out=wview)
                    written[w] = True
                if x_rec:
                    np.matmul(g, weff(), out=sx)
                    acc_src(sx)

            return step

        # Per-sample: keep the batch axis at the parameters — one einsum
        # per layer writes the layer's O block in place.
        ow_view = self._o_block(w)
        ob_view = self._o_block(b) if b is not None else None

        def step():
            if not written[o]:
                return
            g = grads[o]
            np.einsum("bo,bi->boi", g, vals[src], out=ow_view)
            if mask is not None:
                np.multiply(ow_view, mask, out=ow_view)
            if ob_view is not None:
                np.copyto(ob_view, g)
            if x_rec:
                np.matmul(g, weff(), out=sx)
                acc_src(sx)

        return step

    def _o_block(self, slot: int):
        """View of the O matrix covering one parameter, shaped
        ``(B, *param_shape)``. Splitting the contiguous last axis of the
        column slice is always expressible as a view; assert it."""
        off, size, pshape = self._offsets[id(self._leaves[slot].param)]
        block = self._O[:, off:off + size].reshape(self.batch, *pshape)
        if not np.shares_memory(block, self._O):  # pragma: no cover
            raise TraceError("O-matrix block view would copy; cannot compile per-sample")
        return block

    def _generic_backward(self, node, rec, per_sample):
        vals = self._vals
        grads = self._grads
        written = self._written
        o = node.slot
        op = node.op
        ins = node.inputs
        site = node.call_site

        def guard(fn):
            def step():
                if written[o]:
                    fn()

            return step

        if op in _VIEW_OPS:
            (a,) = ins
            in_shape = self._shapes[a]
            acc = self._acc(a, in_shape, per_sample, site)
            if op == "reshape":
                return guard(lambda: acc(grads[o].reshape(in_shape)))
            axes = node.attrs["axes"]
            inv = None if axes is None else tuple(int(i) for i in np.argsort(axes))
            return guard(lambda: acc(grads[o].transpose(inv)))

        if op == "sum":
            (a,) = ins
            in_shape = self._shapes[a]
            axis, keepdims = node.attrs["axis"], node.attrs["keepdims"]
            axes = _norm_axes(axis, len(in_shape))
            if per_sample and 0 in axes:
                raise TraceError(
                    f"per-sample compilation cannot sum over the batch axis "
                    f"(recorded at {site})"
                )
            keep_shape = tuple(1 if i in axes else d for i, d in enumerate(in_shape))
            acc = self._acc(a, in_shape, per_sample, site)
            return guard(lambda: acc(grads[o].reshape(keep_shape)))

        if op == "bernoulli_log_prob":
            z, t = ins
            if z not in rec:
                return None
            sig = self._aux[node.index]["sig"]
            s = self._alloc(node.shape)
            acc = self._acc(z, node.shape, per_sample, site)

            def fb():
                np.subtract(vals[t], sig, out=s)
                np.multiply(s, grads[o], out=s)
                acc(s)

            return guard(fb)

        if op == "matmul":
            a, b = ins
            if per_sample and self._rec.get(b, False):
                raise TraceError(
                    f"per-sample compilation cannot differentiate the "
                    f"batch-contracting operand of matmul at {site}"
                )
            fns = []
            if self._rec.get(a, False):
                sa_shape = np.broadcast_shapes(
                    node.shape[:-2], self._shapes[b][:-2]
                ) + (node.shape[-2], self._shapes[b][-2])
                sa = self._alloc(sa_shape)
                acc_a = self._acc(a, sa_shape, per_sample, site)

                def fa():
                    np.matmul(grads[o], np.swapaxes(vals[b], -1, -2), out=sa)
                    acc_a(sa)

                fns.append(fa)
            if self._rec.get(b, False):
                sb_shape = np.broadcast_shapes(
                    node.shape[:-2], self._shapes[a][:-2]
                ) + (self._shapes[a][-1], node.shape[-1])
                sb = self._alloc(sb_shape)
                acc_b = self._acc(b, sb_shape, per_sample, site)

                def fb():
                    np.matmul(np.swapaxes(vals[a], -1, -2), grads[o], out=sb)
                    acc_b(sb)

                fns.append(fb)
            if len(fns) == 1:
                return guard(fns[0])
            return guard(lambda: (fns[0](), fns[1]()))

        # Elementwise family: one scratch of the output's shape per term.
        def term(target, compute):
            s = self._alloc(node.shape)
            acc = self._acc(target, node.shape, per_sample, site)

            def fn():
                compute(s)
                acc(s)

            return fn

        fns = []
        if op == "add":
            for a in rec:
                acc = self._acc(a, node.shape, per_sample, site)
                fns.append(lambda acc=acc: acc(grads[o]))
        elif op == "mul":
            a, b = ins
            if self._rec.get(a, False):
                fns.append(term(a, lambda s, b=b: np.multiply(grads[o], vals[b], out=s)))
            if self._rec.get(b, False):
                fns.append(term(b, lambda s, a=a: np.multiply(grads[o], vals[a], out=s)))
        elif op == "neg":
            fns.append(term(ins[0], lambda s: np.negative(grads[o], out=s)))
        elif op == "truediv":
            a, b = ins
            if self._rec.get(a, False):
                fns.append(term(a, lambda s, b=b: np.divide(grads[o], vals[b], out=s)))
            if self._rec.get(b, False):

                def fdiv(s, b=b):
                    np.multiply(grads[o], vals[o], out=s)
                    np.divide(s, vals[b], out=s)
                    np.negative(s, out=s)

                fns.append(term(b, fdiv))
        elif op == "pow":
            (a,) = ins
            e = node.attrs["exponent"]

            def fpow(s, a=a, e=e):
                np.power(vals[a], e - 1.0, out=s)
                np.multiply(s, grads[o], out=s)
                np.multiply(s, e, out=s)

            fns.append(term(a, fpow))
        elif op == "relu":
            (a,) = ins
            mb = self._alloc(node.shape, bool)

            def frelu(s, a=a):
                np.greater(vals[a], 0.0, out=mb)
                np.multiply(grads[o], mb, out=s)

            fns.append(term(a, frelu))
        elif op == "exp":
            fns.append(term(ins[0], lambda s: np.multiply(grads[o], vals[o], out=s)))
        elif op == "expm1":

            def fexpm1(s):
                np.add(vals[o], 1.0, out=s)
                np.multiply(s, grads[o], out=s)

            fns.append(term(ins[0], fexpm1))
        elif op == "log":
            (a,) = ins
            fns.append(term(a, lambda s, a=a: np.divide(grads[o], vals[a], out=s)))
        elif op == "log1p":
            (a,) = ins

            def flog1p(s, a=a):
                np.add(vals[a], 1.0, out=s)
                np.divide(grads[o], s, out=s)

            fns.append(term(a, flog1p))
        elif op == "sqrt":

            def fsqrt(s):
                np.divide(grads[o], vals[o], out=s)
                np.multiply(s, 0.5, out=s)

            fns.append(term(ins[0], fsqrt))
        elif op == "abs":
            (a,) = ins

            def fabs(s, a=a):
                np.sign(vals[a], out=s)
                np.multiply(s, grads[o], out=s)

            fns.append(term(a, fabs))
        elif op == "tanh":

            def ftanh(s):
                np.multiply(vals[o], vals[o], out=s)
                np.subtract(1.0, s, out=s)
                np.multiply(s, grads[o], out=s)

            fns.append(term(ins[0], ftanh))
        elif op == "sigmoid":

            def fsig(s):
                np.subtract(1.0, vals[o], out=s)
                np.multiply(s, vals[o], out=s)
                np.multiply(s, grads[o], out=s)

            fns.append(term(ins[0], fsig))
        elif op == "log_sigmoid":

            def flsig(s):
                np.exp(vals[o], out=s)  # sigma(z) = e^{log sigma(z)}
                np.subtract(1.0, s, out=s)
                np.multiply(s, grads[o], out=s)

            fns.append(term(ins[0], flsig))
        elif op == "softplus":

            def fsp(s):
                np.negative(vals[o], out=s)
                np.exp(s, out=s)
                np.subtract(1.0, s, out=s)  # sigma(x) = 1 - e^{-softplus(x)}
                np.multiply(s, grads[o], out=s)

            fns.append(term(ins[0], fsp))
        elif op == "log_cosh":
            (a,) = ins

            def flc(s, a=a):
                np.tanh(vals[a], out=s)
                np.multiply(s, grads[o], out=s)

            fns.append(term(a, flc))
        elif op == "sin":
            (a,) = ins

            def fsin(s, a=a):
                np.cos(vals[a], out=s)
                np.multiply(s, grads[o], out=s)

            fns.append(term(a, fsin))
        elif op == "cos":
            (a,) = ins

            def fcos(s, a=a):
                np.sin(vals[a], out=s)
                np.multiply(s, grads[o], out=s)
                np.negative(s, out=s)

            fns.append(term(a, fcos))
        else:
            raise TraceError(
                f"op {op!r} (recorded at {site}) has no compiled backward kernel"
            )

        if not fns:
            return None
        if len(fns) == 1:
            return guard(fns[0])
        return guard(lambda: [fn() for fn in fns])

    # -- execution -------------------------------------------------------------------

    def _check_input(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != self.tape.input_shape:
            raise ValueError(
                f"compiled plan expects input shape {self.tape.input_shape}, "
                f"got {x.shape} — the compiler's guards should have re-traced"
            )
        return x

    def forward(self, x) -> np.ndarray:
        """Replay the traced forward on a new batch; returns a copy of the
        output array."""
        x = self._check_input(x)
        for bind in self._binders:
            bind(x)
        for step in self._fsteps:
            step()
        self._forward_ready = True
        return self._vals[self.tape.out_slot].copy()

    def _seed_backward(self, seed) -> None:
        # No memset: every sweep runs the same straight-line steps, so the
        # set of written parameter regions is identical each time — first
        # writes overwrite (copyto-first in the accumulators), and regions
        # no step ever touches keep their build-time zeros.
        if not self._forward_ready:
            raise RuntimeError("CompiledPlan backward invoked before forward")
        out_slot = self.tape.out_slot
        written = self._written
        for i in range(len(written)):
            written[i] = False
        np.copyto(self._grads[out_slot], seed)
        written[out_slot] = True

    def gradient(self, seed) -> np.ndarray:
        """Compiled adjoint sweep: seed the output adjoint (e.g. the VQMC
        surrogate's weights) and return the flat ``(d,)`` gradient. The
        returned buffer is owned by the plan and overwritten by the next
        sweep."""
        seed = np.asarray(seed, dtype=np.float64)
        if seed.shape != self.out_shape:
            raise ValueError(f"seed shape {seed.shape} != output shape {self.out_shape}")
        self._seed_backward(seed)
        for step in self._bsteps:
            step()
        return self._grad_flat

    def per_sample(self, x):
        """Replay forward plus the batched per-sample adjoint: returns
        ``(log_psi (B,), O (B, d))``. ``O`` is owned by the plan and
        overwritten by the next call. Raises :class:`TraceError` for tapes
        that are not batch-diagonal (the error is sticky — callers should
        fall back to the interpreter for good)."""
        if self._ps_error is not None:
            raise self._ps_error
        if self._ps_steps is None:
            try:
                self._O = np.zeros((self.batch, self.n_params))
                self.arena_bytes += self._O.nbytes
                self._ps_steps = self._build_backward(per_sample=True)
                self._ps_ones = np.ones(self.out_shape)
            except TraceError as exc:
                self._O = None
                self._ps_error = exc
                raise
        lp = self.forward(x)
        self._seed_backward(self._ps_ones)
        for step in self._ps_steps:
            step()
        return lp, self._O

    # -- verification -----------------------------------------------------------------

    def selftest(self, rtol: float = 1e-9, atol: float = 1e-12) -> None:
        """Replay the traced batch and compare every live op output against
        the interpreter's recorded arrays; raises
        :class:`TapeDivergenceError` at the first mismatch."""
        self.forward(self.tape.x)
        for node in self._nodes:
            if node.ref is None:
                continue
            got = self._vals[node.slot]
            if not np.allclose(got, node.ref, rtol=rtol, atol=atol):
                diff = float(np.max(np.abs(np.asarray(got) - node.ref)))
                raise TapeDivergenceError(
                    f"compiled replay diverged from the interpreter by {diff:.3e}",
                    op_index=node.index, op=node.op, call_site=node.call_site,
                )
