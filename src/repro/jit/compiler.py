"""Guarded step compilation: trace once, replay until a guard fails.

:class:`StepCompiler` owns the trace → fuse → plan pipeline for one model.
Each call to :meth:`plan_for` checks the current **guard key** — input
shape and dtype plus the parameter structure (object identity, shape,
dtype per parameter) — against the cached plan:

- key matches → cache hit, replay the existing plan (parameter *values*
  are read live from ``Parameter.data``, so optimizer updates never miss);
- key differs → guard miss, transparently re-trace and re-compile;
- the step is untraceable (:class:`TraceError`) → the caller falls back to
  the interpreter.

Every freshly built plan is verified before first use: the forward replay
is compared node-by-node against the interpreter's traced activations, and
the compiled gradient against an autograd backward on the traced graph.
Divergence raises :class:`TapeDivergenceError` with the offending op index
and call site. With ``verify_replay=True`` the comparison re-runs on
*every* replay (slow; for tests and debugging data-dependent control flow).

Metrics (when a registry is attached): counters ``jit.trace``,
``jit.cache_hit``, ``jit.guard_miss``; gauge ``jit.arena_bytes``.
"""

from __future__ import annotations

import numpy as np

from repro.jit.errors import TapeDivergenceError, TraceError
from repro.jit.plan import CompiledPlan
from repro.jit.tape import trace

__all__ = ["StepCompiler"]

#: compiled vs interpreted agreement bound asserted after every (re)trace —
#: fusion may reorder float ops, so bit-identity is not guaranteed, but the
#: kernels mirror the interpreter's stable formulas closely enough that the
#: test suite pins this at 1e-10.
VERIFY_RTOL = 1e-9
VERIFY_ATOL = 1e-12


class StepCompiler:
    """Trace-and-replay compiler for a model's ``log_psi`` hot path.

    Parameters
    ----------
    model:
        The wavefunction (or any callable-owning module); the traced
        function defaults to ``model.log_psi``.
    metrics:
        Optional :class:`repro.obs.Metrics` registry for cache-hit /
        guard-miss / arena-size instrumentation.
    tracer:
        Optional :class:`repro.obs.Tracer`; tracing and build-time
        verification run inside a ``jit.trace`` span.
    verify_replay:
        Compare every replay against a fresh interpreted run (slow).
    fn:
        Override the traced callable (signature ``fn(x) -> Tensor``).

    Not thread-safe: use one compiler per driver rank.
    """

    def __init__(self, model, metrics=None, tracer=None, verify_replay=False,
                 fn=None):
        self.model = model
        self.metrics = metrics
        self.tracer = tracer
        self.verify_replay = verify_replay
        self._fn = fn if fn is not None else model.log_psi
        self._plan: CompiledPlan | None = None
        self._guard = None
        self.stats = {"traces": 0, "cache_hits": 0, "guard_misses": 0}

    # -- guards ------------------------------------------------------------------

    def _check_overrides(self) -> None:
        """A compiled plan replays the *class* implementation captured at
        trace time; an instance-level override of an amplitude method (tests
        and ablations monkeypatch these) would be silently ignored, so
        refuse to compile such models."""
        d = getattr(self.model, "__dict__", {})
        for name in ("log_psi", "log_psi_and_grads", "forward"):
            if name in d:
                raise TraceError(
                    f"model instance overrides {name!r}; compilation traces "
                    "the class implementation and would ignore the override"
                )

    def _guard_key(self, x: np.ndarray):
        return (
            x.shape,
            str(x.dtype),
            tuple(
                (id(p), p.data.shape, str(p.data.dtype))
                for p in self.model.parameters()
            ),
        )

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    # -- compilation --------------------------------------------------------------

    def plan_for(self, x) -> CompiledPlan:
        """Return a verified plan for batch ``x``, re-tracing on guard miss.

        Raises :class:`TraceError` when the step cannot be compiled and
        :class:`TapeDivergenceError` when verification fails.
        """
        self._check_overrides()
        x = np.asarray(x)
        key = self._guard_key(x)
        if self._plan is not None and key == self._guard:
            self.stats["cache_hits"] += 1
            self._count("jit.cache_hit")
            if self.verify_replay:
                self._plan = self._verified_replay_plan(self._plan, x)
            return self._plan
        if self._plan is not None:
            self.stats["guard_misses"] += 1
            self._count("jit.guard_miss")
        self._plan = self._compile(x)
        self._guard = key
        return self._plan

    def per_sample_plan(self, x) -> CompiledPlan:
        """Like :meth:`plan_for`, but additionally requires (and eagerly
        builds) the batched per-sample O-matrix path."""
        plan = self.plan_for(x)
        if plan._ps_error is not None:
            raise plan._ps_error
        if plan._ps_steps is None:
            # Build and verify the per-sample sweep on the traced batch.
            lp, o = plan.per_sample(plan.tape.x)
            self._verify_per_sample(plan, lp, o)
        return plan

    def _compile(self, x: np.ndarray) -> CompiledPlan:
        span = (
            self.tracer.span("jit.trace", batch=int(np.asarray(x).shape[0]))
            if self.tracer is not None
            else _null_ctx()
        )
        with span:
            tape = trace(self._fn, x)
            plan = CompiledPlan(tape, self.model.parameters())
            plan.selftest()
            self._verify_gradient(plan)
            tape.release_refs()
        self.stats["traces"] += 1
        self._count("jit.trace")
        if self.metrics is not None:
            self.metrics.gauge("jit.arena_bytes").set(plan.arena_bytes)
        return plan

    # -- verification --------------------------------------------------------------

    def _verify_gradient(self, plan: CompiledPlan) -> None:
        """Compare the compiled adjoint sweep against an autograd backward
        on the traced graph (then free that graph)."""
        tape = plan.tape
        if tape.out is None or not tape.out.requires_grad:
            return
        rng = np.random.default_rng(0)
        seed = rng.standard_normal(plan.out_shape)
        self.model.zero_grad()
        tape.out.backward(
            seed if seed.shape != () else None, free_graph=True
        )
        want = self.model.flat_grad()
        self.model.zero_grad()
        got = plan.gradient(seed)
        if not np.allclose(got, want, rtol=VERIFY_RTOL, atol=VERIFY_ATOL):
            idx = int(np.argmax(np.abs(got - want)))
            raise TapeDivergenceError(
                "compiled gradient diverged from autograd "
                f"(max |Δ| = {np.max(np.abs(got - want)):.3e} at coordinate {idx})"
            )

    def _verify_per_sample(self, plan: CompiledPlan, lp, o) -> None:
        """Check the einsum O-matrix against the scalar sweep contracted
        with a probe vector: ``probe @ O == gradient(probe)``."""
        rng = np.random.default_rng(1)
        probe = rng.standard_normal(plan.out_shape)
        contracted = probe @ o
        direct = plan.gradient(probe)
        if not np.allclose(contracted, direct, rtol=VERIFY_RTOL, atol=1e-10):
            raise TapeDivergenceError(
                "per-sample O-matrix disagrees with the scalar adjoint sweep "
                f"(max |Δ| = {np.max(np.abs(contracted - direct)):.3e})"
            )

    def _verified_replay_plan(self, plan: CompiledPlan, x) -> CompiledPlan:
        """``verify_replay`` mode: replay, then re-run the interpreter on
        the same batch and localise any drift to the first divergent op."""
        got = plan.forward(x)
        from repro.tensor.tensor import no_grad

        with no_grad():
            want = self._fn(np.asarray(x, dtype=np.float64)).data
        if np.allclose(got, want, rtol=VERIFY_RTOL, atol=VERIFY_ATOL):
            return plan
        # Drift: re-trace to find where the recorded program and the live
        # program first disagree.
        fresh = trace(self._fn, x)
        old_ops = plan.tape.ops
        for i, new_op in enumerate(fresh.ops):
            if i >= len(old_ops):
                break
            old = old_ops[i]
            if plan._vals[old.slot] is None:
                continue  # folded into a fused node; checked via its output
            if (old.op, old.inputs, old.shape) != (new_op.op, new_op.inputs, new_op.shape):
                raise TapeDivergenceError(
                    f"traced program changed: op #{i} was {old.op!r}, "
                    f"interpreter now runs {new_op.op!r}",
                    op_index=i, op=new_op.op, call_site=new_op.call_site,
                )
            if not np.allclose(plan._vals[old.slot], new_op.ref,
                               rtol=VERIFY_RTOL, atol=VERIFY_ATOL):
                raise TapeDivergenceError(
                    "guarded replay drifted from the interpreter",
                    op_index=i, op=old.op, call_site=old.call_site,
                )
        raise TapeDivergenceError(
            "guarded replay drifted from the interpreter "
            f"(op count {len(old_ops)} -> {len(fresh.ops)})",
            op_index=min(len(old_ops), len(fresh.ops)),
        )


class _null_ctx:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False
