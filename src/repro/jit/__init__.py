"""Trace-and-fuse compiler for the VQMC step hot path.

The interpreter in :mod:`repro.tensor` rebuilds and re-walks a Python
autograd graph on every optimisation step. For a fixed model and batch
shape that graph is the *same straight-line program* every time — so this
package records it once and replays it as preallocated NumPy:

- :mod:`repro.jit.tape` — capture the op sequence from ``Tensor._make``
  into an immutable :class:`StepTape`;
- :mod:`repro.jit.fuse` — collapse (masked) linear-layer chains into
  single fused nodes with closed-form backwards;
- :mod:`repro.jit.plan` — :class:`CompiledPlan`: buffer-arena replay,
  flat-gradient adjoint sweep and the batched per-sample O-matrix;
- :mod:`repro.jit.compiler` — :class:`StepCompiler`: guard keys
  (shape/dtype/parameter structure), transparent re-trace on miss, and
  compiled-vs-interpreted verification.

Drivers normally reach this through ``VQMC.step(compile='auto'|'on'|'off')``
rather than using the compiler directly. See ``docs/performance.md``
("Compiled step") for the tracing model and guard semantics.
"""

from repro.jit.compiler import StepCompiler
from repro.jit.errors import TapeDivergenceError, TraceError
from repro.jit.fuse import FusedLinear, fuse_tape
from repro.jit.plan import CompiledPlan
from repro.jit.tape import StepTape, TapeOp, TapeRecorder, trace

__all__ = [
    "CompiledPlan",
    "FusedLinear",
    "StepCompiler",
    "StepTape",
    "TapeDivergenceError",
    "TapeOp",
    "TapeRecorder",
    "TraceError",
    "fuse_tape",
    "trace",
]
