"""Exception types for the trace-and-fuse compiler."""

from __future__ import annotations

__all__ = ["TraceError", "TapeDivergenceError"]


class TraceError(RuntimeError):
    """The step could not be traced or compiled.

    Raised for untraceable programs (ops without tape support, nested
    traces, outputs that bypass the tensor engine). Callers in ``'auto'``
    mode catch this and fall back to the interpreter.
    """


class TapeDivergenceError(RuntimeError):
    """Guarded replay detected drift between the tape and the program.

    The compiled plan replays a *recorded* op sequence; if the traced
    Python code takes a different path (data-dependent branch, mutated
    closure state), replayed values diverge from what the interpreter
    would produce. The error pinpoints the first divergent op.

    Attributes
    ----------
    op_index:
        Index of the first divergent op on the tape (``None`` when the op
        *sequence* itself changed before any value could be compared).
    op:
        Primitive name at that index (``"matmul"``, ``"relu"``, ...).
    call_site:
        ``file:line`` of the model code that recorded the op.
    """

    def __init__(
        self,
        message: str,
        op_index: int | None = None,
        op: str | None = None,
        call_site: str | None = None,
    ):
        where = ""
        if op_index is not None:
            where = f" (op #{op_index} {op or '?'} recorded at {call_site or '?'})"
        super().__init__(message + where)
        self.op_index = op_index
        self.op = op
        self.call_site = call_site
