"""Step tape capture: record one interpreted step's op sequence.

A :class:`TapeRecorder` hooks into ``Tensor._make`` (via
:func:`repro.tensor.set_tape_recorder`) and snapshots every primitive the
interpreter executes — op kind, input/output shapes, dtypes and parameter
bindings — into an immutable :class:`StepTape`. The tape is a straight-line
program over *slots* (one per tensor the step produced or consumed); leaves
are classified as

- ``param`` — a :class:`~repro.nn.module.Parameter`; replay reads its
  ``.data`` live each step, so in-place optimizer updates need no re-trace;
- ``input`` — a tensor whose buffer aliases the traced batch ``x``; replay
  rebinds these slots to the new batch;
- ``const`` — everything else (masks, literal scalars), captured by
  reference and assumed frozen for the lifetime of the plan.

Tracing runs the *real* interpreter — the traced call returns its normal
result, with a live autograd graph — so one extra interpreted step is the
entire capture cost.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.jit.errors import TraceError
from repro.tensor import functional as _functional
from repro.tensor import tensor as _tensor_mod
from repro.tensor.tensor import Tensor, set_tape_recorder, tape_recorder_state

__all__ = ["TapeLeaf", "TapeOp", "StepTape", "TapeRecorder", "trace"]

# Frames from these files are the engine itself, not the model code that
# invoked the primitive — skipped when attributing a call site.
_ENGINE_FILES = frozenset(
    f.__file__ for f in (_tensor_mod, _functional) if getattr(f, "__file__", None)
)


def _call_site() -> str:
    frame = sys._getframe(2)
    while frame is not None and frame.f_code.co_filename in _ENGINE_FILES:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


class TapeLeaf:
    """A graph leaf consumed by the traced step."""

    __slots__ = ("slot", "kind", "param", "array", "shape", "dtype", "requires_grad")

    def __init__(self, slot, kind, *, param=None, array=None, shape=None,
                 dtype=None, requires_grad=False):
        self.slot = slot
        self.kind = kind  # 'param' | 'input' | 'const'
        self.param = param
        self.array = array
        self.shape = shape
        self.dtype = dtype
        self.requires_grad = requires_grad

    def __repr__(self) -> str:
        return f"TapeLeaf(slot={self.slot}, kind={self.kind!r}, shape={self.shape})"


class TapeOp:
    """One recorded primitive: ``slot = op(*inputs, **attrs)``."""

    __slots__ = ("index", "op", "attrs", "inputs", "slot", "shape", "dtype",
                 "requires_grad", "call_site", "ref")

    def __init__(self, index, op, attrs, inputs, slot, shape, dtype,
                 requires_grad, call_site, ref):
        self.index = index
        self.op = op
        self.attrs = attrs
        self.inputs = inputs  # tuple of slot ids
        self.slot = slot
        self.shape = shape
        self.dtype = dtype
        self.requires_grad = requires_grad
        self.call_site = call_site
        #: the interpreter's output array for this op on the traced batch;
        #: kept until the plan's build-time self-test passes, then dropped.
        self.ref = ref

    def __repr__(self) -> str:
        return (
            f"TapeOp(#{self.index} {self.op} {tuple(self.inputs)} -> "
            f"slot {self.slot} {self.shape})"
        )


class StepTape:
    """Immutable straight-line record of one interpreted step."""

    __slots__ = ("ops", "leaves", "n_slots", "out_slot", "x", "out",
                 "input_shape", "input_dtype")

    def __init__(self, ops, leaves, n_slots, out_slot, x, out):
        self.ops = tuple(ops)
        self.leaves = tuple(leaves)
        self.n_slots = n_slots
        self.out_slot = out_slot
        self.x = x  # the traced batch (reference kept for the self-test)
        self.out = out  # traced output Tensor (live graph, for verification)
        self.input_shape = x.shape
        self.input_dtype = x.dtype

    @property
    def params(self):
        return [l.param for l in self.leaves if l.kind == "param"]

    def release_refs(self) -> None:
        """Drop traced activation arrays and the traced graph (after verification)."""
        for op in self.ops:
            op.ref = None
        self.out = None

    def __repr__(self) -> str:
        kinds = [l.kind for l in self.leaves]
        return (
            f"StepTape({len(self.ops)} ops, {kinds.count('param')} params, "
            f"{kinds.count('const')} consts, input {self.input_shape})"
        )


class TapeRecorder:
    """Observes ``Tensor._make`` and appends ops to an in-progress tape."""

    def __init__(self, x: np.ndarray):
        self.x = x
        self.ops: list[TapeOp] = []
        self.leaves: list[TapeLeaf] = []
        self.n_slots = 0
        self._slot_of = {}  # id(tensor) -> slot
        # Pin every observed tensor: intermediate outputs must stay alive so
        # CPython cannot recycle an id() the slot table still references.
        self._pin: list[Tensor] = []

    def _new_slot(self) -> int:
        slot = self.n_slots
        self.n_slots += 1
        return slot

    def _leaf(self, t: Tensor) -> int:
        from repro.nn.module import Parameter

        slot = self._new_slot()
        if isinstance(t, Parameter):
            leaf = TapeLeaf(slot, "param", param=t, shape=t.data.shape,
                            dtype=t.data.dtype, requires_grad=True)
        elif (
            t.data.shape == self.x.shape
            and t.data.dtype == self.x.dtype
            and np.shares_memory(t.data, self.x)
        ):
            # The whole-batch alias (e.g. ``F.as_tensor(x)`` or the targets
            # of ``bernoulli_log_prob``): replay rebinds it to the new batch.
            leaf = TapeLeaf(slot, "input", shape=t.data.shape,
                            dtype=t.data.dtype, requires_grad=t.requires_grad)
        else:
            leaf = TapeLeaf(slot, "const", array=t.data, shape=t.data.shape,
                            dtype=t.data.dtype, requires_grad=t.requires_grad)
        self.leaves.append(leaf)
        return slot

    def on_op(self, out: Tensor, parents, op: str, attrs, recorded: bool) -> None:
        if not op:
            raise TraceError(
                f"primitive without tape metadata encountered at {_call_site()}; "
                "ops must pass their name to Tensor._make to be traceable"
            )
        inputs = []
        for p in parents:
            slot = self._slot_of.get(id(p))
            if slot is None:
                slot = self._leaf(p)
                self._slot_of[id(p)] = slot
                self._pin.append(p)
            inputs.append(slot)
        slot = self._new_slot()
        self._slot_of[id(out)] = slot
        self._pin.append(out)
        self.ops.append(
            TapeOp(len(self.ops), op, dict(attrs or {}), tuple(inputs), slot,
                   out.data.shape, out.data.dtype, recorded, _call_site(),
                   out.data)
        )

    def slot_of(self, t: Tensor) -> int | None:
        return self._slot_of.get(id(t))


def trace(fn, x: np.ndarray) -> StepTape:
    """Run ``fn(x)`` under a recorder and return the captured tape.

    ``fn`` must consume the batch through the tensor engine and return a
    :class:`Tensor` produced by a traced op. The traced call runs the real
    interpreter, so ``tape.out`` carries a live autograd graph the compiler
    uses to verify the compiled backward.
    """
    x = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
    if tape_recorder_state() is not None:
        raise TraceError("nested tracing is not supported")
    rec = TapeRecorder(x)
    set_tape_recorder(rec)
    try:
        out = fn(x)
    finally:
        set_tape_recorder(None)
    if not isinstance(out, Tensor):
        raise TraceError(f"traced function returned {type(out).__name__}, not a Tensor")
    out_slot = rec.slot_of(out)
    if out_slot is None:
        raise TraceError(
            "traced function returned a tensor that no traced op produced "
            "(constructed outside the engine, or under no_grad)"
        )
    if not rec.ops:
        raise TraceError("traced function executed no tensor ops")
    return StepTape(rec.ops, rec.leaves, rec.n_slots, out_slot, x, out)
