"""Tape fusion: collapse linear-layer op chains into single fused nodes.

The interpreter records a (masked) linear layer as four primitives::

    mul(W, M) -> transpose -> matmul(x, ·) -> add(·, b)

Replaying that literally wastes work: the mask product is re-derived in the
backward (``g * M`` *and* the dead ``g * W`` branch), the transpose is a
fresh view node, and the first layer computes an input gradient nobody
reads. :func:`fuse_tape` pattern-matches the chain (mask and bias both
optional, so plain ``Linear`` folds too) into one :class:`FusedLinear` node
whose forward is a single BLAS call on the effective weight and whose
backward is the closed-form ``(δᵀx)·M`` / ``Σδ`` / ``δ·W_eff`` family —
including the batched per-sample variant (``einsum('bo,bi->boi', δ, x)``)
that turns the whole O-matrix into one matmul family.

Fusion only fires when the intermediate slots have no other consumer, so
any program that *observes* an intermediate keeps interpreter semantics.
"""

from __future__ import annotations

from repro.jit.tape import StepTape, TapeOp

__all__ = ["FusedLinear", "fuse_tape"]


class FusedLinear:
    """``out = src @ (W · M)ᵀ + b`` folded into one node (M, b optional)."""

    op = "linear"

    __slots__ = ("index", "inputs", "slot", "shape", "dtype", "requires_grad",
                 "call_site", "ref", "src_slot", "w_slot", "mask", "bias_slot",
                 "attrs")

    def __init__(self, matmul_op: TapeOp, out_op: TapeOp, src_slot: int,
                 w_slot: int, mask, bias_slot: int | None):
        self.index = out_op.index
        self.inputs = (src_slot,)
        self.slot = out_op.slot
        self.shape = out_op.shape
        self.dtype = out_op.dtype
        self.requires_grad = out_op.requires_grad
        self.call_site = matmul_op.call_site
        self.ref = out_op.ref
        self.src_slot = src_slot
        self.w_slot = w_slot
        self.mask = mask  # ndarray or None
        self.bias_slot = bias_slot
        self.attrs = {"masked": mask is not None, "bias": bias_slot is not None}

    def __repr__(self) -> str:
        kind = "masked_linear" if self.mask is not None else "linear"
        return f"FusedLinear(#{self.index} {kind} -> slot {self.slot} {self.shape})"


def _is_2d(shape) -> bool:
    return len(shape) == 2


def fuse_tape(tape: StepTape):
    """Return ``(nodes, dead_slots)``: the fused node list (a mix of
    :class:`TapeOp` and :class:`FusedLinear`, in execution order) plus the
    slots whose ops were folded away and need no buffer."""
    ops = tape.ops
    op_of_slot = {op.slot: op for op in ops}
    leaf_of_slot = {l.slot: l for l in tape.leaves}

    consumers: dict[int, int] = {}
    for op in ops:
        for s in op.inputs:
            consumers[s] = consumers.get(s, 0) + 1
    # The returned tensor has an implicit external consumer.
    consumers[tape.out_slot] = consumers.get(tape.out_slot, 0) + 1

    def single_use(slot: int) -> bool:
        return consumers.get(slot, 0) == 1

    def param_slot(slot: int) -> bool:
        leaf = leaf_of_slot.get(slot)
        return leaf is not None and leaf.kind == "param"

    skip: set[int] = set()  # op indices folded into a fused node
    emit_as: dict[int, FusedLinear] = {}  # op index -> fused replacement
    dead_slots: set[int] = set()

    for op in ops:
        if op.op != "matmul" or op.index in skip or not _is_2d(op.shape):
            continue
        tr = op_of_slot.get(op.inputs[1])
        if tr is None or tr.op != "transpose" or not single_use(tr.slot):
            continue
        if tr.attrs.get("axes") not in (None, (1, 0)) or not _is_2d(tr.shape):
            continue
        wsrc = tr.inputs[0]
        mask = None
        folded = [tr.index]
        folded_slots = [tr.slot]
        if param_slot(wsrc):
            w_slot = wsrc
        else:
            m = op_of_slot.get(wsrc)
            if m is None or m.op != "mul" or not single_use(m.slot):
                continue
            a, b = m.inputs
            if param_slot(a) and leaf_of_slot.get(b) is not None \
                    and leaf_of_slot[b].kind == "const":
                w_slot, m_slot = a, b
            elif param_slot(b) and leaf_of_slot.get(a) is not None \
                    and leaf_of_slot[a].kind == "const":
                w_slot, m_slot = b, a
            else:
                continue
            mask_leaf = leaf_of_slot[m_slot]
            if mask_leaf.shape != leaf_of_slot[w_slot].shape:
                continue  # broadcasting mul is not the mask pattern
            mask = mask_leaf.array
            folded.append(m.index)
            folded_slots.append(m.slot)

        # Optionally fold the bias add that consumes the matmul result.
        out_op = op
        bias_slot = None
        if single_use(op.slot):
            adds = [o for o in ops if op.slot in o.inputs]
            if len(adds) == 1 and adds[0].op == "add" and adds[0].shape == op.shape:
                add = adds[0]
                other = add.inputs[1] if add.inputs[0] == op.slot else add.inputs[0]
                if param_slot(other):
                    out_op = add
                    bias_slot = other
                    folded.append(op.index)
                    folded_slots.append(op.slot)

        fused = FusedLinear(op, out_op, op.inputs[0], w_slot, mask, bias_slot)
        emit_as[out_op.index] = fused
        skip.update(folded)
        skip.add(out_op.index)
        dead_slots.update(folded_slots)

    nodes = []
    for op in ops:
        if op.index in emit_as:
            nodes.append(emit_as[op.index])
        elif op.index not in skip:
            nodes.append(op)
    return nodes, dead_slots
