"""Install self-check: a fast end-to-end validation battery.

``python -m repro selfcheck`` runs one probe per subsystem — autograd vs
finite differences, MADE normalisation, sampler exactness, collective
correctness, GW approximation ratio, a micro VQMC convergence run — and
prints a pass/fail report. Designed to finish in a few seconds; it is a
smoke test for installs and ports, not a substitute for the pytest suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["CheckResult", "run_selfcheck", "CHECKS"]


@dataclass
class CheckResult:
    name: str
    passed: bool
    seconds: float
    detail: str = ""


def _check_autograd() -> str:
    from repro.tensor import Tensor, gradcheck

    rng = np.random.default_rng(0)
    a = rng.normal(size=(3, 4))
    b = rng.normal(size=(4, 2))
    gradcheck(lambda x, y: (x @ y).tanh().log_cosh(), [a, b])
    return "matmul→tanh→log_cosh gradient matches finite differences"


def _check_made_normalisation() -> str:
    from repro.models import MADE

    model = MADE(6, hidden=10, rng=np.random.default_rng(1))
    total = model.exact_distribution().sum()
    assert abs(total - 1.0) < 1e-9, f"Σπ = {total}"
    return f"Σ_x πθ(x) = {total:.12f}"


def _check_sampler_exactness() -> str:
    from repro.models import MADE
    from repro.samplers import AutoregressiveSampler
    from repro.samplers.diagnostics import total_variation_distance

    model = MADE(4, hidden=8, rng=np.random.default_rng(2))
    x = AutoregressiveSampler().sample(model, 8000, np.random.default_rng(3))
    codes = (x @ (2 ** np.arange(3, -1, -1))).astype(int)
    tv = total_variation_distance(codes, model.exact_distribution())
    assert tv < 0.06, f"TV = {tv}"
    return f"AUTO sampler TV distance = {tv:.4f}"


def _check_local_energy() -> str:
    from repro.core.energy import local_energies
    from repro.hamiltonians import TransverseFieldIsing
    from repro.models import MADE
    from repro.tensor.tensor import no_grad

    ham = TransverseFieldIsing.random(5, seed=4)
    model = MADE(5, hidden=6, rng=np.random.default_rng(5))
    states = ((np.arange(32)[:, None] >> np.arange(4, -1, -1)) & 1).astype(float)
    with no_grad():
        psi = np.exp(model.log_psi(states).data)
    expect = (ham.to_dense() @ psi) / psi
    got = local_energies(model, ham, states)
    err = float(np.max(np.abs(got - expect)))
    assert err < 1e-8, f"max err {err}"
    return f"local energies match dense matvec (max err {err:.1e})"


def _check_collectives() -> str:
    from repro.distributed import run_threaded

    def worker(comm, rank):
        return comm.allreduce(np.arange(5.0) * (rank + 1))

    results = run_threaded(worker, 4)
    expect = np.arange(5.0) * 10
    assert all(np.allclose(r, expect) for r in results)
    return "4-rank ring allreduce correct"


def _check_baselines() -> str:
    from repro.baselines import GoemansWilliamson
    from repro.exact import brute_force_max_cut
    from repro.hamiltonians import bernoulli_adjacency

    w = bernoulli_adjacency(12, seed=6)
    opt, _ = brute_force_max_cut(w)
    gw = GoemansWilliamson(rounds=30).solve(w, seed=0).value
    assert gw >= 0.878 * opt - 1e-9, f"GW ratio {gw/opt:.3f}"
    return f"GW ratio = {gw / opt:.3f} (≥ 0.878 required)"


def _check_vqmc_convergence() -> str:
    from repro.core import VQMC
    from repro.exact import ground_state
    from repro.hamiltonians import TransverseFieldIsing
    from repro.models import MADE
    from repro.optim import SGD, StochasticReconfiguration
    from repro.samplers import AutoregressiveSampler

    ham = TransverseFieldIsing.random(6, seed=7)
    model = MADE(6, hidden=10, rng=np.random.default_rng(8))
    vqmc = VQMC(
        model, ham, AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.1),
        sr=StochasticReconfiguration(), seed=9,
    )
    vqmc.run(80, batch_size=256)
    exact = ground_state(ham).energy
    final = vqmc.evaluate(512).mean
    rel = abs(final - exact) / abs(exact)
    assert rel < 0.05, f"relative error {rel:.3f}"
    return f"VQMC+SR reaches exact ground state within {rel:.2%}"


CHECKS: dict[str, Callable[[], str]] = {
    "autograd": _check_autograd,
    "made-normalisation": _check_made_normalisation,
    "exact-sampling": _check_sampler_exactness,
    "local-energy": _check_local_energy,
    "collectives": _check_collectives,
    "baselines": _check_baselines,
    "vqmc-convergence": _check_vqmc_convergence,
}


def run_selfcheck(verbose: bool = True) -> list[CheckResult]:
    """Run the battery; returns per-check results (printing if verbose)."""
    results = []
    for name, fn in CHECKS.items():
        start = time.perf_counter()
        try:
            detail = fn()
            passed = True
        except BaseException as exc:  # noqa: BLE001 — reported, not raised
            detail = f"{type(exc).__name__}: {exc}"
            passed = False
        res = CheckResult(
            name=name,
            passed=passed,
            seconds=time.perf_counter() - start,
            detail=detail,
        )
        results.append(res)
        if verbose:
            mark = "PASS" if res.passed else "FAIL"
            print(f"[{mark}] {name:<20s} ({res.seconds:5.2f}s) {res.detail}")
    if verbose:
        n_ok = sum(r.passed for r in results)
        print(f"\n{n_ok}/{len(results)} checks passed")
    return results
