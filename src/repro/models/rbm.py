"""RBM wavefunction (Carleo & Troyer 2017; paper §5.1).

Architecture (paper, §5.1)::

    Input --(bs,n)--> FC_{n,h} --(bs,h)--> Lncoshsum --(bs)--> Output1
          --(bs,n)--> FC_{n,1} --(bs)--> Add Output1 --(bs)--> Output

i.e. the log-amplitude is

    log ψθ(x) = Σ_j log cosh( (W x + c)_j )  +  a·x + a₀

with hidden couplings ``W ∈ R^{h×n}``, hidden bias ``c``, visible weights
``a`` and scalar bias ``a₀``. The model is *unnormalised* — evaluating
``πθ(x) = ψθ(x)²/Z`` requires the intractable partition function, hence the
need for MCMC sampling.

The paper's default latent size for RBM is ``h = n`` (§5.1).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import WaveFunction, validate_configurations
from repro.nn.linear import Linear
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.utils.rng import init_rng

__all__ = ["RBM"]


class RBM(WaveFunction):
    """Restricted-Boltzmann-machine log-amplitude model.

    Parameters
    ----------
    n:
        Number of sites.
    hidden:
        Number of hidden units ``h``; the paper uses ``h = n`` by default.
    rng:
        Generator for initialisation. RBM wavefunctions are conventionally
        initialised with small Gaussian couplings so that ψ ≈ uniform at
        start; large initial couplings make the MCMC landscape glassy.
    """

    is_normalized = False
    has_per_sample_grads = True

    def __init__(
        self,
        n: int,
        hidden: int | None = None,
        rng: np.random.Generator | None = None,
        init_std: float = 0.01,
    ):
        super().__init__(n)
        rng = init_rng(rng)  # seeded fallback: replays bit-identically
        self.hidden = hidden if hidden is not None else n
        self.fc = Linear(n, self.hidden, rng=rng, weight_std=init_std)
        # Construction-time init: no graph references these buffers yet.
        self.fc.bias.data[...] = rng.normal(0.0, init_std, size=self.hidden)  # repro-lint: disable=ag-tensor-mutation -- construction-time init, no live graph
        self.fc.bias.bump_version()
        self.visible = Linear(n, 1, rng=rng, weight_std=init_std)
        self.visible.bias.data[...] = 0.0  # repro-lint: disable=ag-tensor-mutation -- construction-time init, no live graph
        self.visible.bias.bump_version()

    def forward(self, x: np.ndarray) -> Tensor:
        return self.log_psi(x)

    def log_psi(self, x: np.ndarray) -> Tensor:
        x = validate_configurations(x, self.n)
        xt = F.as_tensor(x)
        theta = self.fc(xt)  # (B, h)
        hidden_term = theta.log_cosh().sum(axis=1)  # Lncoshsum
        visible_term = self.visible(xt).reshape(-1)  # a·x + a0
        return hidden_term + visible_term

    # -- per-sample gradients ----------------------------------------------------

    def log_psi_and_grads(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Closed-form per-sample log-derivatives.

        ``∂logψ/∂W_jk = tanh(θ_j) x_k``, ``∂/∂c_j = tanh(θ_j)``,
        ``∂/∂a_k = x_k``, ``∂/∂a₀ = 1``. Flattening order matches
        ``named_parameters``: fc.weight, fc.bias, visible.weight, visible.bias.
        """
        x = validate_configurations(x, self.n)
        bsz = x.shape[0]
        w = self.fc.weight.data
        c = self.fc.bias.data
        a = self.visible.weight.data.ravel()
        a0 = float(self.visible.bias.data[0])

        theta = x @ w.T + c  # (B, h)
        ax = np.abs(theta)
        log_cosh = ax + np.log1p(np.exp(-2.0 * ax)) - np.log(2.0)
        log_psi = log_cosh.sum(axis=1) + x @ a + a0

        th = np.tanh(theta)  # (B, h)
        d_w = th[:, :, None] * x[:, None, :]  # (B, h, n)
        d_c = th
        d_a = x  # (B, n)
        d_a0 = np.ones((bsz, 1))

        grads = np.concatenate(
            [d_w.reshape(bsz, -1), d_c, d_a, d_a0], axis=1
        )
        return log_psi, grads

    def exact_distribution(self) -> np.ndarray:
        """Normalised |ψ|² over all 2^n states (small n only; testing)."""
        if self.n > 20:
            raise ValueError(f"exact distribution infeasible for n={self.n}")
        states = ((np.arange(2**self.n)[:, None] >> np.arange(self.n - 1, -1, -1)) & 1)
        from repro.tensor.tensor import no_grad

        with no_grad():
            lp = 2.0 * self.log_psi(states.astype(np.float64)).data
        lp -= lp.max()
        p = np.exp(lp)
        return p / p.sum()
