"""Recurrent neural wavefunction (Hibat-Allah et al. 2020 — paper ref. [18]).

The other autoregressive family the paper's §3 discusses: a vanilla RNN
processes sites left to right,

    h_i = tanh(W h_{i-1} + U x_{i-1} + b) ,      h_0 fixed, x_0 := 0
    z_i = v · h_i + c                             (logit of site i)
    p(x_i = 1 | x_{<i}) = σ(z_i) ,

so normalisation is structural exactly as for MADE, and sampling is n
sequential cell evaluations (same cost shape as Algorithm 1). Unlike MADE,
parameter count is **independent of n** (weight sharing across sites) —
O(h² + h) instead of O(hn) — which is the regime where recurrent
wavefunctions beat masked ones at very large n.

Per-sample gradients are hand-vectorised backprop-through-time, validated
against the autograd tape in the tests (so SR works with RNNs too).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import WaveFunction, validate_configurations
from repro.nn.module import Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.rng import init_rng

__all__ = ["RNNWaveFunction"]


class RNNWaveFunction(WaveFunction):
    """Vanilla-RNN autoregressive wavefunction.

    Parameters
    ----------
    n:
        Number of sites.
    hidden:
        Hidden-state width h (default 32 — parameter count does not grow
        with n).
    rng:
        Generator for initialisation.
    """

    is_normalized = True
    has_per_sample_grads = True

    def __init__(
        self, n: int, hidden: int = 32, rng: np.random.Generator | None = None
    ):
        super().__init__(n)
        rng = init_rng(rng)  # seeded fallback: replays bit-identically
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        self.hidden = hidden
        scale_w = 1.0 / np.sqrt(hidden)
        self.w = Parameter(rng.uniform(-scale_w, scale_w, (hidden, hidden)), "w")
        self.u = Parameter(rng.uniform(-1.0, 1.0, (hidden,)), "u")
        self.b = Parameter(np.zeros(hidden), "b")
        self.v = Parameter(rng.uniform(-scale_w, scale_w, (hidden,)), "v")
        self.c = Parameter(np.zeros(1), "c")
        self.h0 = Parameter(np.zeros(hidden), "h0")

    # -- recurrence (numpy fast path, shared by sampling/per-sample grads) -----------

    def _forward_states(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the recurrence over a batch.

        Returns (h_states (B, n, h) *post*-tanh, pre_acts (B, n, h), logits
        (B, n)). Site i's hidden state consumes x_{i-1} (x_{-1} := 0).
        """
        bsz = x.shape[0]
        w, u, b = self.w.data, self.u.data, self.b.data
        v, c = self.v.data, float(self.c.data[0])
        h = np.broadcast_to(self.h0.data, (bsz, self.hidden)).copy()
        h_states = np.empty((bsz, self.n, self.hidden))
        pre_acts = np.empty((bsz, self.n, self.hidden))
        logits = np.empty((bsz, self.n))
        prev_x = np.zeros(bsz)
        for i in range(self.n):
            a = h @ w.T + np.outer(prev_x, u) + b
            h = np.tanh(a)
            pre_acts[:, i] = a
            h_states[:, i] = h
            logits[:, i] = h @ v + c
            prev_x = x[:, i]
        return h_states, pre_acts, logits

    # -- WaveFunction interface ------------------------------------------------------

    def logits(self, x: np.ndarray) -> Tensor:
        """Autograd-tape version of the recurrence (used by the tape path)."""
        x = validate_configurations(x, self.n)
        bsz = x.shape[0]
        ones = F.as_tensor(np.ones((bsz, 1)))
        h = ones @ self.h0.reshape(1, -1)  # broadcast h0 through the graph
        cols = []
        prev = F.as_tensor(np.zeros((bsz, 1)))
        for i in range(self.n):
            a = h @ self.w.T + prev @ self.u.reshape(1, -1) + self.b.reshape(1, -1)
            h = a.tanh()
            z_i = h @ self.v.reshape(-1, 1) + self.c.reshape(1, 1)
            cols.append(z_i)
            prev = F.as_tensor(x[:, i : i + 1])
        from repro.tensor.tensor import concatenate

        return concatenate(cols, axis=1)

    def log_prob(self, x: np.ndarray) -> Tensor:
        x = validate_configurations(x, self.n)
        z = self.logits(x)
        return F.bernoulli_log_prob(z, x).sum(axis=1)

    def log_psi(self, x: np.ndarray) -> Tensor:
        return self.log_prob(x) * 0.5

    def conditionals(self, x: np.ndarray) -> np.ndarray:
        x = validate_configurations(x, self.n)
        _, _, z = self._forward_states(x)
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    def sample(self, batch_size: int, rng: np.random.Generator) -> np.ndarray:
        """n sequential cell evaluations, batched — exact i.i.d. samples."""
        w, u, b = self.w.data, self.u.data, self.b.data
        v, c = self.v.data, float(self.c.data[0])
        with no_grad():
            h = np.broadcast_to(self.h0.data, (batch_size, self.hidden)).copy()
            x = np.zeros((batch_size, self.n))
            prev = np.zeros(batch_size)
            for i in range(self.n):
                h = np.tanh(h @ w.T + np.outer(prev, u) + b)
                z = h @ v + c
                p = np.where(z >= 0, 1 / (1 + np.exp(-z)),
                             np.exp(z) / (1 + np.exp(z)))
                x[:, i] = (rng.random(batch_size) < p).astype(np.float64)
                prev = x[:, i]
        return x

    # -- per-sample gradients: vectorised backprop through time ------------------------

    def log_psi_and_grads(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = validate_configurations(x, self.n)
        bsz = x.shape[0]
        hdim = self.hidden
        w, u, v = self.w.data, self.u.data, self.v.data

        h_states, pre_acts, z = self._forward_states(x)
        log_p = np.minimum(z, 0.0) - np.log1p(np.exp(-np.abs(z)))
        log_q = np.minimum(-z, 0.0) - np.log1p(np.exp(-np.abs(z)))
        log_prob = (x * log_p + (1.0 - x) * log_q).sum(axis=1)
        sig = np.exp(log_p)
        dz = x - sig  # (B, n) — ∂ log π / ∂ z_i

        g_w = np.zeros((bsz, hdim, hdim))
        g_u = np.zeros((bsz, hdim))
        g_b = np.zeros((bsz, hdim))
        g_v = np.zeros((bsz, hdim))
        g_c = dz.sum(axis=1, keepdims=True)  # (B, 1)
        g_h0 = np.zeros((bsz, hdim))

        # Backwards over sites: carry ∂L/∂h_i (B, h).
        dh = np.zeros((bsz, hdim))
        for i in range(self.n - 1, -1, -1):
            h_i = h_states[:, i]
            dh = dh + dz[:, i : i + 1] * v[None, :]  # logit contribution
            g_v += dz[:, i : i + 1] * h_i
            da = dh * (1.0 - h_i**2)  # through tanh (B, h)
            h_prev = h_states[:, i - 1] if i > 0 else \
                np.broadcast_to(self.h0.data, (bsz, hdim))
            x_prev = x[:, i - 1] if i > 0 else np.zeros(bsz)
            g_w += da[:, :, None] * h_prev[:, None, :]
            g_u += da * x_prev[:, None]
            g_b += da
            dh = da @ w  # to h_{i-1}
        g_h0 = dh

        grads = np.concatenate(
            [g_w.reshape(bsz, -1), g_u, g_b, g_v, g_c, g_h0], axis=1
        )
        return 0.5 * log_prob, 0.5 * grads

    def exact_distribution(self) -> np.ndarray:
        if self.n > 20:
            raise ValueError(f"exact distribution infeasible for n={self.n}")
        states = ((np.arange(2**self.n)[:, None] >> np.arange(self.n - 1, -1, -1)) & 1)
        with no_grad():
            lp = self.log_prob(states.astype(np.float64)).data
        return np.exp(lp)
