"""Wavefunction ansätze.

- :class:`MADE` — normalised autoregressive wavefunction (exact sampling).
- :class:`RBM`  — restricted-Boltzmann-machine wavefunction (needs MCMC).

Both expose the :class:`WaveFunction` interface used by the samplers, the
local-energy engine and stochastic reconfiguration.
"""

from repro.models.base import WaveFunction
from repro.models.made import MADE
from repro.models.rbm import RBM
from repro.models.mean_field import MeanField
from repro.models.rnn import RNNWaveFunction

__all__ = ["WaveFunction", "MADE", "RBM", "MeanField", "RNNWaveFunction"]
