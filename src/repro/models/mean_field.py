"""Mean-field (product-Bernoulli) wavefunction.

The simplest normalised ansatz: every site independent,

    πθ(x) = Π_i σ(θ_i)^{x_i} (1 − σ(θ_i))^{1−x_i},   ψθ = sqrt(πθ).

It is the zero-hidden-unit limit of MADE (only the output biases survive)
and exposes the paper's §2.4 remark concretely: VQMC on a *diagonal*
Hamiltonian with this ansatz **is** natural evolution strategies over the
binary hypercube (see :mod:`repro.baselines.nes` and the equivalence test).
Useful as a fast baseline and for sanity-checking optimisers — every
quantity (sampling, Fisher matrix, gradients) has a closed form.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import WaveFunction, validate_configurations
from repro.nn.module import Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.rng import init_rng

__all__ = ["MeanField"]


class MeanField(WaveFunction):
    """Product-Bernoulli wavefunction parameterised by per-site logits."""

    is_normalized = True
    has_per_sample_grads = True

    def __init__(self, n: int, rng: np.random.Generator | None = None):
        super().__init__(n)
        rng = init_rng(rng)  # seeded fallback: replays bit-identically
        # Near-uniform start (exactly uniform is a stationary point of some
        # symmetric objectives, so add a touch of noise).
        self.logits = Parameter(rng.normal(0.0, 0.01, size=n), name="logits")

    def probabilities(self) -> np.ndarray:
        """σ(θ) — the per-site Bernoulli means."""
        z = self.logits.data
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    def forward(self, x: np.ndarray) -> Tensor:
        return self.log_prob(x)

    def log_prob(self, x: np.ndarray) -> Tensor:
        x = validate_configurations(x, self.n)
        # Broadcast the logit vector over the batch *through the graph* so
        # gradients accumulate back into the parameter.
        zt = F.as_tensor(np.ones((x.shape[0], 1))) @ self.logits.reshape(1, -1)
        return F.bernoulli_log_prob(zt, x).sum(axis=1)

    def log_psi(self, x: np.ndarray) -> Tensor:
        return self.log_prob(x) * 0.5

    def conditionals(self, x: np.ndarray) -> np.ndarray:
        x = validate_configurations(x, self.n)
        return np.broadcast_to(self.probabilities(), x.shape).copy()

    def sample(self, batch_size: int, rng: np.random.Generator) -> np.ndarray:
        with no_grad():
            p = self.probabilities()
        return (rng.random((batch_size, self.n)) < p).astype(np.float64)

    def log_psi_and_grads(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """O(x) = ½ (x − σ(θ)) — the classic Bernoulli score, halved for ψ."""
        x = validate_configurations(x, self.n)
        z = self.logits.data
        log_p = np.minimum(z, 0.0) - np.log1p(np.exp(-np.abs(z)))
        log_q = np.minimum(-z, 0.0) - np.log1p(np.exp(-np.abs(z)))
        log_prob = (x * log_p + (1.0 - x) * log_q).sum(axis=1)
        grads = 0.5 * (x - np.exp(log_p))
        return 0.5 * log_prob, grads

    def exact_fisher(self) -> np.ndarray:
        """Closed-form quantum Fisher S = ¼ diag(p(1−p)) (population form)."""
        p = self.probabilities()
        return 0.25 * np.diag(p * (1.0 - p))

    def exact_distribution(self) -> np.ndarray:
        if self.n > 20:
            raise ValueError(f"exact distribution infeasible for n={self.n}")
        states = ((np.arange(2**self.n)[:, None] >> np.arange(self.n - 1, -1, -1)) & 1)
        with no_grad():
            lp = self.log_prob(states.astype(np.float64)).data
        return np.exp(lp)
