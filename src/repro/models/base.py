"""The wavefunction interface.

A wavefunction maps bit-string configurations ``x ∈ {0,1}^n`` (batched as an
``(B, n)`` array) to real amplitudes ``ψθ(x)``. Since the paper targets
non-negative ground states (Perron–Frobenius, §2.1), amplitudes are
parameterised in log space: models implement ``log_psi``.

Two capabilities are optional and advertised by flags:

- ``is_normalized`` — ``Σ_x ψ(x)² = 1`` holds by construction (MADE). Such
  models also implement ``log_prob`` and ``conditionals`` and support exact
  autoregressive sampling.
- ``has_per_sample_grads`` — the model provides hand-vectorised per-sample
  log-derivatives ``O_k(x) = ∂ log ψθ(x) / ∂θ_k`` needed by stochastic
  reconfiguration without per-sample backward passes.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor.tensor import Tensor

__all__ = ["WaveFunction", "validate_configurations"]


def validate_configurations(x: np.ndarray, n: int) -> np.ndarray:
    """Check/coerce a batch of configurations to an ``(B, n)`` float array of {0,1}."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        x = x[None, :]
    if x.ndim != 2 or x.shape[1] != n:
        raise ValueError(f"expected configurations of shape (B, {n}), got {x.shape}")
    if not np.all((x == 0.0) | (x == 1.0)):
        raise ValueError("configurations must be binary (entries in {0, 1})")
    return x


class WaveFunction(Module):
    """Base class for trial wavefunctions over ``{0,1}^n``."""

    is_normalized: bool = False
    has_per_sample_grads: bool = False

    def __init__(self, n: int):
        super().__init__()
        if n < 1:
            raise ValueError(f"need at least one site, got n={n}")
        self.n = n

    # -- required -----------------------------------------------------------------

    def log_psi(self, x: np.ndarray) -> Tensor:
        """Log-amplitude ``log ψθ(x)`` for a batch ``x``: returns shape ``(B,)``."""
        raise NotImplementedError

    # -- optional: normalised models -------------------------------------------------

    def log_prob(self, x: np.ndarray) -> Tensor:
        """``log πθ(x)``; for real non-negative ψ this is ``2 log ψ``."""
        return self.log_psi(x) * 2.0

    def conditionals(self, x: np.ndarray) -> np.ndarray:
        """All autoregressive conditionals ``p(x_i = 1 | x_{<i})`` — (B, n).

        Only meaningful for normalised autoregressive models.
        """
        raise NotImplementedError(f"{type(self).__name__} is not autoregressive")

    # -- optional: per-sample gradients ------------------------------------------------

    def log_psi_and_grads(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(log ψ(x), O(x))`` with ``O`` of shape ``(B, d)``.

        ``O[b, k] = ∂ log ψθ(x_b) / ∂ θ_k`` with ``k`` indexing parameters in
        ``named_parameters`` flattening order (the same order as
        :meth:`repro.nn.Module.flat_grad`).
        """
        raise NotImplementedError(f"{type(self).__name__} has no per-sample gradients")

    # -- convenience ------------------------------------------------------------------

    def psi_ratio(self, x_new: np.ndarray, x_old: np.ndarray) -> np.ndarray:
        """``ψ(x_new)/ψ(x_old)`` computed in log space (no_grad)."""
        from repro.tensor.tensor import no_grad

        with no_grad():
            lp_new = self.log_psi(x_new).data
            lp_old = self.log_psi(x_old).data
        return np.exp(lp_new - lp_old)
