"""MADE wavefunction (§2.3 and §5.1 of the paper).

Architecture (paper, §5.1; single hidden layer)::

    Input --(bs,n)--> MaskedFC1 --(bs,h)--> ReLU
          --(bs,h)--> MaskedFC2 --(bs,n)--> Sigmoid --(bs,n)--> Output

The sigmoid outputs are the autoregressive conditionals
``p_i = P(x_i = 1 | x_{<i})``; the joint is
``πθ(x) = Π_i p_i^{x_i} (1-p_i)^{1-x_i}`` and the wavefunction is
``ψθ(x) = sqrt(πθ(x))`` (non-negative ground state, §2.1). We keep the
network output in *logit* space internally and evaluate Bernoulli
log-probabilities through ``log_sigmoid`` for numerical stability; the
sigmoid of the paper's diagram is applied only where actual probabilities
are required (sampling).

``hidden`` may also be a sequence of layer widths, giving the deep masked
autoencoder of Germain et al. (an extension beyond the paper's 2-layer
default; the masks guarantee the autoregressive property at any depth).

Parameter count for the paper's single-hidden-layer case:
``d = 2hn + h + n`` exactly as stated in §4.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.models.base import WaveFunction, validate_configurations
from repro.nn.linear import MaskedLinear
from repro.nn.masks import check_autoregressive_deep, made_masks_deep
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.rng import init_rng

__all__ = ["MADE", "default_hidden_size"]


def default_hidden_size(n: int) -> int:
    """The paper's default latent size ``h = 5 (log n)²`` (§5.1, natural log)."""
    return max(1, int(round(5.0 * np.log(n) ** 2)))


class MADE(WaveFunction):
    """Masked autoencoder wavefunction with exact autoregressive sampling.

    Parameters
    ----------
    n:
        Number of sites / input dimension.
    hidden:
        Hidden layer size ``h`` (int — the paper's architecture) or a
        sequence of widths for a deep MADE. Defaults to the paper's
        ``5 (log n)²``.
    rng:
        Generator for weight initialisation (and mask degrees if
        ``mask_strategy='random'``).
    mask_strategy:
        ``'cycle'`` (deterministic, default) or ``'random'``.
    """

    is_normalized = True
    has_per_sample_grads = True

    def __init__(
        self,
        n: int,
        hidden: int | Sequence[int] | None = None,
        rng: np.random.Generator | None = None,
        mask_strategy: str = "cycle",
    ):
        super().__init__(n)
        rng = init_rng(rng)  # seeded fallback: replays bit-identically
        if hidden is None:
            hidden = default_hidden_size(n)
        if isinstance(hidden, (int, np.integer)):
            widths: tuple[int, ...] = (int(hidden),)
        else:
            widths = tuple(int(h) for h in hidden)
            if not widths:
                raise ValueError("hidden layer list must be non-empty")
        self.hidden = widths[0] if len(widths) == 1 else widths
        self.widths = widths

        masks = made_masks_deep(n, widths, rng=rng, strategy=mask_strategy)
        check_autoregressive_deep(masks)
        dims = (n, *widths, n)
        self._layers: list[MaskedLinear] = []
        for i, mask in enumerate(masks):
            layer = MaskedLinear(dims[i], dims[i + 1], mask, rng=rng)
            # Attribute assignment registers the layer (and its parameters)
            # in a deterministic order: fc1, fc2, ..., fc{L+1}.
            setattr(self, f"fc{i + 1}", layer)
            self._layers.append(layer)

    # Backwards-compatible aliases for the paper's 2-matrix architecture.
    @property
    def fc_layers(self) -> list[MaskedLinear]:
        return list(self._layers)

    # -- forward ----------------------------------------------------------------

    def logits(self, x: np.ndarray) -> Tensor:
        """Pre-sigmoid conditional logits ``z`` — shape (B, n)."""
        x = validate_configurations(x, self.n)
        h = F.as_tensor(x)
        for layer in self._layers[:-1]:
            h = layer(h).relu()
        return self._layers[-1](h)

    def forward(self, x: np.ndarray) -> Tensor:
        """Paper's diagram output: conditional probabilities ``σ(z)``."""
        return self.logits(x).sigmoid()

    def conditionals(self, x: np.ndarray) -> np.ndarray:
        """``p(x_i=1 | x_{<i})`` for each site, as a plain array (no graph)."""
        with no_grad():
            return self.forward(x).data

    def log_prob(self, x: np.ndarray) -> Tensor:
        """``log πθ(x) = Σ_i log Bernoulli(x_i; p_i)`` — shape (B,)."""
        x = validate_configurations(x, self.n)
        z = self.logits(x)
        return F.bernoulli_log_prob(z, x).sum(axis=1)

    def log_psi(self, x: np.ndarray) -> Tensor:
        """``log ψθ(x) = ½ log πθ(x)``."""
        return self.log_prob(x) * 0.5

    # -- per-sample gradients (manual vectorised backprop) ----------------------------

    def log_psi_and_grads(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample ``O(x) = ∇θ log ψθ(x)`` without building a graph.

        Closed-form backprop through the masked layer stack; the Bernoulli
        log-likelihood has the classic logit gradient ``∂L/∂z = x − σ(z)``.
        Returns ``(log_psi (B,), O (B, d))`` with parameters flattened in
        ``named_parameters`` order (fc1.weight, fc1.bias, fc2.weight, ...).
        """
        x = validate_configurations(x, self.n)
        bsz = x.shape[0]

        # Forward, caching inputs to every layer.
        inputs = [x]
        pre_acts = []
        cur = x
        for layer in self._layers[:-1]:
            a = cur @ layer.effective_weight().T + layer.bias.data
            pre_acts.append(a)
            cur = np.maximum(a, 0.0)
            inputs.append(cur)
        last = self._layers[-1]
        z = cur @ last.effective_weight().T + last.bias.data

        # Stable log π and σ(z).
        log_p = np.minimum(z, 0.0) - np.log1p(np.exp(-np.abs(z)))
        log_q = np.minimum(-z, 0.0) - np.log1p(np.exp(-np.abs(z)))
        log_prob = (x * log_p + (1.0 - x) * log_q).sum(axis=1)
        sig = np.exp(log_p)

        # Backward, batched per sample.
        delta = x - sig  # gradient at the logits (B, n)
        grads_per_layer: list[tuple[np.ndarray, np.ndarray]] = []
        for idx in range(len(self._layers) - 1, -1, -1):
            layer = self._layers[idx]
            inp = inputs[idx]
            d_w = delta[:, :, None] * inp[:, None, :] * layer.mask[None]
            d_b = delta
            grads_per_layer.append((d_w, d_b))
            if idx > 0:
                delta = delta @ layer.effective_weight()
                delta = delta * (pre_acts[idx - 1] > 0.0)
        grads_per_layer.reverse()

        flat = [
            part
            for d_w, d_b in grads_per_layer
            for part in (d_w.reshape(bsz, -1), d_b)
        ]
        # log ψ = ½ log π  ⇒  O = ½ ∇ log π.
        return 0.5 * log_prob, 0.5 * np.concatenate(flat, axis=1)

    # -- exact sampling (Algorithm 1, batched) ------------------------------------------

    def sample(
        self,
        batch_size: int,
        rng: np.random.Generator,
        clamp: np.ndarray | None = None,
        method: str = "auto",
    ) -> np.ndarray:
        """Draw exact i.i.d. samples from πθ.

        Batched version of the paper's Algorithm 1. Two implementations:

        - ``method='incremental'`` (the ``'auto'`` default): the
          :mod:`repro.perf.incremental` kernel — cached pre-activations
          advanced by masked rank-1 column updates, O(n·h) per batch row;
        - ``method='naive'``: the literal Algorithm 1, ``n`` full forward
          passes (O(n²·h) per row). Kept as the reference implementation
          the fast path is property-tested against.

        Both consume the RNG stream identically, so for the same ``rng``
        state they produce bit-identical samples.

        Parameters
        ----------
        clamp:
            Optional length-``n`` array with entries in {0, 1, NaN}: non-NaN
            sites are forced to the given value instead of sampled
            (ancestral clamping). When the clamped sites form a *prefix*
            ``x_1 … x_k`` this yields exact samples from the true
            conditional ``π(x_{>k} | x_{≤k})``; for non-prefix clamps the
            later conditionals still adapt but earlier ones cannot, so the
            result is the causal intervention, not the Bayesian posterior.
        """
        if method == "auto":
            method = "incremental"
        if method == "incremental":
            from repro.perf.incremental import incremental_sample

            return incremental_sample(self, batch_size, rng, clamp=clamp).samples
        if method != "naive":
            raise ValueError(f"unknown sampling method {method!r}")
        if clamp is not None:
            clamp = np.asarray(clamp, dtype=np.float64)
            if clamp.shape != (self.n,):
                raise ValueError(f"clamp must have shape ({self.n},), got {clamp.shape}")
            fixed = ~np.isnan(clamp)
            if not np.all(np.isin(clamp[fixed], (0.0, 1.0))):
                raise ValueError("clamped values must be 0 or 1")
        x = np.zeros((batch_size, self.n))
        with no_grad():
            for i in range(self.n):
                if clamp is not None and not np.isnan(clamp[i]):
                    x[:, i] = clamp[i]
                    continue
                p = self.conditionals(x)[:, i]
                x[:, i] = (rng.random(batch_size) < p).astype(np.float64)
        return x

    def exact_distribution(self) -> np.ndarray:
        """Full probability vector over all 2^n states (small n only; testing)."""
        if self.n > 20:
            raise ValueError(f"exact distribution infeasible for n={self.n}")
        states = ((np.arange(2**self.n)[:, None] >> np.arange(self.n - 1, -1, -1)) & 1)
        with no_grad():
            lp = self.log_prob(states.astype(np.float64)).data
        return np.exp(lp)
