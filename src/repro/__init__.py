"""repro — scalable variational quantum Monte Carlo with exact autoregressive sampling.

Reproduction of "Overcoming barriers to scalability in variational quantum
Monte Carlo" (Zhao, De, Chen, Stokes, Veerapaneni — SC 2021).

The package is organised bottom-up:

- :mod:`repro.tensor` — reverse-mode autograd engine on numpy.
- :mod:`repro.nn` — neural-network modules (masked/plain linear layers).
- :mod:`repro.models` — wavefunction ansätze: MADE and RBM.
- :mod:`repro.hamiltonians` — sparse-row Hamiltonians (TIM, Max-Cut, QUBO).
- :mod:`repro.samplers` — exact autoregressive sampling and Metropolis MCMC.
- :mod:`repro.optim` — SGD / Adam / stochastic reconfiguration.
- :mod:`repro.core` — the VQMC training driver.
- :mod:`repro.distributed` — communicators + collectives (data parallelism).
- :mod:`repro.cluster` — analytic GPU-cluster performance/memory model.
- :mod:`repro.exact` — exact diagonalisation for validation.
- :mod:`repro.manifolds` — Riemannian optimisation substrate.
- :mod:`repro.baselines` — Random / Goemans-Williamson / Burer-Monteiro.
"""

__version__ = "1.0.0"

from repro.core.vqmc import VQMC, VQMCConfig  # noqa: F401
from repro.models.made import MADE  # noqa: F401
from repro.models.rbm import RBM  # noqa: F401
from repro.models.mean_field import MeanField  # noqa: F401
from repro.models.rnn import RNNWaveFunction  # noqa: F401

__all__ = [
    "VQMC",
    "VQMCConfig",
    "MADE",
    "RBM",
    "MeanField",
    "RNNWaveFunction",
    "__version__",
]
