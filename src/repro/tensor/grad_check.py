"""Numerical gradient checking for the autograd engine.

Every primitive in :mod:`repro.tensor.tensor` is validated against central
finite differences in the test suite; this module holds the machinery.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["numerical_grad", "gradcheck", "per_sample_jacobian"]


def per_sample_jacobian(model, x: np.ndarray) -> np.ndarray:
    """Per-sample gradients via the autograd tape — the slow generic path.

    Computes ``J[b, k] = ∂ log ψ(x_b) / ∂ θ_k`` with one backward pass per
    sample (O(B) passes). Every model's hand-vectorised
    ``log_psi_and_grads`` is validated against this in the tests; use it as
    ground truth when writing a new model's fast path.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected a (B, n) batch, got shape {x.shape}")
    rows = []
    for b in range(x.shape[0]):
        model.zero_grad()
        model.log_psi(x[b : b + 1]).sum().backward()
        rows.append(model.flat_grad())
    model.zero_grad()
    return np.stack(rows, axis=0)


def numerical_grad(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. ``inputs[index]``."""
    inputs = [np.array(a, dtype=np.float64) for a in inputs]
    target = inputs[index]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = target[idx]
        target[idx] = orig + eps
        hi = float(fn(*[Tensor(a) for a in inputs]).data.sum())
        target[idx] = orig - eps
        lo = float(fn(*[Tensor(a) for a in inputs]).data.sum())
        target[idx] = orig
        grad[idx] = (hi - lo) / (2.0 * eps)
        it.iternext()
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Compare autograd gradients of ``sum(fn(*inputs))`` to finite differences.

    Raises ``AssertionError`` with a diagnostic on mismatch; returns ``True``
    on success so it can sit inside ``assert gradcheck(...)``.
    """
    tensors = [Tensor(np.array(a, dtype=np.float64), requires_grad=True) for a in inputs]
    out = fn(*tensors)
    out.sum().backward()
    for i, t in enumerate(tensors):
        num = numerical_grad(fn, [a.data for a in tensors], i, eps=eps)
        got = t.grad if t.grad is not None else np.zeros_like(t.data)
        if not np.allclose(got, num, atol=atol, rtol=rtol):
            err = np.max(np.abs(got - num))
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs error {err:.3e}\n"
                f"autograd:\n{got}\nnumerical:\n{num}"
            )
    return True
