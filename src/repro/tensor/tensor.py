"""The :class:`Tensor` class: a numpy array with a backward graph.

Design notes
------------
- Closure-based tape: each op attaches a ``_backward`` closure to its output
  that scatters the output's gradient into the inputs' ``grad`` buffers.
  ``Tensor.backward`` runs the closures in reverse topological order.
- Broadcasting: binary ops broadcast like numpy; gradients are un-broadcast
  by summing over the broadcast axes (:func:`_unbroadcast`).
- Gradients accumulate (+=), so a tensor used twice receives both paths.
- ``no_grad``: inside the context no graph is recorded, matching the
  inference/sampling hot paths where autograd overhead would be pure waste.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "InPlaceMutationError",
    "NonFiniteError",
    "graph_sanitizer_state",
    "set_graph_sanitizer",
    "tape_recorder_state",
    "set_tape_recorder",
]

# Thread-local: the thread-backed distributed runtime runs one rank per
# thread, and one rank sampling under no_grad must not disable recording
# for a rank that is mid-backward.
_STATE = threading.local()


class InPlaceMutationError(RuntimeError):
    """A tensor recorded in a backward graph was mutated before backward.

    Raised by the graph sanitizer
    (:class:`repro.analysis.graph_sanitizer.GraphSanitizer`): the backward
    closures alias the buffers they saw at record time, so an in-place
    update between forward and backward corrupts gradients silently.
    """


class NonFiniteError(RuntimeError):
    """An op produced NaN/Inf from all-finite inputs (first origin).

    Raised (or recorded, per policy) by the graph sanitizer at the op that
    *introduced* the non-finite values, instead of wherever they later
    surface as a diverged loss.
    """


# The active graph-sanitizer state, per thread (one rank per thread in the
# threaded distributed backend — each rank opts in independently). The
# engine only duck-calls ``state.on_node(out, parents, recorded)`` and
# ``state.verify(node)``; the state object itself lives in
# :mod:`repro.analysis.graph_sanitizer`, keeping the engine import-free.
_SANITIZER = threading.local()


def graph_sanitizer_state():
    """The thread's active sanitizer state, or None."""
    return getattr(_SANITIZER, "state", None)


def set_graph_sanitizer(state) -> None:
    """Install (or clear, with None) the thread's sanitizer state."""
    _SANITIZER.state = state


# The active tape recorder, per thread. The trace-and-fuse compiler
# (:mod:`repro.jit`) installs a recorder for ONE interpreted step; the
# engine duck-calls ``state.on_op(out, parents, op, attrs, recorded)`` for
# every node built by :meth:`Tensor._make`, which is exactly the
# information needed to snapshot the step's op sequence into a
# :class:`repro.jit.StepTape`. Like the sanitizer, the state object lives
# outside the engine so ``repro.tensor`` stays import-free.
_RECORDER = threading.local()


def tape_recorder_state():
    """The thread's active tape recorder, or None."""
    return getattr(_RECORDER, "state", None)


def set_tape_recorder(state) -> None:
    """Install (or clear, with None) the thread's tape recorder."""
    _RECORDER.state = state


@contextlib.contextmanager
def no_grad():
    """Disable graph recording inside the ``with`` block (per-thread)."""
    prev = is_grad_enabled()
    _STATE.grad_enabled = False
    try:
        yield
    finally:
        _STATE.grad_enabled = prev


def is_grad_enabled() -> bool:
    return getattr(_STATE, "grad_enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were added or expanded by broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading axes numpy prepended.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


def _as_array(value) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    return arr


class Tensor:
    """A numpy array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like; stored as ``float64``.
    requires_grad:
        Whether gradients should flow into this tensor. Leaf tensors with
        ``requires_grad=True`` receive a ``.grad`` array after ``backward``.
    name:
        Optional label used in error messages and graph dumps.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "name",
        "_version",
        "_sanitize",
        # Weakref support: lifetime tests (and leak detectors) observe graph
        # release after ``backward(free_graph=True)`` without pinning nodes.
        "__weakref__",
    )

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name
        # Buffer version counter: tracked in-place mutators (optimizer
        # steps, parameter loading) bump it via bump_version(); the graph
        # sanitizer snapshots it per recorded op and additionally
        # fingerprints the buffer to catch *untracked* mutation.
        self._version = 0
        self._sanitize = None

    @property
    def version(self) -> int:
        """Buffer version: incremented by every tracked in-place mutation."""
        return self._version

    def bump_version(self) -> None:
        """Declare a tracked in-place mutation of ``data``.

        Every whitelisted mutator (optimizers, ``Module`` parameter
        loading) calls this after updating ``data`` in place, so the graph
        sanitizer can tell a *tracked-but-illegal* mutation (version
        changed while the tensor sat in a live graph) from an untracked one
        (buffer contents changed behind the counter's back).
        """
        self._version += 1

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str = "",
        attrs: dict | None = None,
    ) -> "Tensor":
        """Build an op output node; record graph only if grad is enabled.

        ``op`` names the primitive (``"add"``, ``"matmul"``, ...) and
        ``attrs`` carries its non-tensor arguments (axes, exponents, index
        objects). Both are only observed by an installed tape recorder
        (:func:`set_tape_recorder`) — the interpreted path never reads
        them, so the metadata costs nothing when no trace is running.
        """
        needs = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs)
        if needs:
            out._parents = tuple(parents)

            def _bw() -> None:
                assert out.grad is not None
                backward(out.grad)

            out._backward = _bw
        state = graph_sanitizer_state()
        if state is not None:
            state.on_node(out, parents, recorded=needs)
        recorder = tape_recorder_state()
        if recorder is not None:
            recorder.on_op(out, parents, op, attrs, recorded=needs)
        return out

    def _accum(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # -- basic protocol -------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # -- backward pass ---------------------------------------------------------

    def backward(
        self, grad: np.ndarray | None = None, free_graph: bool = False
    ) -> None:
        """Backpropagate from this tensor.

        ``grad`` is the seed gradient. For scalar outputs (``size == 1``)
        it defaults to ones — the usual dL/dL = 1. For non-scalar outputs
        an explicit seed is REQUIRED: the old implicit-ones default
        silently differentiated ``out.sum()`` instead of ``out``, which
        reads like a bug at every call site that relied on it. Pass
        ``np.ones_like(t.data)`` to get the summed behaviour on purpose.

        ``free_graph=True`` drops every visited node's ``_parents`` and
        ``_backward`` closure after the sweep, so the graph — and every
        intermediate activation those closures pin — becomes collectible
        immediately instead of surviving until the next step rebuilds it.
        The freed graph cannot be backpropagated again; leaf ``.grad``
        buffers are untouched. :meth:`repro.core.vqmc.VQMC.step` passes it
        by default.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None and self.data.size != 1:
            raise RuntimeError(
                f"backward() on a non-scalar (shape {self.data.shape}) requires "
                "an explicit seed gradient; the implicit all-ones seed summed "
                "the output silently — pass grad=np.ones_like(t.data) if that "
                "is what you mean, or reduce the output first"
            )
        topo: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        # Iterative DFS (graphs from long sampling loops can be deep).
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in seen and p.requires_grad:
                    stack.append((p, False))

        self.grad = np.ones_like(self.data) if grad is None else _as_array(grad)
        if self.grad.shape != self.data.shape:
            raise ValueError(
                f"seed gradient shape {self.grad.shape} != tensor shape {self.data.shape}"
            )
        state = graph_sanitizer_state()
        for node in reversed(topo):
            if node._backward is not None:
                if state is not None:
                    state.verify(node)
                node._backward()
        if free_graph:
            for node in topo:
                if node._parents or node._backward is not None:
                    node._parents = ()
                    node._backward = None

    # -- arithmetic -------------------------------------------------------------

    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def bw(g: np.ndarray) -> None:
            self._accum(_unbroadcast(g, self.shape))
            other._accum(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), bw, "add")

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def bw(g: np.ndarray) -> None:
            self._accum(_unbroadcast(g * other.data, self.shape))
            other._accum(_unbroadcast(g * self.data, other.shape))

        return Tensor._make(out_data, (self, other), bw, "mul")

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        def bw(g: np.ndarray) -> None:
            self._accum(-g)

        return Tensor._make(-self.data, (self,), bw, "neg")

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def bw(g: np.ndarray) -> None:
            self._accum(_unbroadcast(g / other.data, self.shape))
            other._accum(
                _unbroadcast(-g * self.data / (other.data**2), other.shape)
            )

        return Tensor._make(out_data, (self, other), bw, "truediv")

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def bw(g: np.ndarray) -> None:
            self._accum(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), bw, "pow", {"exponent": exponent})

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        if self.ndim < 2 or other.ndim < 2:
            raise ValueError(
                "matmul requires >=2-D operands; use reshape for vectors "
                f"(got {self.shape} @ {other.shape})"
            )
        out_data = self.data @ other.data

        def bw(g: np.ndarray) -> None:
            ga = g @ np.swapaxes(other.data, -1, -2)
            gb = np.swapaxes(self.data, -1, -2) @ g
            self._accum(_unbroadcast(ga, self.shape))
            other._accum(_unbroadcast(gb, other.shape))

        return Tensor._make(out_data, (self, other), bw, "matmul")

    # -- elementwise nonlinearities ------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def bw(g: np.ndarray) -> None:
            self._accum(g * out_data)

        return Tensor._make(out_data, (self,), bw, "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def bw(g: np.ndarray) -> None:
            self._accum(g / self.data)

        return Tensor._make(out_data, (self,), bw, "log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def bw(g: np.ndarray) -> None:
            self._accum(g * 0.5 / out_data)

        return Tensor._make(out_data, (self,), bw, "sqrt")

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def bw(g: np.ndarray) -> None:
            self._accum(g * np.sign(self.data))

        return Tensor._make(out_data, (self,), bw, "abs")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def bw(g: np.ndarray) -> None:
            self._accum(g * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), bw, "tanh")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0.0)

        def bw(g: np.ndarray) -> None:
            self._accum(g * mask)

        return Tensor._make(out_data, (self,), bw, "relu")

    def sigmoid(self) -> "Tensor":
        # Numerically stable split over sign.
        x = self.data
        out_data = np.empty_like(x)
        pos = x >= 0
        out_data[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out_data[~pos] = ex / (1.0 + ex)

        def bw(g: np.ndarray) -> None:
            self._accum(g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), bw, "sigmoid")

    def log_sigmoid(self) -> "Tensor":
        """Stable ``log(sigmoid(x)) = -softplus(-x) = min(x,0) - log1p(exp(-|x|))``."""
        x = self.data
        out_data = np.minimum(x, 0.0) - np.log1p(np.exp(-np.abs(x)))
        sig = np.empty_like(x)
        pos = x >= 0
        sig[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        sig[~pos] = ex / (1.0 + ex)

        def bw(g: np.ndarray) -> None:
            self._accum(g * (1.0 - sig))

        return Tensor._make(out_data, (self,), bw, "log_sigmoid")

    def softplus(self) -> "Tensor":
        """Stable ``log(1 + exp(x)) = max(x,0) + log1p(exp(-|x|))``."""
        x = self.data
        out_data = np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))
        sig = np.empty_like(x)
        pos = x >= 0
        sig[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        sig[~pos] = ex / (1.0 + ex)

        def bw(g: np.ndarray) -> None:
            self._accum(g * sig)

        return Tensor._make(out_data, (self,), bw, "softplus")

    def log_cosh(self) -> "Tensor":
        """Stable ``log(cosh(x)) = |x| + log1p(exp(-2|x|)) - log 2``.

        This is the RBM's ``Lncoshsum`` building block; the naive
        ``np.log(np.cosh(x))`` overflows already at |x| ≈ 710.
        """
        ax = np.abs(self.data)
        out_data = ax + np.log1p(np.exp(-2.0 * ax)) - np.log(2.0)
        th = np.tanh(self.data)

        def bw(g: np.ndarray) -> None:
            self._accum(g * th)

        return Tensor._make(out_data, (self,), bw, "log_cosh")

    def log1p(self) -> "Tensor":
        out_data = np.log1p(self.data)

        def bw(g: np.ndarray) -> None:
            self._accum(g / (1.0 + self.data))

        return Tensor._make(out_data, (self,), bw, "log1p")

    def expm1(self) -> "Tensor":
        out_data = np.expm1(self.data)

        def bw(g: np.ndarray) -> None:
            self._accum(g * (out_data + 1.0))

        return Tensor._make(out_data, (self,), bw, "expm1")

    def sin(self) -> "Tensor":
        out_data = np.sin(self.data)

        def bw(g: np.ndarray) -> None:
            self._accum(g * np.cos(self.data))

        return Tensor._make(out_data, (self,), bw, "sin")

    def cos(self) -> "Tensor":
        out_data = np.cos(self.data)

        def bw(g: np.ndarray) -> None:
            self._accum(-g * np.sin(self.data))

        return Tensor._make(out_data, (self,), bw, "cos")

    def clip(self, low: float | None = None, high: float | None = None) -> "Tensor":
        """Clamp values; gradient is passed through only inside the bounds
        (the subgradient convention used by deep-learning frameworks)."""
        out_data = np.clip(self.data, low, high)
        inside = np.ones_like(self.data, dtype=bool)
        if low is not None:
            inside &= self.data > low
        if high is not None:
            inside &= self.data < high

        def bw(g: np.ndarray) -> None:
            self._accum(g * inside)

        return Tensor._make(out_data, (self,), bw, "clip", {"low": low, "high": high})

    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        """Numerically stable ``log Σ exp`` along an axis."""
        m = self.data.max(axis=axis, keepdims=True)
        shifted = self.data - m
        sumexp = np.exp(shifted).sum(axis=axis, keepdims=True)
        out_keep = m + np.log(sumexp)
        out_data = out_keep if keepdims else np.squeeze(out_keep, axis=axis)
        soft = np.exp(shifted) / sumexp  # softmax along axis

        def bw(g: np.ndarray) -> None:
            gg = g if keepdims else np.expand_dims(g, axis)
            self._accum(gg * soft)

        return Tensor._make(
            out_data, (self,), bw, "logsumexp", {"axis": axis, "keepdims": keepdims}
        )

    def softmax(self, axis: int = -1) -> "Tensor":
        m = self.data.max(axis=axis, keepdims=True)
        e = np.exp(self.data - m)
        out_data = e / e.sum(axis=axis, keepdims=True)

        def bw(g: np.ndarray) -> None:
            inner = (g * out_data).sum(axis=axis, keepdims=True)
            self._accum(out_data * (g - inner))

        return Tensor._make(out_data, (self,), bw, "softmax", {"axis": axis})

    # -- reductions ------------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def bw(g: np.ndarray) -> None:
            gg = g
            if not keepdims and axis is not None:
                gg = np.expand_dims(gg, axis)
            self._accum(np.broadcast_to(gg, self.shape).copy())

        return Tensor._make(
            out_data, (self,), bw, "sum", {"axis": axis, "keepdims": keepdims}
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def bw(g: np.ndarray) -> None:
            gg = g
            od = out_data
            if not keepdims and axis is not None:
                gg = np.expand_dims(gg, axis)
                od = np.expand_dims(od, axis)
            mask = self.data == od
            # Split gradient evenly across ties (numpy semantics don't define
            # a winner; even split keeps gradcheck happy away from ties).
            share = mask / mask.sum(axis=axis, keepdims=True)
            self._accum(np.broadcast_to(gg, self.shape) * share)

        return Tensor._make(
            out_data, (self,), bw, "max", {"axis": axis, "keepdims": keepdims}
        )

    # -- shape manipulation --------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        orig = self.shape

        def bw(g: np.ndarray) -> None:
            self._accum(g.reshape(orig))

        return Tensor._make(out_data, (self,), bw, "reshape", {"shape": shape})

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        out_data = self.data.transpose(axes)
        if axes is None:
            inv: tuple[int, ...] | None = None
        else:
            inv = tuple(np.argsort(axes))

        def bw(g: np.ndarray) -> None:
            self._accum(g.transpose(inv))

        return Tensor._make(out_data, (self,), bw, "transpose", {"axes": axes})

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]

        def bw(g: np.ndarray) -> None:
            buf = np.zeros_like(self.data)
            np.add.at(buf, idx, g)
            self._accum(buf)

        return Tensor._make(out_data, (self,), bw, "getitem", {"idx": idx})


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate``."""
    ts = list(tensors)
    out_data = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def bw(g: np.ndarray) -> None:
        for t, lo, hi in zip(ts, offsets[:-1], offsets[1:]):
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(lo, hi)
            t._accum(g[tuple(sl)])

    return Tensor._make(out_data, ts, bw, "concatenate", {"axis": axis})


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    ts = list(tensors)
    out_data = np.stack([t.data for t in ts], axis=axis)

    def bw(g: np.ndarray) -> None:
        for i, t in enumerate(ts):
            t._accum(np.take(g, i, axis=axis))

    return Tensor._make(out_data, ts, bw, "stack", {"axis": axis})


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise min; ties split the gradient evenly."""
    out_data = np.minimum(a.data, b.data)
    a_wins = a.data < b.data
    tie = a.data == b.data

    def bw(g: np.ndarray) -> None:
        ga = g * (a_wins + 0.5 * tie)
        gb = g * (~a_wins & ~tie) + g * 0.5 * tie
        a._accum(_unbroadcast(ga, a.shape))
        b._accum(_unbroadcast(gb, b.shape))

    return Tensor._make(out_data, (a, b), bw, "minimum")


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise max; ties split the gradient evenly."""
    out_data = np.maximum(a.data, b.data)
    a_wins = a.data > b.data
    tie = a.data == b.data

    def bw(g: np.ndarray) -> None:
        ga = g * (a_wins + 0.5 * tie)
        gb = g * (~a_wins & ~tie) + g * 0.5 * tie
        a._accum(_unbroadcast(ga, a.shape))
        b._accum(_unbroadcast(gb, b.shape))

    return Tensor._make(out_data, (a, b), bw, "maximum")


def where(cond: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable ``np.where`` with a non-differentiable condition."""
    cond = np.asarray(cond, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def bw(g: np.ndarray) -> None:
        a._accum(_unbroadcast(np.where(cond, g, 0.0), a.shape))
        b._accum(_unbroadcast(np.where(cond, 0.0, g), b.shape))

    return Tensor._make(out_data, (a, b), bw, "where", {"cond": cond})
