"""Reverse-mode automatic differentiation on numpy arrays.

This subpackage stands in for the GPU deep-learning framework (PyTorch) the
paper's implementation relied on. It provides a :class:`Tensor` wrapping a
numpy array, ~30 differentiable primitives with full broadcasting support,
and a topological-sort backward pass. Everything is vectorised — a forward
pass over a batch of configurations is a handful of BLAS calls, exactly the
shape of work a GPU kernel would do.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional
from repro.tensor.grad_check import gradcheck, numerical_grad, per_sample_jacobian

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "gradcheck",
    "numerical_grad",
    "per_sample_jacobian",
]
