"""Computation-graph inspection utilities.

Debugging aids for the autograd engine: walk the backward graph of a
tensor, count its nodes, and dump it as Graphviz-DOT text (render with any
dot viewer; no graphviz dependency needed to *produce* the text).
"""

from __future__ import annotations

from repro.tensor.tensor import Tensor

__all__ = ["graph_nodes", "graph_size", "to_dot"]


def graph_nodes(root: Tensor) -> list[Tensor]:
    """All tensors reachable backwards from ``root`` (topological order,
    inputs first)."""
    topo: list[Tensor] = []
    seen: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for p in node._parents:
            if id(p) not in seen:
                stack.append((p, False))
    return topo


def graph_size(root: Tensor) -> int:
    """Number of tensors in the backward graph (leaves included)."""
    return len(graph_nodes(root))


def to_dot(root: Tensor, max_nodes: int = 500) -> str:
    """Graphviz-DOT text of the backward graph.

    Leaves (no parents) render as boxes — parameters are shaded; op outputs
    render as ellipses labelled with their shape. Raises if the graph
    exceeds ``max_nodes`` (dump a smaller expression instead).
    """
    nodes = graph_nodes(root)
    if len(nodes) > max_nodes:
        raise ValueError(
            f"graph has {len(nodes)} nodes (> {max_nodes}); "
            "dump a smaller expression"
        )
    ids = {id(t): f"t{i}" for i, t in enumerate(nodes)}
    lines = ["digraph autograd {", "  rankdir=LR;"]
    for t in nodes:
        name = ids[id(t)]
        label = t.name or f"{tuple(t.shape)}"
        if not t._parents:
            style = (
                'shape=box, style=filled, fillcolor="#cfe2ff"'
                if t.requires_grad
                else "shape=box"
            )
            lines.append(f'  {name} [{style}, label="{label}"];')
        else:
            lines.append(f'  {name} [shape=ellipse, label="{label}"];')
    for t in nodes:
        for p in t._parents:
            lines.append(f"  {ids[id(p)]} -> {ids[id(t)]};")
    lines.append("}")
    return "\n".join(lines)
