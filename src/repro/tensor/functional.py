"""Functional interface over :class:`repro.tensor.Tensor`.

Mirrors the small slice of ``torch.nn.functional`` the paper's models need,
so model code reads like the architectures in §5.1 of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import (
    Tensor,
    concatenate,
    maximum,
    minimum,
    stack,
    where,
)

__all__ = [
    "relu",
    "sigmoid",
    "log_sigmoid",
    "softplus",
    "tanh",
    "exp",
    "log",
    "sqrt",
    "log_cosh",
    "log1p",
    "expm1",
    "sin",
    "cos",
    "clip",
    "logsumexp",
    "softmax",
    "linear",
    "masked_linear",
    "bernoulli_log_prob",
    "concatenate",
    "stack",
    "where",
    "minimum",
    "maximum",
    "as_tensor",
]


def as_tensor(x, requires_grad: bool = False) -> Tensor:
    """Coerce array-like input into a :class:`Tensor`."""
    return x if isinstance(x, Tensor) else Tensor(x, requires_grad=requires_grad)


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def log_sigmoid(x: Tensor) -> Tensor:
    return x.log_sigmoid()


def softplus(x: Tensor) -> Tensor:
    return x.softplus()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def exp(x: Tensor) -> Tensor:
    return x.exp()


def log(x: Tensor) -> Tensor:
    return x.log()


def sqrt(x: Tensor) -> Tensor:
    return x.sqrt()


def log_cosh(x: Tensor) -> Tensor:
    return x.log_cosh()


def log1p(x: Tensor) -> Tensor:
    return x.log1p()


def expm1(x: Tensor) -> Tensor:
    return x.expm1()


def sin(x: Tensor) -> Tensor:
    return x.sin()


def cos(x: Tensor) -> Tensor:
    return x.cos()


def clip(x: Tensor, low: float | None = None, high: float | None = None) -> Tensor:
    return x.clip(low, high)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    return x.logsumexp(axis=axis, keepdims=keepdims)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.softmax(axis=axis)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ W.T + b`` with ``x: (batch, in)``, ``W: (out, in)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def masked_linear(
    x: Tensor, weight: Tensor, mask: np.ndarray, bias: Tensor | None = None
) -> Tensor:
    """Linear layer with a fixed binary connectivity mask on the weights.

    This is the ``MaskedFC`` of the paper's MADE: the mask is a constant, so
    the gradient w.r.t. the weight is masked automatically by the product
    rule — masked-out entries stay at exactly zero gradient.
    """
    masked_w = weight * Tensor(mask)
    out = x @ masked_w.T
    if bias is not None:
        out = out + bias
    return out


def bernoulli_log_prob(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Log-probability of binary ``targets`` under independent Bernoullis.

    ``log p = t * log σ(z) + (1-t) * log σ(-z)``, computed with the stable
    ``log_sigmoid`` so extreme logits never produce ``log(0)``. Returns the
    elementwise log-probabilities (caller reduces over the site axis).

    This is a fused primitive: the forward evaluates both stable closed
    forms (``log σ(±z) = min(±z, 0) − log1p(e^{−|z|})``, sharing the
    ``log1p`` term) and the backward is the classic logit gradient
    ``∂/∂z = t − σ(z)`` — one elementwise family instead of the eight-node
    subgraph the previous composition recorded, which both speeds the
    interpreter and keeps the :mod:`repro.jit` tape short. Gradients flow
    into ``logits`` only; targets are binary configurations and are never
    differentiated.
    """
    targets = np.asarray(targets, dtype=np.float64)
    t = Tensor(targets)
    z = logits.data
    log1p_term = np.log1p(np.exp(-np.abs(z)))
    log_p = np.minimum(z, 0.0) - log1p_term
    log_q = np.minimum(-z, 0.0) - log1p_term
    out_data = targets * log_p + (1.0 - targets) * log_q
    sig = np.exp(log_p)

    def bw(g: np.ndarray) -> None:
        logits._accum(g * (targets - sig))

    return Tensor._make(out_data, (logits, t), bw, "bernoulli_log_prob")
