"""Declarative parameter sweeps with aggregation.

A :class:`Sweep` expands a parameter grid into :class:`TrialSpec`s, runs
them (sequentially, or on a process pool for genuinely parallel machines)
and collects :class:`TrialRecord`s; :func:`aggregate` groups records and
reduces a metric to mean ± std — the exact shape of the paper's multi-seed
tables.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.experiments.protocol import make_hamiltonian, train_once

__all__ = ["TrialSpec", "TrialRecord", "Sweep", "aggregate"]


@dataclass(frozen=True)
class TrialSpec:
    """One training run's full configuration."""

    problem: str = "tim"  # 'tim' | 'maxcut' | 'chain' | 'grid'
    n: int = 20
    arch: str = "made"
    sampler: str = "auto"
    optimizer: str = "adam"
    iterations: int = 50
    batch_size: int = 256
    seed: int = 0
    instance_seed: int = 0
    hidden: int | None = None
    burn_in: int | None = None
    thin: int = 1

    def run(self) -> "TrialRecord":
        ham = make_hamiltonian(self.problem, self.n, seed=self.instance_seed)
        out = train_once(
            ham,
            self.arch,
            self.sampler,
            self.optimizer,
            self.iterations,
            self.batch_size,
            seed=self.seed,
            hidden=self.hidden,
            burn_in=self.burn_in,
            thin=self.thin,
        )
        return TrialRecord(
            spec=self,
            final_energy=out.final_energy,
            final_std=out.final_std,
            best_cut=out.best_cut,
            train_seconds=out.train_seconds,
            energy_curve=np.asarray(out.history.energy),
        )


@dataclass
class TrialRecord:
    spec: TrialSpec
    final_energy: float
    final_std: float
    best_cut: float | None
    train_seconds: float
    energy_curve: np.ndarray = field(repr=False)

    def value(self, metric: str):
        if metric in ("final_energy", "final_std", "best_cut", "train_seconds"):
            return getattr(self, metric)
        raise KeyError(f"unknown metric {metric!r}")


def _run_trial(spec: TrialSpec) -> TrialRecord:
    return spec.run()


class Sweep:
    """Cartesian-product sweep over TrialSpec fields.

    Examples
    --------
    >>> sweep = Sweep(base=TrialSpec(problem="maxcut", iterations=20),
    ...               grid={"n": [16, 30], "seed": [0, 1, 2]})
    >>> len(sweep.trials())
    6
    """

    def __init__(self, base: TrialSpec, grid: dict[str, Sequence[Any]]):
        valid = set(asdict(base))
        unknown = set(grid) - valid
        if unknown:
            raise KeyError(f"unknown TrialSpec fields in grid: {sorted(unknown)}")
        self.base = base
        self.grid = {k: list(v) for k, v in grid.items()}
        if any(len(v) == 0 for v in self.grid.values()):
            raise ValueError("grid axes must be non-empty")

    def trials(self) -> list[TrialSpec]:
        keys = list(self.grid)
        combos = itertools.product(*(self.grid[k] for k in keys))
        base = asdict(self.base)
        out = []
        for combo in combos:
            cfg = dict(base)
            cfg.update(dict(zip(keys, combo)))
            out.append(TrialSpec(**cfg))
        return out

    def run(self, workers: int = 1) -> list[TrialRecord]:
        """Run all trials; ``workers > 1`` uses a process pool."""
        trials = self.trials()
        if workers <= 1:
            return [t.run() for t in trials]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_run_trial, trials))


def aggregate(
    records: Iterable[TrialRecord],
    by: Sequence[str],
    metric: str = "final_energy",
) -> dict[tuple, tuple[float, float]]:
    """Group records by spec fields and reduce ``metric`` to (mean, std).

    ``by`` names TrialSpec fields (e.g. ``("n", "optimizer")``); the seeds
    axis is what typically gets averaged over.
    """
    groups: dict[tuple, list[float]] = {}
    for rec in records:
        key = tuple(getattr(rec.spec, f) for f in by)
        val = rec.value(metric)
        if val is None:
            raise ValueError(f"metric {metric!r} is None for {rec.spec}")
        groups.setdefault(key, []).append(float(val))
    return {
        key: (float(np.mean(vals)), float(np.std(vals)))
        for key, vals in sorted(groups.items())
    }
