"""Experiment protocol and sweep framework.

- :mod:`repro.experiments.protocol` — the paper's §5.1 experimental
  protocol as code: architecture builders (MADE h = 5(log n)², RBM h = n),
  optimiser settings (Adam 0.01 / SGD 0.1 / SR λ=0.001), the 2-chain
  k = 3n+100 MCMC sampler, and :func:`train_once` running one full
  train-and-evaluate cycle.
- :mod:`repro.experiments.sweep` — declarative parameter grids expanded
  into trials, executed sequentially or on a process pool, aggregated into
  mean ± std tables (the machinery behind the multi-seed tables).
"""

from repro.experiments.protocol import (
    TrainOutcome,
    build_model,
    build_optimizer,
    build_sampler,
    make_hamiltonian,
    train_once,
)
from repro.experiments.sweep import Sweep, TrialSpec, aggregate

__all__ = [
    "TrainOutcome",
    "build_model",
    "build_optimizer",
    "build_sampler",
    "make_hamiltonian",
    "train_once",
    "Sweep",
    "TrialSpec",
    "aggregate",
]
