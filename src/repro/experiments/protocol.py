"""The paper's experimental protocol (§5.1), as reusable code.

Settings encoded here:

- architectures: MADE with ``h = 5 (log n)²``, RBM with ``h = n``;
- optimisers: SGD lr 0.1, Adam lr 0.01 (default), SGD+SR with λ = 0.001
  and lr 0.1, no learning-rate schedule;
- sampling: exact AUTO for MADE; random-walk MH with 2 chains and burn-in
  ``k = 3n + 100`` for RBM;
- evaluation: after training, draw a fresh batch from the trained model and
  report its statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.callbacks import History
from repro.core.vqmc import VQMC
from repro.hamiltonians import (
    LatticeTFIM,
    MaxCut,
    TransverseFieldIsing,
)
from repro.models import MADE, RBM, MeanField, RNNWaveFunction
from repro.optim import SGD, Adam, StochasticReconfiguration
from repro.samplers import (
    AutoregressiveSampler,
    MetropolisSampler,
    ParallelTemperingSampler,
)

__all__ = [
    "build_model",
    "build_sampler",
    "build_optimizer",
    "make_hamiltonian",
    "train_once",
    "TrainOutcome",
]


def build_model(arch: str, n: int, seed: int, hidden=None):
    """§5.1 architectures: ``'made'`` (h = 5(log n)²), ``'rbm'`` (h = n),
    plus the ``'mean_field'`` and ``'rnn'`` extension ansätze."""
    rng = np.random.default_rng(seed)
    if arch == "made":
        return MADE(n, hidden=hidden, rng=rng)
    if arch == "rbm":
        return RBM(n, hidden=hidden, rng=rng)
    if arch == "mean_field":
        return MeanField(n, rng=rng)
    if arch == "rnn":
        return RNNWaveFunction(n, hidden=hidden or 32, rng=rng)
    raise ValueError(f"unknown architecture {arch!r}")


def build_sampler(kind: str, n: int, burn_in=None, thin: int = 1):
    """``'auto'``, the paper's 2-chain MH (``'mcmc'``), or parallel
    tempering (``'tempering'``, extension)."""
    if kind == "auto":
        return AutoregressiveSampler()
    if kind == "mcmc":
        return MetropolisSampler(n_chains=2, burn_in=burn_in, thin=thin)
    if kind == "tempering":
        return ParallelTemperingSampler(burn_in=burn_in)
    raise ValueError(f"unknown sampler {kind!r}")


def build_optimizer(kind: str, model):
    """§5.1 training settings. Returns ``(optimizer, sr_or_None)``."""
    if kind == "sgd":
        return SGD(model.parameters(), lr=0.1), None
    if kind == "adam":
        return Adam(model.parameters(), lr=0.01), None
    if kind == "sgd+sr":
        return (
            SGD(model.parameters(), lr=0.1),
            StochasticReconfiguration(diag_shift=1e-3),
        )
    raise ValueError(f"unknown optimizer {kind!r}")


def make_hamiltonian(kind: str, n: int, seed: int = 0, **kwargs):
    """Problem factories used across the paper's tables.

    ``'tim'`` — dense disordered TIM (§5.1); ``'maxcut'`` — Bernoulli
    random graph (§5.1); ``'chain'`` / ``'grid'`` — geometrically-local
    TFIM (extension).
    """
    if kind == "tim":
        return TransverseFieldIsing.random(n, seed=seed)
    if kind == "maxcut":
        return MaxCut.random(n, seed=seed, **kwargs)
    if kind == "chain":
        return LatticeTFIM((n,), **kwargs)
    if kind == "grid":
        lx = kwargs.pop("lx", None)
        ly = kwargs.pop("ly", None)
        if lx is None or ly is None or lx * ly != n:
            raise ValueError("grid requires lx, ly with lx*ly == n")
        return LatticeTFIM((lx, ly), **kwargs)
    raise ValueError(f"unknown hamiltonian kind {kind!r}")


@dataclass
class TrainOutcome:
    """Result of one protocol run (evaluation-batch statistics)."""

    final_energy: float
    final_std: float
    best_cut: float | None
    train_seconds: float
    history: History


def train_once(
    hamiltonian,
    arch: str,
    sampler_kind: str,
    optimizer_kind: str,
    iterations: int,
    batch_size: int,
    seed: int,
    hidden=None,
    burn_in=None,
    thin: int = 1,
    eval_batch: int | None = None,
) -> TrainOutcome:
    """One full training run under the paper's protocol."""
    n = hamiltonian.n
    model = build_model(arch, n, seed, hidden=hidden)
    sampler = build_sampler(sampler_kind, n, burn_in=burn_in, thin=thin)
    optimizer, sr = build_optimizer(optimizer_kind, model)
    vqmc = VQMC(model, hamiltonian, sampler, optimizer, sr=sr, seed=seed + 10_000)
    history = History()
    start = time.perf_counter()
    vqmc.run(iterations, batch_size=batch_size, callbacks=[history])
    train_seconds = time.perf_counter() - start

    stats = vqmc.evaluate(batch_size=eval_batch or batch_size)
    best_cut = None
    if isinstance(hamiltonian, MaxCut):
        x = sampler.sample(model, eval_batch or batch_size, vqmc.rng)
        best_cut = float(hamiltonian.cut_value(x).max())
    return TrainOutcome(
        final_energy=stats.mean,
        final_std=stats.std,
        best_cut=best_cut,
        train_seconds=train_seconds,
        history=history,
    )
