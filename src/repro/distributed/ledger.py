"""Straggler-aware batch accounting: the global-batch → per-rank split.

The paper's weak-scaling analysis (Eq. 14) assumes every rank finishes its
mini-batch at the same time; one 2× straggler doubles the step time of the
whole synchronous world. NetKet keeps the global chain count (``n_chains``)
and the per-rank count (``n_chains_per_rank``) as separate, runtime-derived
quantities — :class:`BatchLedger` adopts that split and makes the per-rank
share *dynamic*: a cost model (EWMA of observed per-sample seconds) shifts
samples away from slow ranks while the global batch stays constant.

Correctness by construction:

- **Global batch is invariant.** Assignments are produced by
  largest-remainder rounding of the cost-weighted ideal shares, so they sum
  to ``global_batch`` exactly for every cost vector.
- **Deterministic and congruent.** Every rank runs the same pure function
  on the same (allgathered) cost observations — ties broken by slot index —
  so all ranks hold identical assignments without any extra agreement
  round. The energy/gradient estimators are already exact under unequal
  per-rank batches (global-moment centring, global-count normalisation in
  :class:`repro.core.VQMC`), and per-rank RNG streams never depend on the
  batch size, so rebalancing changes *which rank draws how many samples*
  and nothing else.
- **Stable.** A ``min_chunk`` floor keeps every rank sampling (its cost
  stays observable), and a hysteresis band suppresses assignment churn from
  timing noise: a proposed assignment is applied only when it moves some
  rank by more than ``hysteresis`` × the even share.

The ledger is deliberately communication-free; the caller (the training
supervisor) allgathers per-rank costs at step boundaries and feeds every
rank's ledger the same vector.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = ["BatchLedger"]


class BatchLedger:
    """Owns the global-batch → per-rank-batch assignment.

    Parameters
    ----------
    global_batch:
        Total samples per step across all ranks (held invariant).
    world_size:
        Number of live ranks (slots). :meth:`resize` on membership change.
    min_chunk:
        Per-rank floor; no rank is assigned fewer samples than this.
    alpha:
        EWMA weight of the newest cost observation (1.0 = no smoothing).
    hysteresis:
        Relative dead-band: a proposed assignment is applied only if some
        rank moves by more than ``hysteresis * global_batch / world_size``.
    rebalance_every:
        Minimum steps between applied rebalances (0 = every observation).
    """

    def __init__(
        self,
        global_batch: int,
        world_size: int,
        *,
        min_chunk: int = 1,
        alpha: float = 0.5,
        hysteresis: float = 0.1,
        rebalance_every: int = 1,
    ):
        if global_batch < 1:
            raise ValueError(f"global_batch must be >= 1, got {global_batch}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if hysteresis < 0.0:
            raise ValueError(f"hysteresis must be >= 0, got {hysteresis}")
        if min_chunk < 1:
            raise ValueError(f"min_chunk must be >= 1, got {min_chunk}")
        self.global_batch = int(global_batch)
        self.min_chunk = int(min_chunk)
        self.alpha = float(alpha)
        self.hysteresis = float(hysteresis)
        self.rebalance_every = int(rebalance_every)
        self.rebalances = 0
        self._last_applied_step: int | None = None
        #: JSON-serialisable audit log, one entry per observe/rebalance
        self.history: list[dict] = []
        self._init_world(int(world_size))

    def _init_world(self, world_size: int) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if self.global_batch < world_size * self.min_chunk:
            raise ValueError(
                f"global_batch {self.global_batch} cannot give {world_size} "
                f"ranks at least min_chunk={self.min_chunk} samples each"
            )
        self.world_size = world_size
        self._costs: np.ndarray | None = None  # EWMA per-sample seconds
        self._assignment = self._split(np.ones(world_size))

    # -- assignment ---------------------------------------------------------

    def assignment(self) -> list[int]:
        """Current per-slot batch sizes (slot = rank index in the live group)."""
        return list(self._assignment)

    def batch_for(self, slot: int) -> int:
        return int(self._assignment[slot])

    def _split(self, costs: np.ndarray) -> list[int]:
        """Cost-weighted largest-remainder split of ``global_batch``.

        Pure and deterministic: identical inputs yield identical outputs on
        every rank (remainder ties broken by slot index). Each slot gets at
        least ``min_chunk``; the remainder is distributed proportionally to
        inverse cost (a slow rank gets fewer samples).
        """
        weights = 1.0 / np.maximum(np.asarray(costs, dtype=np.float64), 1e-12)
        shares = weights / weights.sum()
        floor = self.min_chunk
        spare = self.global_batch - self.world_size * floor
        ideal = shares * spare
        base = np.floor(ideal).astype(int)
        remainder = spare - int(base.sum())
        # largest fractional parts first; ties by slot index (argsort is stable)
        order = np.argsort(-(ideal - base), kind="stable")
        base[order[:remainder]] += 1
        return [int(floor + b) for b in base]

    # -- cost model ---------------------------------------------------------

    def observe(self, per_sample_seconds) -> None:
        """Fold one cost observation (per-slot seconds per sample) into the
        EWMA model. Non-finite / non-positive entries keep the old estimate
        (a rank that drew nothing this step has no fresh signal)."""
        obs = np.asarray(per_sample_seconds, dtype=np.float64)
        if obs.shape != (self.world_size,):
            raise ValueError(
                f"expected {self.world_size} cost entries, got shape {obs.shape}"
            )
        valid = np.isfinite(obs) & (obs > 0)
        if self._costs is None:
            if not valid.all():
                return  # wait for a full first observation
            self._costs = obs.copy()
            return
        self._costs[valid] = (
            self.alpha * obs[valid] + (1.0 - self.alpha) * self._costs[valid]
        )

    def maybe_rebalance(self, step: int) -> bool:
        """Recompute the assignment from the cost model; apply it only past
        the hysteresis dead-band and the ``rebalance_every`` cadence.
        Returns whether the assignment changed."""
        if self._costs is None:
            return False
        if (
            self._last_applied_step is not None
            and step - self._last_applied_step < self.rebalance_every
        ):
            return False
        proposed = self._split(self._costs)
        even_share = self.global_batch / self.world_size
        delta = max(
            abs(p - c) for p, c in zip(proposed, self._assignment)
        )
        applied = delta > self.hysteresis * even_share
        self.history.append(
            {
                "step": int(step),
                "costs": [float(c) for c in self._costs],
                "proposed": list(proposed),
                "assignment": list(proposed if applied else self._assignment),
                "applied": bool(applied),
            }
        )
        if applied:
            self._assignment = proposed
            self._last_applied_step = int(step)
            self.rebalances += 1
        return applied

    # -- membership ---------------------------------------------------------

    def resize(self, world_size: int) -> None:
        """Reset for a new world size (shrink or grow): even split, cost
        model cleared — stale per-rank costs do not map across membership
        changes (slot *i* may be a different physical rank now)."""
        self._init_world(int(world_size))
        self._last_applied_step = None
        self.history.append(
            {"resize": int(world_size), "assignment": list(self._assignment)}
        )

    # -- audit log ----------------------------------------------------------

    def dump(self, path: str | Path) -> Path:
        """Write the assignment history as JSON (read by ``tools/trace.py
        summary`` to annotate per-rank tables with batch assignments)."""
        path = Path(path)
        payload = {
            "global_batch": self.global_batch,
            "world_size": self.world_size,
            "min_chunk": self.min_chunk,
            "alpha": self.alpha,
            "hysteresis": self.hysteresis,
            "rebalances": self.rebalances,
            "assignment": list(self._assignment),
            "history": self.history,
        }
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        return path

    def __repr__(self) -> str:
        return (
            f"BatchLedger(global_batch={self.global_batch}, "
            f"world_size={self.world_size}, assignment={list(self._assignment)})"
        )
