"""Turn-key data-parallel VQMC runs (the paper's §4 scheme, end to end).

Each rank builds its own model replica (same seed ⇒ same initialisation,
and the driver broadcasts parameters from rank 0 anyway), draws ``mbs``
samples per step from its *own* random stream, and the
:class:`repro.core.VQMC` driver allreduces gradients/statistics so all
replicas stay in lock-step. The effective batch size is
``bs = world_size × mbs`` — Figure 4's x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.callbacks import History
from repro.core.vqmc import VQMC
from repro.utils.rng import spawn_generators

__all__ = ["DataParallelResult", "run_data_parallel"]

Builder = Callable[[int], tuple]


@dataclass
class DataParallelResult:
    """Rank-0 view of a data-parallel training run."""

    energy: np.ndarray  # per-step global mean energy
    std: np.ndarray  # per-step global std of local energies
    final_energy: float
    final_std: float
    world_size: int
    effective_batch_size: int
    wall_time: float


def _dp_worker(comm, rank, builder, iterations, mini_batch_size, seed):
    import time

    parts = builder(rank)
    if len(parts) == 4:
        model, hamiltonian, sampler, optimizer = parts
        sr = None
    else:
        model, hamiltonian, sampler, optimizer, sr = parts
    rank_rng = spawn_generators(seed, comm.size)[rank]
    vqmc = VQMC(
        model,
        hamiltonian,
        sampler,
        optimizer,
        sr=sr,
        comm=comm,
        seed=rank_rng,
    )
    history = History()
    t0 = time.perf_counter()
    vqmc.run(iterations, batch_size=mini_batch_size, callbacks=[history])
    wall = time.perf_counter() - t0
    final = vqmc.evaluate(batch_size=mini_batch_size)
    arrays = history.as_arrays()
    return DataParallelResult(
        energy=arrays["energy"],
        std=arrays["std"],
        final_energy=final.mean,
        final_std=final.std,
        world_size=comm.size,
        effective_batch_size=comm.size * mini_batch_size,
        wall_time=wall,
    )


def run_data_parallel(
    builder: Builder,
    world_size: int,
    iterations: int,
    mini_batch_size: int,
    seed: int = 0,
    backend: str = "threads",
    timeout: float = 600.0,
) -> DataParallelResult:
    """Train VQMC data-parallel over ``world_size`` ranks; return rank 0's view.

    Parameters
    ----------
    builder:
        ``rank -> (model, hamiltonian, sampler, optimizer[, sr])``. Called
        once inside each rank. Models may be initialised arbitrarily — the
        driver broadcasts rank 0's parameters before the first step.
    backend:
        ``'threads'`` (default, cheap) or ``'processes'`` (fork; honest
        address-space separation).
    """
    if backend not in ("threads", "processes"):
        # Validate before the world_size == 1 shortcut: a typo'd backend
        # must fail loudly at any world size, not only when it is reached.
        raise ValueError(
            f"unknown backend {backend!r}; expected 'threads' or 'processes'"
        )
    if world_size == 1:
        from repro.distributed.serial import SerialCommunicator

        return _dp_worker(
            SerialCommunicator(), 0, builder, iterations, mini_batch_size, seed
        )
    if backend == "threads":
        from repro.distributed.threads import run_threaded

        results = run_threaded(
            _dp_worker,
            world_size,
            args=(builder, iterations, mini_batch_size, seed),
            timeout=timeout,
        )
    else:
        from repro.distributed.mp import run_processes

        results = run_processes(
            _dp_worker,
            world_size,
            args=(builder, iterations, mini_batch_size, seed),
            timeout=timeout,
        )
    return results[0]
