"""Turn-key data-parallel VQMC runs (the paper's §4 scheme, end to end).

Each rank builds its own model replica (same seed ⇒ same initialisation,
and the driver broadcasts parameters from rank 0 anyway), draws ``mbs``
samples per step from its *own* random stream, and the
:class:`repro.core.VQMC` driver allreduces gradients/statistics so all
replicas stay in lock-step. The effective batch size is
``bs = world_size × mbs`` — Figure 4's x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.callbacks import History
from repro.core.vqmc import VQMC
from repro.utils.rng import spawn_generators

__all__ = ["DataParallelResult", "run_data_parallel", "run_elastic_data_parallel"]

Builder = Callable[[int], tuple]


@dataclass
class DataParallelResult:
    """Rank-0 view of a data-parallel training run."""

    energy: np.ndarray  # per-step global mean energy
    std: np.ndarray  # per-step global std of local energies
    final_energy: float
    final_std: float
    world_size: int
    effective_batch_size: int
    wall_time: float


def _dp_worker(comm, rank, builder, iterations, mini_batch_size, seed):
    import time

    parts = builder(rank)
    if len(parts) == 4:
        model, hamiltonian, sampler, optimizer = parts
        sr = None
    else:
        model, hamiltonian, sampler, optimizer, sr = parts
    rank_rng = spawn_generators(seed, comm.size)[rank]
    vqmc = VQMC(
        model,
        hamiltonian,
        sampler,
        optimizer,
        sr=sr,
        comm=comm,
        seed=rank_rng,
    )
    history = History()
    t0 = time.perf_counter()
    vqmc.run(iterations, batch_size=mini_batch_size, callbacks=[history])
    wall = time.perf_counter() - t0
    final = vqmc.evaluate(batch_size=mini_batch_size)
    arrays = history.as_arrays()
    return DataParallelResult(
        energy=arrays["energy"],
        std=arrays["std"],
        final_energy=final.mean,
        final_std=final.std,
        world_size=comm.size,
        effective_batch_size=comm.size * mini_batch_size,
        wall_time=wall,
    )


def run_data_parallel(
    builder: Builder,
    world_size: int,
    iterations: int,
    mini_batch_size: int,
    seed: int = 0,
    backend: str = "threads",
    timeout: float = 600.0,
) -> DataParallelResult:
    """Train VQMC data-parallel over ``world_size`` ranks; return rank 0's view.

    Parameters
    ----------
    builder:
        ``rank -> (model, hamiltonian, sampler, optimizer[, sr])``. Called
        once inside each rank. Models may be initialised arbitrarily — the
        driver broadcasts rank 0's parameters before the first step.
    backend:
        ``'threads'`` (default, cheap) or ``'processes'`` (fork; honest
        address-space separation).
    """
    if backend not in ("threads", "processes"):
        # Validate before the world_size == 1 shortcut: a typo'd backend
        # must fail loudly at any world size, not only when it is reached.
        raise ValueError(
            f"unknown backend {backend!r}; expected 'threads' or 'processes'"
        )
    if world_size == 1:
        from repro.distributed.serial import SerialCommunicator

        return _dp_worker(
            SerialCommunicator(), 0, builder, iterations, mini_batch_size, seed
        )
    if backend == "threads":
        from repro.distributed.threads import run_threaded

        results = run_threaded(
            _dp_worker,
            world_size,
            args=(builder, iterations, mini_batch_size, seed),
            timeout=timeout,
        )
    else:
        from repro.distributed.mp import run_processes

        results = run_processes(
            _dp_worker,
            world_size,
            args=(builder, iterations, mini_batch_size, seed),
            timeout=timeout,
        )
    return results[0]


def _elastic_worker(
    comm,
    rank,
    builder,
    iterations,
    global_batch,
    seed,
    checkpoint_dir,
    plan,
    supervisor_opts,
    ledger_opts,
    ledger_log,
):
    from repro.distributed.faults import FaultInjectionCallback, FaultyCommunicator
    from repro.distributed.ledger import BatchLedger
    from repro.distributed.resilient import ResilientCommunicator, RetryPolicy
    from repro.distributed.supervisor import TrainingSupervisor

    opts = dict(supervisor_opts)
    retry = opts.pop("retry", None) or RetryPolicy(
        max_attempts=2, backoff_base=0.01, attempt_timeout=0.25
    )
    inner = FaultyCommunicator(comm, plan) if plan is not None else comm
    rcomm = ResilientCommunicator(inner, retry)

    parts = builder(rank)
    if len(parts) == 4:
        model, hamiltonian, sampler, optimizer = parts
        sr = None
    else:
        model, hamiltonian, sampler, optimizer, sr = parts
    rank_rng = spawn_generators(seed, comm.size)[rank]
    vqmc = VQMC(
        model, hamiltonian, sampler, optimizer, sr=sr, comm=rcomm, seed=rank_rng
    )
    callbacks = list(opts.pop("callbacks", ()))
    if plan is not None:
        callbacks.append(FaultInjectionCallback(plan, rank))
    ledger = BatchLedger(global_batch, comm.size, **dict(ledger_opts or {}))
    supervisor = TrainingSupervisor(
        vqmc,
        checkpoint_dir=checkpoint_dir,
        callbacks=callbacks,
        ledger=ledger,
        **opts,
    )
    report = supervisor.run(iterations)
    if ledger_log is not None and rank == 0:
        ledger.dump(ledger_log)
    return report, vqmc.model.flat_parameters()


def run_elastic_data_parallel(
    builder: Builder,
    world_size: int,
    iterations: int,
    global_batch: int,
    *,
    checkpoint_dir,
    seed: int = 0,
    backend: str = "threads",
    timeout: float = 600.0,
    plan=None,
    ledger_opts: dict | None = None,
    ledger_log=None,
    **supervisor_opts: Any,
) -> list:
    """Train under full elastic supervision; returns every rank's
    ``(report, final_params)``.

    The elastic sibling of :func:`run_data_parallel`: each rank's
    communicator is wrapped in a
    :class:`~repro.distributed.resilient.ResilientCommunicator` (over a
    :class:`~repro.distributed.faults.FaultyCommunicator` when a ``plan``
    is given — chaos testing), the per-rank batch comes from a shared
    :class:`~repro.distributed.ledger.BatchLedger` over ``global_batch``,
    and each rank runs a
    :class:`~repro.distributed.supervisor.TrainingSupervisor`. Extra
    keyword arguments (``accept_joins``, ``sync_every``, ``policy``,
    ``elastic``, ``retry`` …) forward to the supervisor; ``ledger_log``
    names a JSON file rank 0 dumps the ledger history to (read by
    ``tools/trace.py summary``).
    """
    if backend not in ("threads", "processes"):
        raise ValueError(
            f"unknown backend {backend!r}; expected 'threads' or 'processes'"
        )
    args = (
        builder,
        iterations,
        global_batch,
        seed,
        str(checkpoint_dir),
        plan,
        supervisor_opts,
        ledger_opts,
        ledger_log,
    )
    if backend == "threads":
        from repro.distributed.threads import run_threaded

        return run_threaded(_elastic_worker, world_size, args=args, timeout=timeout)
    from repro.distributed.mp import run_processes

    return run_processes(_elastic_worker, world_size, args=args, timeout=timeout)

