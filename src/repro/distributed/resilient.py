"""Resilient communication: checksummed frames, bounded retry, escalation.

A single straggling or dead rank stalls a synchronous allreduce — the
paper's weak-scaling result assumes 48 healthy GPUs, and the bare backends
here only had a deadlock-guard timeout. :class:`ResilientCommunicator`
wraps any backend and adds the machinery a production run needs:

- **Framing.** Every message is wrapped in a self-describing frame:
  ``[checksum, magic, seq, ndim, *shape, *payload]`` (all float64). The
  checksum is a wraparound uint64 sum over everything after slot 0 — one
  vectorised pass covering header *and* payload, detecting any single bit
  flip — so corruption in transit is caught at the receiver instead of
  silently poisoning a gradient (or forging a sequence number).
  Per-``(src, dst)`` sequence numbers detect duplicated and lost messages.
- **Bounded retry with exponential backoff.** ``recv`` retries on
  :class:`~repro.distributed.comm.CommTimeoutError` and on checksum
  mismatch, sleeping ``backoff_base · 2^attempt`` between attempts, and
  escalates to a typed :class:`~repro.distributed.comm.RankFailure` (with
  the offending rank attached) after ``max_attempts``.
- **Observability.** Recovery actions are counted in the shared
  :class:`~repro.distributed.comm.CommStats` (``retries``,
  ``checksum_errors``, ``duplicates_discarded``, ``timeouts_recovered``,
  ``rank_failures``) — read, run, diff, exactly like the traffic counters.
- **Control frames.** The elastic layer
  (:mod:`repro.distributed.elastic`) broadcasts heartbeats/consensus
  bitmaps as *control* frames. A control frame arriving where data was
  expected means a peer has abandoned the current collective; ``recv``
  pushes it back and raises ``RankFailure`` so this rank joins the
  failure-detection epoch instead of consuming garbage.

The collectives (allreduce, broadcast, …) are inherited from
:class:`~repro.distributed.comm.Communicator` and therefore run over the
framed point-to-point layer unchanged — resilience composes with every
collective algorithm and with :class:`SubCommunicator` world shrinking.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.distributed.comm import (
    DEFAULT_TIMEOUT,
    ChecksumError,
    Communicator,
    CommTimeoutError,
    OwnedFrame,
    RankFailure,
)

__all__ = ["RetryPolicy", "ResilientCommunicator", "JOIN_TAG"]

#: Fault hook for the schedule explorer (repro.analysis.explore): setting
#: this False re-introduces the historical recv livelock — discarded
#: frames (duplicates, stale JOIN announcements) consume no retry attempt,
#: so without the overall escalation deadline a peer flooding them keeps
#: ``_recv_loop`` alive forever without ever delivering data. Production
#: code must never touch it; the explorer's seeded-bug scenarios flip it
#: under a finally-guard to prove they can rediscover the bug.
_DISCARD_DEADLINE = True

#: frame type tags (exact float64 constants, compared bit-exactly)
_DATA_MAGIC = 1.6180339887e9
_CTRL_MAGIC = 2.7182818284e9

_HEADER = 4  # checksum, magic, seq, ndim

#: first payload slot of an elastic join announcement (``[JOIN, rank, epoch]``,
#: see :mod:`repro.distributed.elastic`). Defined here — below the elastic
#: layer — because the *data* path must recognise it: a JOIN control frame
#: interleaved with data traffic is a stale re-announcement from a rank that
#: has already been admitted (the joiner re-sends until invited), not a peer
#: abandoning the collective, so it is discarded like a duplicate instead of
#: escalating to :class:`RankFailure`.
JOIN_TAG = 3.0


def _checksum_u64(flat: np.ndarray) -> np.uint64:
    """Wraparound uint64 sum over a contiguous float64 array's bit patterns
    (one vectorised pass; detects any single bit flip)."""
    if flat.size == 0:
        return np.uint64(0)
    return np.add.reduce(flat.view(np.uint64), dtype=np.uint64)


def _checksum(flat: np.ndarray) -> float:
    """The checksum bit-stored in a float64 slot (exact round trip via view)."""
    return float(
        np.array([_checksum_u64(flat)], dtype=np.uint64).view(np.float64)[0]
    )


def _frame(magic: float, seq: int, array: np.ndarray) -> np.ndarray:
    # Hot path: called once per point-to-point message, so every collective
    # pays it 2(L-1)/L times per element. Single allocation, single copy,
    # one checksum pass; the checksum is written through a uint64 view so no
    # float round trip is needed.
    if (
        type(array) is np.ndarray
        and array.dtype == np.float64
        and array.flags.c_contiguous
    ):
        arr = array
    else:
        arr = np.ascontiguousarray(array, dtype=np.float64)
    ndim = arr.ndim
    flat = arr.reshape(-1)
    frame = np.empty(_HEADER + ndim + flat.size)
    frame[1] = magic
    frame[2] = seq
    frame[3] = ndim
    if ndim == 1:
        frame[4] = flat.size
    else:
        frame[_HEADER:_HEADER + ndim] = arr.shape
    frame[_HEADER + ndim:] = flat
    # checksum slot 0 covers everything after it (header and payload alike)
    frame[0:1].view(np.uint64)[0] = _checksum_u64(frame[1:])
    return frame.view(OwnedFrame)


def _unframe(raw: np.ndarray) -> tuple[str, int, np.ndarray]:
    """Parse and verify a frame; raises :class:`ChecksumError` on anything
    that does not check out (a corrupted header is indistinguishable from a
    corrupted payload, so every parse failure maps to the same error).

    The returned payload is a zero-copy view into the frame buffer (the
    receiver owns it exclusively)."""
    try:
        f = raw if type(raw) is np.ndarray else raw.view(np.ndarray)
        if f.dtype != np.float64 or f.ndim != 1:
            f = np.asarray(f, dtype=np.float64).reshape(-1)
        if f.shape[0] < _HEADER:
            raise ChecksumError(f"frame too short ({f.shape[0]} slots)")
        # Verify first: the checksum covers header and payload, so any
        # single flipped bit anywhere in the frame is caught here. Compare
        # the uint64 bit patterns (the stored sum may be a float64 NaN
        # pattern, and NaN != NaN as floats).
        if f[0:1].view(np.uint64).item(0) != int(_checksum_u64(f[1:])):
            raise ChecksumError("frame checksum mismatch")
        magic = f.item(1)
        if magic == _DATA_MAGIC:
            kind = "data"
        elif magic == _CTRL_MAGIC:
            kind = "ctrl"
        else:
            raise ChecksumError(f"unrecognised frame magic {magic!r}")
        ndim = int(f.item(3))
        if not 0 <= ndim <= 32 or f.shape[0] < _HEADER + ndim:
            raise ChecksumError(f"corrupt frame header (ndim={f.item(3)!r})")
        payload = f[_HEADER + ndim:]
        if ndim == 1:  # fast path: every collective message is flat
            if int(f.item(4)) != payload.shape[0]:
                raise ChecksumError(
                    f"corrupt frame shape ({f.item(4)!r}) for "
                    f"{payload.shape[0]} elems"
                )
        else:
            shape = tuple(int(s) for s in f[_HEADER:_HEADER + ndim])
            if any(s < 0 for s in shape) or int(np.prod(shape, dtype=np.int64)) != payload.size:
                raise ChecksumError(
                    f"corrupt frame shape {shape} for {payload.size} elems"
                )
            payload = payload.reshape(shape)
        return kind, int(f.item(2)), payload
    except ChecksumError:
        raise
    except Exception as exc:  # defensive: a flipped header bit can break parsing anywhere
        raise ChecksumError(f"unparseable frame: {exc}") from None


@dataclass
class RetryPolicy:
    """Bounded-retry parameters for :class:`ResilientCommunicator`.

    Attributes
    ----------
    max_attempts:
        Receive attempts (timeout or checksum failure each consume one)
        before escalating to :class:`RankFailure`.
    backoff_base:
        Sleep ``backoff_base · 2^attempt`` seconds between attempts.
    attempt_timeout:
        Per-attempt recv timeout; ``None`` uses the caller's timeout for
        every attempt. Set this in fault-tolerant runs — collectives call
        ``recv`` with the 60 s deadlock-guard default, and failure
        *detection* should escalate much sooner than that.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    attempt_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")

    def backoff(self, attempt: int) -> float:
        return self.backoff_base * (2**attempt)

    def escalation_time(self, fallback_timeout: float = DEFAULT_TIMEOUT) -> float:
        """Worst-case seconds before a recv escalates to RankFailure."""
        per = self.attempt_timeout if self.attempt_timeout is not None else fallback_timeout
        return self.max_attempts * per + sum(
            self.backoff(a) for a in range(self.max_attempts - 1)
        )


class ResilientCommunicator(Communicator):
    """Checksummed, retrying wrapper over any point-to-point backend.

    Both endpoints of every channel must be wrapped (frames on the wire).
    Traffic and recovery counters share the wrapped communicator's
    :class:`CommStats`.
    """

    def __init__(self, inner: Communicator, policy: RetryPolicy | None = None):
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.algorithm = inner.algorithm
        self._send_seq: dict[int, int] = {}
        self._recv_seq: dict[int, int] = {}
        self._pushback: dict[int, deque] = {}

    # -- delegation -----------------------------------------------------------

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def stats(self):
        return self.inner.stats

    # -- framing --------------------------------------------------------------

    def send(self, dest: int, array: np.ndarray) -> None:
        # peer validation is delegated to the wrapped backend's send
        seq = self._send_seq.get(dest, 0)
        self._send_seq[dest] = seq + 1
        self.inner.send(dest, _frame(_DATA_MAGIC, seq, array))

    def send_ctrl(self, dest: int, payload: np.ndarray) -> None:
        """Send a control frame (failure detection / consensus traffic).

        Control frames carry no sequence number and never advance the data
        stream; a data ``recv`` that encounters one raises ``RankFailure``
        (the peer has abandoned normal traffic)."""
        self._check_peer(dest)
        self.inner.send(dest, _frame(_CTRL_MAGIC, -1, payload))

    def _next_frame(self, source: int, timeout: float) -> np.ndarray:
        stash = self._pushback.get(source)
        if stash:
            return stash.popleft()
        return self.inner.recv(source, timeout=timeout)

    def poll(self, source: int, timeout: float = 0.0) -> bool:
        if self._pushback.get(source):
            return True
        return self.inner.poll(source, timeout=timeout)

    # -- data path ------------------------------------------------------------

    def recv(self, source: int, timeout: float = DEFAULT_TIMEOUT) -> np.ndarray:
        policy = self.policy
        per = policy.attempt_timeout if policy.attempt_timeout is not None else timeout
        # Fast path — no pushback pending, the frame arrives, verifies, and
        # is in sequence. This is every message of a healthy run, so it
        # avoids the retry-loop machinery entirely (framing cost is already
        # ~2 memory passes per message; the Python around it must not add
        # more). Failures hand off to the retry loop with the attempt
        # already accounted.
        if not self._pushback.get(source):
            try:
                raw = self.inner.recv(source, per)
            except CommTimeoutError as exc:
                return self._recv_loop(source, timeout, attempts=1, fail=exc)
            try:
                kind, seq, payload = _unframe(raw)
            except ChecksumError as exc:
                self.stats.checksum_errors += 1
                return self._recv_loop(source, timeout, attempts=1, fail=exc)
            expected = self._recv_seq.get(source, 0)
            if kind == "data" and seq == expected:
                self._recv_seq[source] = expected + 1
                return payload
            out = self._accept(source, kind, seq, payload, raw, had_timeout=False)
            if out is not None:
                return out  # unreachable (duplicates and stale JOINs return None)
        return self._recv_loop(source, timeout)

    def _escalate(self, source: int, attempts: int, exc: Exception) -> None:
        self.stats.rank_failures += 1
        reason = (
            "no valid message"
            if isinstance(exc, CommTimeoutError)
            else "persistent corruption"
        )
        raise RankFailure(
            source, f"{reason} after {attempts} attempt(s): {exc}"
        ) from exc

    def _accept(
        self,
        source: int,
        kind: str,
        seq: int,
        payload: np.ndarray,
        raw: np.ndarray,
        had_timeout: bool,
    ) -> np.ndarray | None:
        """Sequencing logic shared by the fast path and the retry loop:
        returns the payload to deliver, ``None`` for a discarded duplicate,
        and raises :class:`RankFailure` on control frames / message loss."""
        if kind == "ctrl":
            if payload.size == 3 and payload[0] == JOIN_TAG:
                # Stale join re-announcement (the joiner repeats it until a
                # survivor invites it) — harmless, skip like a duplicate.
                self.stats.duplicates_discarded += 1
                return None
            # Failure-detection traffic interleaved with data: a peer has
            # abandoned the collective. Preserve the frame for the
            # detection protocol and escalate.
            self._pushback.setdefault(source, deque()).append(raw)
            self.stats.rank_failures += 1
            raise RankFailure(
                source,
                "control frame received during data traffic "
                "(peer entered failure detection)",
            )
        expected = self._recv_seq.get(source, 0)
        if seq < expected:
            self.stats.duplicates_discarded += 1
            return None
        if seq > expected:
            self.stats.rank_failures += 1
            raise RankFailure(
                source, f"message loss detected (got seq {seq}, expected {expected})"
            )
        self._recv_seq[source] = expected + 1
        if had_timeout:
            self.stats.timeouts_recovered += 1
        return payload

    def _recv_loop(
        self,
        source: int,
        timeout: float,
        attempts: int = 0,
        fail: Exception | None = None,
    ) -> np.ndarray:
        """Bounded-retry receive. ``attempts``/``fail`` carry the state of a
        failed fast-path attempt so escalation and backoff accounting stay
        exact."""
        policy = self.policy
        had_timeout = isinstance(fail, CommTimeoutError)
        # Overall deadline, independent of the per-attempt accounting:
        # discarded frames (duplicates, stale JOIN announcements) do not
        # consume an attempt, so a peer that floods them — a restarted rank
        # re-announcing every few hundred ms — would otherwise keep this
        # recv alive forever without ever delivering data (livelock: each
        # arriving frame resets the inner recv's timeout window).
        per = policy.attempt_timeout if policy.attempt_timeout is not None else timeout
        deadline = time.monotonic() + policy.escalation_time(per)
        if attempts:
            if attempts >= policy.max_attempts:
                self._escalate(source, attempts, fail)
            self.stats.retries += 1
            time.sleep(policy.backoff(attempts - 1))
        while True:
            per = policy.attempt_timeout if policy.attempt_timeout is not None else timeout
            try:
                raw = self._next_frame(source, per)
            except CommTimeoutError as exc:
                had_timeout = True
                attempts += 1
                if attempts >= policy.max_attempts:
                    self._escalate(source, attempts, exc)
                self.stats.retries += 1
                time.sleep(policy.backoff(attempts - 1))
                continue
            try:
                kind, seq, payload = _unframe(raw)
            except ChecksumError as exc:
                self.stats.checksum_errors += 1
                attempts += 1
                if attempts >= policy.max_attempts:
                    self._escalate(source, attempts, exc)
                self.stats.retries += 1
                time.sleep(policy.backoff(attempts - 1))
                continue
            out = self._accept(source, kind, seq, payload, raw, had_timeout)
            if out is not None:
                return out
            if _DISCARD_DEADLINE and time.monotonic() >= deadline:
                self._escalate(
                    source,
                    attempts + 1,
                    CommTimeoutError(
                        f"rank {self.rank}: only discardable frames from "
                        f"rank {source} within the retry budget"
                    ),
                )

    # -- control path ---------------------------------------------------------

    def recv_ctrl(self, source: int, timeout: float) -> np.ndarray:
        """Receive the next control frame from ``source`` within ``timeout``.

        Data frames encountered on the way are *stale* traffic from an
        aborted collective: they are consumed (keeping the sequence counters
        aligned with the sender for post-shrink traffic) and skipped.
        Corrupt frames are counted and skipped.
        """
        self._check_peer(source)
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CommTimeoutError(
                    f"rank {self.rank}: no control frame from rank {source} "
                    f"within {timeout}s"
                )
            try:
                raw = self._next_frame(source, remaining)
            except CommTimeoutError:
                continue  # loop re-checks the deadline and raises coherently
            try:
                kind, seq, payload = _unframe(raw)
            except ChecksumError:
                self.stats.checksum_errors += 1
                continue
            if kind == "ctrl":
                return payload
            expected = self._recv_seq.get(source, 0)
            if seq < expected:
                self.stats.duplicates_discarded += 1
            else:
                # Consume the stale data frame; a gap means frames were
                # lost mid-abort — fast-forward to the sender's position.
                self._recv_seq[source] = seq + 1

    def reset_peer(self, peer: int) -> None:
        """Forget all channel state for ``peer``: sequence counters (both
        directions), pushback, and any frames still queued on the raw
        channel.

        The elastic grow handshake calls this *symmetrically* — the joiner
        resets every peer before announcing, each survivor resets the
        joiner before inviting. A restarted process begins with fresh
        sequence counters, so the surviving side must zero its own or every
        post-join message would be rejected as loss/duplication; and frames
        from the peer's previous life (aborted collectives, duplicate join
        announcements) must not leak into the new epoch's traffic.
        """
        self._check_peer(peer)
        self._send_seq.pop(peer, None)
        self._recv_seq.pop(peer, None)
        self._pushback.pop(peer, None)
        try:
            while self.inner.poll(peer):
                self.inner.recv(peer, timeout=0.05)
        except (CommTimeoutError, NotImplementedError):
            pass
        except Exception:  # noqa: BLE001 — a closed pipe to a dead peer is expected
            pass

    # -- barrier --------------------------------------------------------------

    def barrier(self) -> None:
        # Dissemination over the framed channels, so a dead peer escalates
        # to RankFailure instead of wedging a backend-native barrier.
        token = np.zeros(1)
        distance = 1
        while distance < self.size:
            self.send((self.rank + distance) % self.size, token)
            self.recv((self.rank - distance) % self.size, timeout=DEFAULT_TIMEOUT)
            distance <<= 1
