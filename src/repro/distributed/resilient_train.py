"""Fault-tolerant VQMC training: survive crashes, shrink, resume bit-exactly.

:func:`train_resilient` drives a :class:`repro.core.VQMC` trainer whose
communicator is a :class:`~repro.distributed.resilient.ResilientCommunicator`
(optionally over a :class:`~repro.distributed.faults.FaultyCommunicator`
for testing). The recovery contract:

- Transient faults (stragglers, duplicated or transiently-corrupted
  messages) are absorbed invisibly by the resilient layer's retries —
  training is bit-identical to a fault-free run.
- Unrecoverable faults (a dead or persistently-failing rank) escalate to
  :class:`~repro.distributed.comm.RankFailure`. The supervisor then
  (1) runs heartbeat detection + survivor consensus
  (:func:`~repro.distributed.elastic.detect_survivors`), (2) shrinks the
  trainer's world onto the survivors, (3) agrees (min-allreduce) on the
  newest checkpoint step every survivor can verify, and (4) restores it —
  parameters, optimizer moments, RNG state, step counter — so the
  continued run is *bit-exactly* the run that would have started from that
  checkpoint on the smaller world. Recovery is re-entrant: further
  failures during the restore loop back into detection on a fresh epoch.
- An injected crash (:class:`~repro.distributed.faults.InjectedRankCrash`)
  terminates this rank silently, exactly like process death: the report is
  returned with ``crashed=True`` and the survivors find out via timeouts.

Checkpoints are the crash-safe kind (atomic replace + CRC32, per-rank
files in a shared directory); ``resume="auto"`` restores the newest
verifying checkpoint at startup, which is the crash/restart story for
serial runs where there is no surviving peer to shrink with.

This module is the stable one-call façade over
:class:`~repro.distributed.supervisor.TrainingSupervisor` — the explicit
state machine that also *grows* the world back (rank rejoin) and
rebalances per-rank batches away from stragglers. Use the supervisor
directly for those: ``TrainingSupervisor(...).run(...)`` on the survivors
and ``.rejoin(...)`` on a recovered rank — or pass ``accept_joins=True`` /
a :class:`~repro.distributed.ledger.BatchLedger` here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.distributed.elastic import ElasticConfig
from repro.distributed.ledger import BatchLedger
from repro.distributed.supervisor import (
    ResilientRunReport,
    ScalingPolicy,
    TrainingSupervisor,
)
from repro.obs.flight import FlightRecorder

__all__ = ["ResilientRunReport", "train_resilient"]


def train_resilient(
    vqmc,
    iterations: int,
    *,
    batch_size: int | None = None,
    checkpoint_dir: str | Path,
    checkpoint_every: int = 5,
    keep_last: int = 5,
    callbacks: Sequence = (),
    elastic: ElasticConfig | None = None,
    max_shrinks: int | None = None,
    resume: str | bool = "auto",
    ledger: BatchLedger | None = None,
    policy: ScalingPolicy | None = None,
    accept_joins: bool = False,
    sync_every: int = 1,
    rejoin_seed: int = 0,
    flight_dir: str | Path | None = None,
) -> ResilientRunReport:
    """Train ``vqmc`` for ``iterations`` total steps, surviving rank failures.

    Parameters
    ----------
    vqmc:
        A trainer. For multi-rank fault tolerance its ``comm`` must be a
        :class:`ResilientCommunicator`; with ``comm=None`` (or world size
        1) only the crash/restart path is active.
    checkpoint_dir:
        Shared directory for the per-rank crash-safe checkpoints.
    checkpoint_every:
        Cadence (in optimisation steps) of checkpoint writes. A step-0
        checkpoint is always written so recovery has a floor.
    callbacks:
        Regular :class:`repro.core.Callback` objects (including
        :class:`~repro.distributed.faults.FaultInjectionCallback`). Note
        that after a restore, replayed steps fire ``on_step`` again.
    max_shrinks:
        Refuse to shrink more than this many times (``None`` = unlimited).
    resume:
        ``"auto"`` restores the newest verifying checkpoint before
        training (the restart-after-crash path); ``False`` starts fresh.
    ledger, policy, accept_joins, sync_every, rejoin_seed:
        Elastic-v2 knobs, forwarded to
        :class:`~repro.distributed.supervisor.TrainingSupervisor`. The
        defaults (no ledger, no join polling) reproduce the PR-2
        shrink-only behaviour bit-exactly.
    flight_dir:
        Convenience: when set (and no
        :class:`~repro.obs.flight.FlightRecorder` is already among
        ``callbacks``), a recorder writing ``flight.rankNNN.json`` black
        boxes into this directory is appended, so every rank failure,
        eviction, or injected crash leaves a post-mortem dump without any
        explicit wiring. Read the dumps with ``python tools/monitor.py``.
    """
    callbacks = list(callbacks)
    if flight_dir is not None and not any(
        isinstance(cb, FlightRecorder) for cb in callbacks
    ):
        rank = getattr(getattr(vqmc, "comm", None), "rank", None)
        callbacks.append(FlightRecorder(flight_dir, rank=rank))
    supervisor = TrainingSupervisor(
        vqmc,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        keep_last=keep_last,
        callbacks=callbacks,
        elastic=elastic,
        max_shrinks=max_shrinks,
        resume=resume,
        ledger=ledger,
        policy=policy,
        accept_joins=accept_joins,
        sync_every=sync_every,
        rejoin_seed=rejoin_seed,
    )
    return supervisor.run(iterations, batch_size=batch_size)
