"""Fault-tolerant VQMC training: survive crashes, shrink, resume bit-exactly.

:func:`train_resilient` drives a :class:`repro.core.VQMC` trainer whose
communicator is a :class:`~repro.distributed.resilient.ResilientCommunicator`
(optionally over a :class:`~repro.distributed.faults.FaultyCommunicator`
for testing). The recovery contract:

- Transient faults (stragglers, duplicated or transiently-corrupted
  messages) are absorbed invisibly by the resilient layer's retries —
  training is bit-identical to a fault-free run.
- Unrecoverable faults (a dead or persistently-failing rank) escalate to
  :class:`~repro.distributed.comm.RankFailure`. The driver then (1) runs
  heartbeat detection + survivor consensus
  (:func:`~repro.distributed.elastic.detect_survivors`), (2) shrinks the
  trainer's world onto the survivors, (3) agrees (min-allreduce) on the
  newest checkpoint step every survivor can verify, and (4) restores it —
  parameters, optimizer moments, RNG state, step counter — so the
  continued run is *bit-exactly* the run that would have started from that
  checkpoint on the smaller world.
- An injected crash (:class:`~repro.distributed.faults.InjectedRankCrash`)
  terminates this rank silently, exactly like process death: the report is
  returned with ``crashed=True`` and the survivors find out via timeouts.

Checkpoints are the crash-safe kind (atomic replace + CRC32, per-rank
files in a shared directory); ``resume="auto"`` restores the newest
verifying checkpoint at startup, which is the crash/restart story for
serial runs where there is no surviving peer to shrink with.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.callbacks import StopTraining
from repro.core.checkpoint import CheckpointCallback, CheckpointCorruptError
from repro.distributed.comm import RankFailure, SubCommunicator
from repro.distributed.elastic import ElasticConfig, detect_survivors
from repro.distributed.faults import InjectedRankCrash

__all__ = ["ResilientRunReport", "train_resilient"]


@dataclass
class ResilientRunReport:
    """One rank's account of a resilient training run (picklable)."""

    rank: int
    completed_steps: int = 0
    crashed: bool = False
    evicted: bool = False
    #: one entry per world shrink: {"epoch", "restored_step", "group"}
    restores: list = field(default_factory=list)
    final_group: list = field(default_factory=list)
    #: wall seconds spent in detection + consensus + restore, total
    recovery_seconds: float = 0.0
    comm_stats: dict = field(default_factory=dict)
    checkpoint_dir: str = ""


def train_resilient(
    vqmc,
    iterations: int,
    *,
    batch_size: int | None = None,
    checkpoint_dir: str | Path,
    checkpoint_every: int = 5,
    keep_last: int = 5,
    callbacks: Sequence = (),
    elastic: ElasticConfig | None = None,
    max_shrinks: int | None = None,
    resume: str | bool = "auto",
) -> ResilientRunReport:
    """Train ``vqmc`` for ``iterations`` total steps, surviving rank failures.

    Parameters
    ----------
    vqmc:
        A trainer. For multi-rank fault tolerance its ``comm`` must be a
        :class:`ResilientCommunicator`; with ``comm=None`` (or world size
        1) only the crash/restart path is active.
    checkpoint_dir:
        Shared directory for the per-rank crash-safe checkpoints.
    checkpoint_every:
        Cadence (in optimisation steps) of checkpoint writes. A step-0
        checkpoint is always written so recovery has a floor.
    callbacks:
        Regular :class:`repro.core.Callback` objects (including
        :class:`~repro.distributed.faults.FaultInjectionCallback`). Note
        that after a restore, replayed steps fire ``on_step`` again.
    max_shrinks:
        Refuse to shrink more than this many times (``None`` = unlimited).
    resume:
        ``"auto"`` restores the newest verifying checkpoint before
        training (the restart-after-crash path); ``False`` starts fresh.
    """
    comm = vqmc.comm
    world = comm.size if comm is not None else 1
    rank = comm.rank if comm is not None else 0
    ckpt = CheckpointCallback(
        checkpoint_dir, every=checkpoint_every, keep_last=keep_last, rank=rank
    )
    report = ResilientRunReport(rank=rank, checkpoint_dir=str(ckpt.directory))

    if resume == "auto":
        ckpt.restore_latest(vqmc)
    if ckpt.newest_verified_step() is None:
        ckpt.write(vqmc, vqmc.global_step)

    group = list(range(world))
    epoch = 0
    shrinks = 0

    for cb in callbacks:
        cb.on_run_begin(vqmc)
    while vqmc.global_step < iterations:
        try:
            result = vqmc.step(batch_size)
            if vqmc.global_step % checkpoint_every == 0:
                ckpt.write(vqmc, vqmc.global_step)
            for cb in callbacks:
                cb.on_step(result.step, result)
        except StopTraining:
            break
        except InjectedRankCrash:
            # Process death: fall silent immediately (no on_run_end, no
            # further communication) and let the survivors detect it.
            report.completed_steps = vqmc.global_step
            report.crashed = True
            report.final_group = group
            return report
        except RankFailure:
            if comm is None or world == 1:
                raise
            t0 = time.perf_counter()
            epoch += 1
            shrinks += 1
            if max_shrinks is not None and shrinks > max_shrinks:
                raise
            try:
                group = detect_survivors(comm, group, epoch, elastic)
            except RankFailure:
                report.completed_steps = vqmc.global_step
                report.evicted = True
                report.final_group = []
                report.recovery_seconds += time.perf_counter() - t0
                return report
            vqmc.comm = SubCommunicator(comm, group)
            # Survivors agree on the newest step every one of them can
            # verify on disk, then restore it — same parameters, optimizer
            # moments, and RNG state everywhere, so the continued run is
            # bit-exactly a restart from that checkpoint.
            newest = ckpt.newest_verified_step()
            if newest is None:
                raise CheckpointCorruptError(
                    ckpt.directory, "no verifiable checkpoint to recover from"
                )
            agreed = int(
                vqmc.comm.allreduce(np.array([float(newest)]), op="min")[0]
            )
            used = ckpt.restore_latest(vqmc, at_step=agreed)
            if used is None:
                raise CheckpointCorruptError(
                    ckpt.directory,
                    f"agreed restore step {agreed} is missing or corrupt on rank {rank}",
                )
            report.restores.append(
                {"epoch": epoch, "restored_step": agreed, "group": list(group)}
            )
            report.recovery_seconds += time.perf_counter() - t0
    for cb in callbacks:
        cb.on_run_end(vqmc)
    report.completed_steps = vqmc.global_step
    report.final_group = group
    report.comm_stats = comm.stats.snapshot() if comm is not None else {}
    return report
