"""Collective algorithms over point-to-point channels.

These mirror the classic MPI/NCCL algorithms:

- :func:`ring_allreduce` — reduce-scatter + allgather around a ring;
  bandwidth-optimal (each rank moves ``2·(L-1)/L`` of the payload),
  the algorithm NCCL uses for large tensors.
- :func:`recursive_doubling_allreduce` — ``log₂ L`` rounds of pairwise
  exchange; latency-optimal for short vectors; power-of-two world sizes
  (falls back to ring otherwise).
- :func:`naive_allreduce` — gather-to-root + broadcast; reference
  implementation the tests compare the fast paths against.
- :func:`tree_broadcast` / :func:`tree_reduce` — binomial trees,
  ``log₂ L`` rounds.
- :func:`ring_allgather`.

All functions assume ``comm.send`` is eager (non-blocking w.r.t. the peer's
sends) as documented on :class:`repro.distributed.comm.Communicator`, so
ring steps where every rank sends before receiving cannot deadlock.
"""

# repro-lint: file-disable=dist-recv-timeout -- algorithm building blocks: every hop inherits the backend's DEFAULT_TIMEOUT contract; per-hop deadlines belong to the resilient layer wrapping the communicator, not to the ring/tree steps

from __future__ import annotations

import numpy as np

from repro.distributed.comm import Communicator, ReduceOp

__all__ = [
    "ring_allreduce",
    "recursive_doubling_allreduce",
    "naive_allreduce",
    "tree_broadcast",
    "tree_reduce",
    "ring_allgather",
    "gather",
    "scatter",
]


def _chunks(n_elems: int, parts: int) -> list[slice]:
    """Split ``n_elems`` into ``parts`` contiguous near-equal slices."""
    bounds = np.linspace(0, n_elems, parts + 1).astype(int)
    return [slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]


def ring_allreduce(comm: Communicator, array: np.ndarray, op: str = "sum") -> np.ndarray:
    """Bandwidth-optimal ring allreduce (reduce-scatter + allgather)."""
    fn = ReduceOp.get(op)
    size, rank = comm.size, comm.rank
    right = (rank + 1) % size
    left = (rank - 1) % size
    shape = array.shape
    buf = array.reshape(-1).copy()
    chunks = _chunks(buf.size, size)

    # Phase 1: reduce-scatter. After step t, rank r holds the partial
    # reduction of chunk (r - t) mod L over t+1 contributors; after L-1
    # steps, rank r owns the fully-reduced chunk (r + 1) mod L.
    for t in range(size - 1):
        send_idx = (rank - t) % size
        recv_idx = (rank - t - 1) % size
        comm.send(right, buf[chunks[send_idx]])
        incoming = comm.recv(left)
        buf[chunks[recv_idx]] = fn(buf[chunks[recv_idx]], incoming)

    # Phase 2: allgather the reduced chunks around the ring.
    for t in range(size - 1):
        send_idx = (rank - t + 1) % size
        recv_idx = (rank - t) % size
        comm.send(right, buf[chunks[send_idx]])
        buf[chunks[recv_idx]] = comm.recv(left)

    return buf.reshape(shape)


def recursive_doubling_allreduce(
    comm: Communicator, array: np.ndarray, op: str = "sum"
) -> np.ndarray:
    """log₂(L) pairwise-exchange allreduce; requires power-of-two L."""
    size, rank = comm.size, comm.rank
    if size & (size - 1):
        return ring_allreduce(comm, array, op)
    fn = ReduceOp.get(op)
    buf = array.copy()
    distance = 1
    while distance < size:
        peer = rank ^ distance
        comm.send(peer, buf)
        buf = fn(buf, comm.recv(peer))
        distance <<= 1
    return buf


def naive_allreduce(comm: Communicator, array: np.ndarray, op: str = "sum") -> np.ndarray:
    """Gather to rank 0, reduce, broadcast back (reference implementation)."""
    fn = ReduceOp.get(op)
    size, rank = comm.size, comm.rank
    if rank == 0:
        buf = array.copy()
        for src in range(1, size):
            buf = fn(buf, comm.recv(src))
    else:
        comm.send(0, array)
        buf = array  # placeholder; overwritten by broadcast
    return tree_broadcast(comm, buf, root=0)


def _tree_peers(rank: int, size: int, root: int) -> tuple[int | None, list[int]]:
    """Parent and children of ``rank`` in a binomial tree rooted at ``root``.

    Works in 'virtual rank' space where the root is rank 0.
    """
    vrank = (rank - root) % size
    # Parent: clear the lowest set bit.
    parent_v = None
    if vrank != 0:
        parent_v = vrank & (vrank - 1)
    children_v = []
    mask = 1
    while mask < size:
        if vrank & (mask - 1) == 0 and vrank | mask != vrank:
            child = vrank | mask
            if child < size:
                children_v.append(child)
        if vrank & mask:
            break
        mask <<= 1
    to_real = lambda v: (v + root) % size  # noqa: E731
    parent = None if parent_v is None else to_real(parent_v)
    return parent, [to_real(c) for c in children_v]


def tree_broadcast(comm: Communicator, array: np.ndarray, root: int = 0) -> np.ndarray:
    """Binomial-tree broadcast: log₂(L) rounds."""
    parent, children = _tree_peers(comm.rank, comm.size, root)
    if parent is not None:
        array = comm.recv(parent)
    for child in children:
        comm.send(child, array)
    return array.copy()


def tree_reduce(
    comm: Communicator, array: np.ndarray, root: int = 0, op: str = "sum"
) -> np.ndarray | None:
    """Binomial-tree reduce to ``root``; non-root ranks return None."""
    fn = ReduceOp.get(op)
    parent, children = _tree_peers(comm.rank, comm.size, root)
    buf = array.copy()
    # Children in _tree_peers order send after completing their own subtree;
    # receive in reverse order (deepest subtrees complete first).
    for child in reversed(children):
        buf = fn(buf, comm.recv(child))
    if parent is not None:
        comm.send(parent, buf)
        return None
    return buf


def gather(
    comm: Communicator, array: np.ndarray, root: int = 0
) -> list[np.ndarray] | None:
    """Collect one array per rank at ``root`` (rank order); others get None.

    Binomial tree: each subtree leader forwards its accumulated list,
    log₂(L) rounds. Arrays may differ in shape across ranks.
    """
    parent, children = _tree_peers(comm.rank, comm.size, root)
    # Collect own + subtree contributions, keyed by source rank.
    bucket: dict[int, np.ndarray] = {comm.rank: array.copy()}
    for child in reversed(children):
        count = int(comm.recv(child)[0])
        for _ in range(count):
            src = int(comm.recv(child)[0])
            bucket[src] = comm.recv(child)
    if parent is not None:
        comm.send(parent, np.array([float(len(bucket))]))
        for src, payload in bucket.items():
            comm.send(parent, np.array([float(src)]))
            comm.send(parent, payload)
        return None
    return [bucket[r] for r in range(comm.size)]


def scatter(
    comm: Communicator, arrays: list[np.ndarray] | None, root: int = 0
) -> np.ndarray:
    """Distribute ``arrays[r]`` from ``root`` to each rank ``r``.

    Simple root-sends-direct implementation (scatter is latency-bound and
    rare in this workload; a tree variant buys little).
    """
    if comm.rank == root:
        if arrays is None or len(arrays) != comm.size:
            raise ValueError(
                f"root must supply exactly {comm.size} arrays, got "
                f"{None if arrays is None else len(arrays)}"
            )
        for dest in range(comm.size):
            if dest != root:
                comm.send(dest, arrays[dest])
        return np.array(arrays[root], copy=True)
    return comm.recv(root)


def ring_allgather(comm: Communicator, array: np.ndarray) -> list[np.ndarray]:
    """Each rank contributes one array; all ranks get the full list."""
    size, rank = comm.size, comm.rank
    right = (rank + 1) % size
    left = (rank - 1) % size
    out: list[np.ndarray | None] = [None] * size
    out[rank] = array.copy()
    current = array
    for t in range(size - 1):
        comm.send(right, current)
        current = comm.recv(left)
        out[(rank - t - 1) % size] = current.copy()
    return out  # type: ignore[return-value]
