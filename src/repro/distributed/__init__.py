"""Distributed runtime: the stand-in for ``torch.distributed``/NCCL.

The paper's parallelisation scheme (§4) needs exactly three primitives:
identical model replicas (broadcast), per-rank sampling (no communication),
and gradient averaging (allreduce). This subpackage provides a
:class:`Communicator` abstraction with those primitives plus the
point-to-point layer they are built from, and three interchangeable
backends:

- :class:`SerialCommunicator` — world size 1, no-op collectives.
- thread backend (:func:`repro.distributed.threads.run_threaded`) — ranks are
  threads in one process, channels are queues; ideal for tests.
- process backend (:func:`repro.distributed.mp.run_processes`) — ranks are OS
  processes connected by pipes; real parallelism (numpy releases the GIL in
  BLAS, but separate processes are the honest analogue of separate GPUs).

Collective algorithms (ring allreduce, reduce-scatter + allgather, tree
broadcast, recursive doubling) are implemented once over the point-to-point
layer in :mod:`repro.distributed.collectives`, mirroring how NCCL builds its
collectives over device-to-device copies.
"""

from repro.distributed.comm import (
    ChecksumError,
    Communicator,
    CommTimeoutError,
    OwnedFrame,
    RankFailure,
    ReduceOp,
    SubCommunicator,
    WorkerFailure,
)
from repro.distributed.serial import SerialCommunicator
from repro.distributed.threads import ThreadCommunicator, run_threaded, make_thread_group
from repro.distributed.mp import run_processes
from repro.distributed import collectives
from repro.distributed.faults import (
    FaultEvent,
    FaultInjectionCallback,
    FaultPlan,
    FaultyCommunicator,
    InjectedRankCrash,
    MismatchedCollectiveInjector,
)
from repro.distributed.resilient import ResilientCommunicator, RetryPolicy
from repro.distributed.elastic import (
    ElasticConfig,
    announce_join,
    await_invite,
    detect_survivors,
    grow_world,
    shrink_world,
)
from repro.distributed.ledger import BatchLedger
from repro.distributed.supervisor import (
    PolicyObservation,
    ScalingPolicy,
    TargetSNRPolicy,
    TargetStepTimePolicy,
    TrainingSupervisor,
)
from repro.distributed.resilient_train import ResilientRunReport, train_resilient
from repro.distributed.data_parallel import (
    DataParallelResult,
    run_data_parallel,
    run_elastic_data_parallel,
)

__all__ = [
    "Communicator",
    "CommTimeoutError",
    "ChecksumError",
    "OwnedFrame",
    "RankFailure",
    "ReduceOp",
    "SubCommunicator",
    "WorkerFailure",
    "SerialCommunicator",
    "ThreadCommunicator",
    "run_threaded",
    "make_thread_group",
    "run_processes",
    "collectives",
    "FaultEvent",
    "FaultPlan",
    "FaultyCommunicator",
    "FaultInjectionCallback",
    "InjectedRankCrash",
    "MismatchedCollectiveInjector",
    "ResilientCommunicator",
    "RetryPolicy",
    "ElasticConfig",
    "detect_survivors",
    "shrink_world",
    "announce_join",
    "await_invite",
    "grow_world",
    "BatchLedger",
    "PolicyObservation",
    "ScalingPolicy",
    "TargetStepTimePolicy",
    "TargetSNRPolicy",
    "TrainingSupervisor",
    "ResilientRunReport",
    "train_resilient",
    "DataParallelResult",
    "run_data_parallel",
    "run_elastic_data_parallel",
]
