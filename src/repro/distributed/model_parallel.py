"""Model parallelism for MADE (the paper's §4 avenue (1), implemented).

The paper parallelises only the *sampling* step and lists distributing the
model parameters across devices as the complementary avenue. For a
one-hidden-layer MADE the natural decomposition shards the hidden layer:
rank r holds a slice of the hidden units — rows ``W1[r]`` (h_r × n) of the
first masked matrix and the matching columns ``W2[:, r]`` (n × h_r) of the
second. A forward pass is then

    z = Σ_r  W2_r · relu(W1_r x + b1_r)  + b2

i.e. each rank computes its partial logits from its shard and a single
allreduce sums them — the classic "row/column parallel" pattern (Megatron
style). The output bias b2 is replicated and added once (rank-0's
contribution carries it).

Communication per forward pass: one allreduce of (batch × n) floats —
exactly the "intimately linked with the choice of the autoregressive neural
network" coupling the paper alludes to (for MADE it is one sum per pass;
sampling therefore costs n allreduces).

Gradients: each rank's shard gradients are *local* (no communication —
d z/d W1_r involves only that rank's shard); only the logit-level gradient
``∂L/∂z`` must be identical on all ranks, which it is because the local
energies and z are identical after the forward allreduce.

:class:`ShardedMADE` mirrors the :class:`repro.models.MADE` interface
(``log_prob``, ``log_psi``, ``sample``, ``log_psi_and_grads``) so the VQMC
driver and samplers work unchanged; parameters() exposes only the local
shard, and the driver must *not* allreduce these gradients (pass
``comm=None`` to VQMC — the model handles its own communication).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import WaveFunction, validate_configurations
from repro.nn.masks import check_autoregressive, made_masks
from repro.nn.module import Parameter
from repro.nn import init as nn_init

__all__ = ["ShardedMADE", "shard_bounds"]


def shard_bounds(total: int, world: int) -> list[tuple[int, int]]:
    """Split ``total`` units into ``world`` contiguous near-equal shards."""
    edges = np.linspace(0, total, world + 1).astype(int)
    return [(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:])]


class ShardedMADE(WaveFunction):
    """Hidden-layer-sharded MADE over a communicator.

    All ranks construct identical masks and the *full* initial weights from
    the shared ``seed`` (cheap at init time), then keep only their shard —
    so a ShardedMADE ensemble is numerically identical to the single-process
    :class:`repro.models.MADE` with the same seed, which the tests exploit.

    Parameters
    ----------
    n, hidden:
        Model dimensions (``hidden`` is the *total* hidden size).
    comm:
        Communicator; the hidden layer is split across ``comm.size`` ranks.
    seed:
        Shared seed for mask/weight construction. All ranks must pass the
        same value.
    """

    is_normalized = True
    has_per_sample_grads = True

    def __init__(self, n: int, hidden: int, comm, seed: int = 0):
        super().__init__(n)
        if hidden < comm.size:
            raise ValueError(
                f"cannot shard {hidden} hidden units over {comm.size} ranks"
            )
        self.comm = comm
        self.hidden = hidden
        rng = np.random.default_rng(seed)

        m1, m2 = made_masks(n, hidden)
        check_autoregressive((m1, m2))
        w1 = nn_init.kaiming_uniform(rng, hidden, n)
        b1 = nn_init.uniform_bias(rng, hidden, n)
        w2 = nn_init.kaiming_uniform(rng, n, hidden)
        b2 = nn_init.uniform_bias(rng, n, hidden)

        lo, hi = shard_bounds(hidden, comm.size)[comm.rank]
        self.shard = (lo, hi)
        self.mask1 = m1[lo:hi]  # (h_r, n)
        self.mask2 = m2[:, lo:hi]  # (n, h_r)
        self.w1 = Parameter(w1[lo:hi], name="w1")
        self.b1 = Parameter(b1[lo:hi], name="b1")
        self.w2 = Parameter(w2[:, lo:hi], name="w2")
        # b2 lives on rank 0 only (added once in the allreduce sum).
        self.owns_output_bias = comm.rank == 0
        self.b2 = Parameter(b2 if self.owns_output_bias else np.zeros(n), name="b2")

    # -- forward ------------------------------------------------------------------

    def _local_partial(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """This rank's hidden activations and partial logits (no comm)."""
        a = x @ (self.mask1 * self.w1.data).T + self.b1.data  # (B, h_r)
        r = np.maximum(a, 0.0)
        partial = r @ (self.mask2 * self.w2.data).T  # (B, n)
        if self.owns_output_bias:
            partial = partial + self.b2.data
        return a, partial

    def logits_array(self, x: np.ndarray) -> np.ndarray:
        """Full logits via one allreduce of the partial sums — (B, n)."""
        x = validate_configurations(x, self.n)
        _, partial = self._local_partial(x)
        if self.comm.size > 1:
            partial = self.comm.allreduce(partial, op="sum")
        return partial

    def log_prob_array(self, x: np.ndarray) -> np.ndarray:
        x = validate_configurations(x, self.n)
        z = self.logits_array(x)
        log_p = np.minimum(z, 0.0) - np.log1p(np.exp(-np.abs(z)))
        log_q = np.minimum(-z, 0.0) - np.log1p(np.exp(-np.abs(z)))
        return (x * log_p + (1.0 - x) * log_q).sum(axis=1)

    def log_psi(self, x: np.ndarray):
        """Tensor-wrapped for interface compatibility (constant w.r.t. the
        autograd tape — sharded training uses the per-sample path)."""
        from repro.tensor.tensor import Tensor

        return Tensor(0.5 * self.log_prob_array(x))

    def conditionals(self, x: np.ndarray) -> np.ndarray:
        z = self.logits_array(x)
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    # -- sampling (Algorithm 1; one allreduce per site) ------------------------------

    def sample(self, batch_size: int, rng: np.random.Generator) -> np.ndarray:
        """All ranks must call with generators in the same state: the random
        draws must agree so every rank builds the identical sample batch."""
        x = np.zeros((batch_size, self.n))
        for i in range(self.n):
            p = self.conditionals(x)[:, i]
            x[:, i] = (rng.random(batch_size) < p).astype(np.float64)
        return x

    # -- per-sample gradients (shard-local) --------------------------------------------

    def log_psi_and_grads(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample gradients of the *local shard* parameters.

        ∂logπ/∂z = x − σ(z) is identical on all ranks (full logits); the
        chain rule back into W1_r/W2_r involves only local activations, so
        no further communication is needed.
        """
        x = validate_configurations(x, self.n)
        bsz = x.shape[0]
        a, _ = self._local_partial(x)
        z = self.logits_array(x)

        log_p = np.minimum(z, 0.0) - np.log1p(np.exp(-np.abs(z)))
        log_q = np.minimum(-z, 0.0) - np.log1p(np.exp(-np.abs(z)))
        log_prob = (x * log_p + (1.0 - x) * log_q).sum(axis=1)
        sig = np.exp(log_p)

        dz = x - sig  # (B, n)
        r = np.maximum(a, 0.0)
        d_w2 = dz[:, :, None] * r[:, None, :] * self.mask2[None]  # (B, n, h_r)
        dr = dz @ (self.mask2 * self.w2.data)  # (B, h_r)
        da = dr * (a > 0.0)
        d_w1 = da[:, :, None] * x[:, None, :] * self.mask1[None]  # (B, h_r, n)

        parts = [d_w1.reshape(bsz, -1), da, d_w2.reshape(bsz, -1)]
        if self.owns_output_bias:
            parts.append(dz)
        else:
            parts.append(np.zeros((bsz, self.n)))
        grads = np.concatenate(parts, axis=1)
        return 0.5 * log_prob, 0.5 * grads

    def gather_full_logits_weights(self) -> dict[str, np.ndarray]:
        """Reassemble the full weight matrices on every rank (testing /
        checkpointing). Uses allgather of the shards."""
        if self.comm.size == 1:
            return {
                "w1": self.w1.data.copy(),
                "b1": self.b1.data.copy(),
                "w2": self.w2.data.copy(),
                "b2": self.b2.data.copy(),
            }
        w1 = np.concatenate(self.comm.allgather(self.w1.data), axis=0)
        b1 = np.concatenate(self.comm.allgather(self.b1.data), axis=0)
        w2 = np.concatenate(self.comm.allgather(self.w2.data), axis=1)
        b2 = self.comm.allreduce(
            self.b2.data if self.owns_output_bias else np.zeros(self.n), op="sum"
        )
        return {"w1": w1, "b1": b1, "w2": w2, "b2": b2}
