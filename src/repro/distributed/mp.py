"""Process-backed communicator (ranks are OS processes, channels are pipes).

This is the honest analogue of the paper's multi-GPU setup: each rank has
its own address space and model replica; all coordination goes through
explicit messages. Sends are made eager with a per-peer sender thread
(MPI-style eager protocol), so the collective algorithms cannot deadlock on
full pipe buffers even when every rank sends simultaneously.

Entry point: :func:`run_processes` — forks ``world_size`` workers, runs
``fn(comm, rank, *args)`` in each, and returns the per-rank results.
``fn`` and its arguments/results must be picklable under the ``fork`` start
method (module-level functions; closures work on Linux fork).
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
import time
import traceback
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Sequence

import numpy as np

from repro.distributed.comm import (
    Communicator,
    CommTimeoutError,
    DEFAULT_TIMEOUT,
    OwnedFrame,
    WorkerFailure,
)

__all__ = ["PipeCommunicator", "run_processes"]


class _EagerSender:
    """Background thread draining an outbox queue into a pipe connection."""

    def __init__(self, conn):
        self._conn = conn
        self._outbox: queue.Queue = queue.Queue()
        self._thread = threading.Thread(target=self._drain, daemon=True)
        self._thread.start()

    def _drain(self) -> None:
        while True:
            item = self._outbox.get()
            if item is None:
                return
            try:
                self._conn.send(item)
            except (BrokenPipeError, OSError):
                return

    def send(self, array: np.ndarray) -> None:
        if isinstance(array, OwnedFrame):
            # Ownership was handed over — no copy; strip the marker subclass
            # (a zero-copy view) so pickling takes the plain-ndarray path.
            array = array.view(np.ndarray)
        else:
            array = np.array(array, copy=True)
        self._outbox.put(array)

    def close(self) -> None:
        self._outbox.put(None)
        self._thread.join(timeout=5.0)


class PipeCommunicator(Communicator):
    """Communicator over pairwise ``multiprocessing.Pipe`` connections."""

    def __init__(self, rank: int, size: int, connections: dict[int, Any]):
        self._rank = rank
        self._size = size
        self._conns = connections
        self._senders: dict[int, _EagerSender] = {}

    @property
    def size(self) -> int:
        return self._size

    @property
    def rank(self) -> int:
        return self._rank

    def send(self, dest: int, array: np.ndarray) -> None:
        self._check_peer(dest)
        if dest not in self._senders:
            self._senders[dest] = _EagerSender(self._conns[dest])
        self._count_send(array)
        self._senders[dest].send(array)

    def recv(self, source: int, timeout: float = DEFAULT_TIMEOUT) -> np.ndarray:
        self._check_peer(source)
        conn = self._conns[source]
        try:
            if not conn.poll(timeout):
                raise CommTimeoutError(
                    f"rank {self._rank}: no message from rank {source} within {timeout}s"
                )
            out = conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            # Peer process exited and the pipe closed: surface it on the
            # timeout path so the resilience layer's retry/escalation logic
            # applies uniformly (a dead peer is just an instant timeout).
            raise CommTimeoutError(
                f"rank {self._rank}: connection to rank {source} closed "
                f"(peer exited: {exc!r})"
            ) from exc
        self._count_recv(out)
        return out

    def poll(self, source: int, timeout: float = 0.0) -> bool:
        self._check_peer(source)
        try:
            return bool(self._conns[source].poll(timeout))
        except (EOFError, BrokenPipeError, OSError):
            # Closed pipe: report ready so the caller's recv surfaces the
            # dead-peer diagnosis instead of poll masking it as "no data".
            return True

    def barrier(self) -> None:
        # Dissemination barrier: log2(L) rounds of token exchange.
        token = np.zeros(1)
        distance = 1
        while distance < self._size:
            dest = (self._rank + distance) % self._size
            src = (self._rank - distance) % self._size
            self.send(dest, token)
            self.recv(src, timeout=DEFAULT_TIMEOUT)
            distance <<= 1

    def close(self) -> None:
        for sender in self._senders.values():
            sender.close()


def _worker(rank, size, conn_map, result_conn, fn, args):
    comm = PipeCommunicator(rank, size, conn_map)
    try:
        result = fn(comm, rank, *args)
        result_conn.send((rank, "ok", result))
    except BaseException:  # noqa: BLE001 — shipped to the parent
        # Ship the full formatted traceback: the exception object itself may
        # not pickle, and the parent needs the root cause with rank
        # attribution, not a bare repr.
        result_conn.send((rank, "error", traceback.format_exc()))
    finally:
        comm.close()
        result_conn.close()


def run_processes(
    fn: Callable[..., Any],
    world_size: int,
    args: Sequence[Any] = (),
    timeout: float = 300.0,
) -> list[Any]:
    """Run ``fn(comm, rank, *args)`` on ``world_size`` processes.

    Returns the per-rank results (rank order). If any rank raised, a
    :class:`WorkerFailure` attributes each remote traceback to its rank —
    and ranks that produce no result while a peer has already failed are
    reported as *wedged* (after a short grace period) instead of burning
    the whole timeout and masking the root cause.
    """
    if world_size < 1:
        raise ValueError(f"world size must be >= 1, got {world_size}")
    ctx = mp.get_context("fork")

    # Pairwise full-duplex pipes: conns[i][j] is rank i's endpoint to rank j.
    conns: list[dict[int, Any]] = [dict() for _ in range(world_size)]
    for i in range(world_size):
        for j in range(i + 1, world_size):
            end_i, end_j = ctx.Pipe(duplex=True)
            conns[i][j] = end_i
            conns[j][i] = end_j

    result_parent, result_children = [], []
    for _ in range(world_size):
        parent_end, child_end = ctx.Pipe(duplex=False)
        result_parent.append(parent_end)
        result_children.append(child_end)

    procs = [
        ctx.Process(
            target=_worker,
            args=(r, world_size, conns[r], result_children[r], fn, tuple(args)),
            daemon=True,
        )
        for r in range(world_size)
    ]
    for p in procs:
        p.start()
    # Parent closes its copies of the child ends so EOF propagates.
    for child_end in result_children:
        child_end.close()
    for rank_conns in conns:
        for c in rank_conns.values():
            c.close()

    results: list[Any] = [None] * world_size
    failures: dict[int, str] = {}
    conn_to_rank = {id(conn): r for r, conn in enumerate(result_parent)}
    pending = {r: conn for r, conn in enumerate(result_parent)}
    deadline = time.monotonic() + timeout
    grace_deadline: float | None = None
    failure_grace = min(10.0, timeout)
    while pending:
        now = time.monotonic()
        if now >= deadline:
            break
        if failures and grace_deadline is None:
            # Root cause is known; give the survivors a short grace period
            # to report, then stop waiting instead of masking the failure
            # behind the full timeout.
            grace_deadline = now + failure_grace
        if grace_deadline is not None and now >= grace_deadline:
            break
        wait_for = min(deadline, grace_deadline or deadline) - now
        for conn in _conn_wait(list(pending.values()), timeout=max(0.0, min(wait_for, 0.25))):
            rank = conn_to_rank[id(conn)]
            del pending[rank]
            try:
                _, status, payload = conn.recv()
            except (EOFError, OSError):
                failures[rank] = "worker died without reporting a result"
                continue
            if status == "ok":
                results[rank] = payload
            else:
                failures[rank] = payload

    wedged = sorted(pending)
    for p in procs:
        p.join(timeout=0.5 if (failures or wedged) else 10.0)
        if p.is_alive():
            p.terminate()
    if failures:
        raise WorkerFailure(failures, wedged=wedged)
    if wedged:
        raise CommTimeoutError(
            f"ranks {wedged} produced no result within {timeout}s"
        )
    return results
