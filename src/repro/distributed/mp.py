"""Process-backed communicator (ranks are OS processes, channels are pipes).

This is the honest analogue of the paper's multi-GPU setup: each rank has
its own address space and model replica; all coordination goes through
explicit messages. Sends are made eager with a per-peer sender thread
(MPI-style eager protocol), so the collective algorithms cannot deadlock on
full pipe buffers even when every rank sends simultaneously.

Entry point: :func:`run_processes` — forks ``world_size`` workers, runs
``fn(comm, rank, *args)`` in each, and returns the per-rank results.
``fn`` and its arguments/results must be picklable under the ``fork`` start
method (module-level functions; closures work on Linux fork).
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
from typing import Any, Callable, Sequence

import numpy as np

from repro.distributed.comm import Communicator, CommTimeoutError, DEFAULT_TIMEOUT

__all__ = ["PipeCommunicator", "run_processes"]


class _EagerSender:
    """Background thread draining an outbox queue into a pipe connection."""

    def __init__(self, conn):
        self._conn = conn
        self._outbox: queue.Queue = queue.Queue()
        self._thread = threading.Thread(target=self._drain, daemon=True)
        self._thread.start()

    def _drain(self) -> None:
        while True:
            item = self._outbox.get()
            if item is None:
                return
            try:
                self._conn.send(item)
            except (BrokenPipeError, OSError):
                return

    def send(self, array: np.ndarray) -> None:
        self._outbox.put(np.array(array, copy=True))

    def close(self) -> None:
        self._outbox.put(None)
        self._thread.join(timeout=5.0)


class PipeCommunicator(Communicator):
    """Communicator over pairwise ``multiprocessing.Pipe`` connections."""

    def __init__(self, rank: int, size: int, connections: dict[int, Any]):
        self._rank = rank
        self._size = size
        self._conns = connections
        self._senders: dict[int, _EagerSender] = {}

    @property
    def size(self) -> int:
        return self._size

    @property
    def rank(self) -> int:
        return self._rank

    def send(self, dest: int, array: np.ndarray) -> None:
        self._check_peer(dest)
        if dest not in self._senders:
            self._senders[dest] = _EagerSender(self._conns[dest])
        self._count_send(array)
        self._senders[dest].send(array)

    def recv(self, source: int, timeout: float = DEFAULT_TIMEOUT) -> np.ndarray:
        self._check_peer(source)
        conn = self._conns[source]
        if not conn.poll(timeout):
            raise CommTimeoutError(
                f"rank {self._rank}: no message from rank {source} within {timeout}s"
            )
        out = conn.recv()
        self._count_recv(out)
        return out

    def barrier(self) -> None:
        # Dissemination barrier: log2(L) rounds of token exchange.
        token = np.zeros(1)
        distance = 1
        while distance < self._size:
            dest = (self._rank + distance) % self._size
            src = (self._rank - distance) % self._size
            self.send(dest, token)
            self.recv(src)
            distance <<= 1

    def close(self) -> None:
        for sender in self._senders.values():
            sender.close()


def _worker(rank, size, conn_map, result_conn, fn, args):
    comm = PipeCommunicator(rank, size, conn_map)
    try:
        result = fn(comm, rank, *args)
        result_conn.send((rank, "ok", result))
    except BaseException as exc:  # noqa: BLE001 — shipped to the parent
        result_conn.send((rank, "error", repr(exc)))
    finally:
        comm.close()
        result_conn.close()


def run_processes(
    fn: Callable[..., Any],
    world_size: int,
    args: Sequence[Any] = (),
    timeout: float = 300.0,
) -> list[Any]:
    """Run ``fn(comm, rank, *args)`` on ``world_size`` processes.

    Returns the per-rank results (rank order). Raises ``RuntimeError`` if
    any rank failed, with the remote exception repr in the message.
    """
    if world_size < 1:
        raise ValueError(f"world size must be >= 1, got {world_size}")
    ctx = mp.get_context("fork")

    # Pairwise full-duplex pipes: conns[i][j] is rank i's endpoint to rank j.
    conns: list[dict[int, Any]] = [dict() for _ in range(world_size)]
    for i in range(world_size):
        for j in range(i + 1, world_size):
            end_i, end_j = ctx.Pipe(duplex=True)
            conns[i][j] = end_i
            conns[j][i] = end_j

    result_parent, result_children = [], []
    for _ in range(world_size):
        parent_end, child_end = ctx.Pipe(duplex=False)
        result_parent.append(parent_end)
        result_children.append(child_end)

    procs = [
        ctx.Process(
            target=_worker,
            args=(r, world_size, conns[r], result_children[r], fn, tuple(args)),
            daemon=True,
        )
        for r in range(world_size)
    ]
    for p in procs:
        p.start()
    # Parent closes its copies of the child ends so EOF propagates.
    for child_end in result_children:
        child_end.close()
    for rank_conns in conns:
        for c in rank_conns.values():
            c.close()

    results: list[Any] = [None] * world_size
    errors: list[str] = []
    for r, conn in enumerate(result_parent):
        if not conn.poll(timeout):
            errors.append(f"rank {r}: no result within {timeout}s")
            continue
        try:
            rank, status, payload = conn.recv()
        except EOFError:
            errors.append(f"rank {r}: worker died without reporting a result")
            continue
        if status == "ok":
            results[rank] = payload
        else:
            errors.append(f"rank {rank}: {payload}")

    for p in procs:
        p.join(timeout=10.0)
        if p.is_alive():
            p.terminate()
    if errors:
        raise RuntimeError("distributed run failed: " + "; ".join(errors))
    return results
