"""Deterministic fault injection for the distributed runtime.

Production-scale data-parallel VMC treats long multi-node runs as the norm;
the only way to *test* the recovery machinery honestly is to inject faults
on a deterministic schedule and assert the run still converges bit-exactly.
This module provides that schedule:

- :class:`FaultPlan` — a seeded, declarative list of :class:`FaultEvent`\\ s.
  Events are keyed by *operation index* (the victim rank's N-th send/recv)
  or by *training step*, never by wall clock, so a plan replays identically
  on every backend and every machine.
- :class:`FaultyCommunicator` — wraps any :class:`Communicator` and applies
  the op-scoped events of a plan: stragglers (``delay``), lost messages
  (``drop``), duplicated messages (``duplicate``), payload bit flips
  (``corrupt``) and rank death (``crash``).
- :class:`FaultInjectionCallback` — applies step-scoped events (crash or
  delay at a scheduled optimisation step) from inside the training loop, so
  faults can be injected even where no communication happens (serial runs).

The wrapper sits *below* the resilience layer: stack as
``ResilientCommunicator(FaultyCommunicator(backend_comm, plan))`` so that
corruption hits the framed bytes and is caught by the checksum, exactly as
a flaky link would be.

Corruption is **transient** by default: the corrupted frame is followed by
a clean copy, modelling a link-layer retransmission. The resilient receiver
must detect the bad frame via its checksum, discard it, and accept the
retransmitted copy. Set ``transient=False`` to model persistent corruption,
which exhausts the retry budget and escalates to a
:class:`~repro.distributed.comm.RankFailure`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.distributed.comm import Communicator, DEFAULT_TIMEOUT

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultyCommunicator",
    "FaultInjectionCallback",
    "InjectedRankCrash",
    "MismatchedCollectiveInjector",
]

_KINDS = ("delay", "drop", "duplicate", "corrupt", "crash", "mismatch")
#: kinds that modify the outgoing payload (send path only)
_SEND_ONLY = ("drop", "duplicate", "corrupt")


class InjectedRankCrash(RuntimeError):
    """The local rank was killed by an injected ``crash`` fault.

    Models process death: once raised, every further operation on the
    faulty communicator raises it again. The resilient training driver
    treats it as "this rank is gone" — it stops communicating and returns,
    letting the survivors detect the silence and shrink the world.
    """


@dataclass
class FaultEvent:
    """One scheduled fault.

    Exactly one of ``index`` (op-scoped: the victim's ``index``-th matching
    communication operation, 0-based, counted separately per ``(op, peer)``
    class) or ``step`` (step-scoped: applied by
    :class:`FaultInjectionCallback` after the victim completes training step
    ``step``) must be set.
    """

    kind: str
    rank: int
    index: int | None = None
    step: int | None = None
    op: str = "send"  # 'send' | 'recv' | 'any' (op-scoped events only)
    peer: int | None = None
    delay: float = 0.1  # seconds (kind == 'delay')
    bits: int = 1  # bit flips (kind == 'corrupt')
    transient: bool = True  # corrupt: clean copy follows the corrupted one

    def validate(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected {_KINDS}")
        if (self.index is None) == (self.step is None):
            raise ValueError(
                f"exactly one of index/step must be set, got "
                f"index={self.index} step={self.step}"
            )
        if self.step is not None and self.kind in _SEND_ONLY + ("mismatch",):
            raise ValueError(f"{self.kind!r} faults must be op-scoped (set index)")
        if self.kind in _SEND_ONLY and self.op != "send":
            raise ValueError(f"{self.kind!r} faults apply to the send path only")
        if self.kind == "mismatch" and self.op != "collective":
            raise ValueError("'mismatch' faults apply to collectives (op='collective')")
        if self.kind != "mismatch" and self.op == "collective":
            raise ValueError("op='collective' is reserved for 'mismatch' faults")
        if self.op not in ("send", "recv", "any", "collective"):
            raise ValueError(f"unknown op {self.op!r}")
        if self.kind == "delay" and self.delay <= 0:
            raise ValueError(f"delay must be > 0, got {self.delay}")
        if self.kind == "corrupt" and self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")

    def describe(self) -> str:
        scope = (
            f"op {self.op}[{self.index}]" if self.index is not None
            else f"step {self.step}"
        )
        peer = f" peer={self.peer}" if self.peer is not None else ""
        return f"rank {self.rank}: {self.kind} at {scope}{peer}"


class FaultPlan:
    """A deterministic, seeded schedule of faults.

    Determinism guarantees: events trigger on operation/step *counts*, never
    on wall time; corruption bit positions are derived from
    ``(seed, event position)`` with a counter-based PRNG. Replaying the same
    plan against the same program therefore injects byte-identical faults,
    on any backend.
    """

    def __init__(self, events: Sequence[FaultEvent] = (), seed: int = 0):
        self.events = list(events)
        self.seed = int(seed)
        for event in self.events:
            event.validate()

    @classmethod
    def random(
        cls,
        seed: int,
        world_size: int,
        n_faults: int = 3,
        kinds: Sequence[str] = ("delay", "duplicate", "corrupt"),
        max_index: int = 50,
    ) -> "FaultPlan":
        """Draw ``n_faults`` op-scoped events deterministically from ``seed``."""
        rng = np.random.default_rng(seed)
        events = []
        for _ in range(n_faults):
            kind = str(rng.choice(list(kinds)))
            events.append(
                FaultEvent(
                    kind=kind,
                    rank=int(rng.integers(world_size)),
                    index=int(rng.integers(max_index)),
                    op="send" if kind in _SEND_ONLY else "any",
                    delay=float(rng.uniform(0.01, 0.1)),
                )
            )
        return cls(events, seed=seed)

    def events_for(self, rank: int, *, step_scoped: bool) -> list[tuple[int, FaultEvent]]:
        """Events targeting ``rank``, as ``(position, event)`` pairs.

        The position in the plan is the event's stable identity — it seeds
        the corruption PRNG and keys the fired-once bookkeeping.
        """
        return [
            (i, e)
            for i, e in enumerate(self.events)
            if e.rank == rank and (e.step is not None) == step_scoped
        ]

    def describe(self) -> str:
        if not self.events:
            return "FaultPlan(empty)"
        lines = [e.describe() for e in self.events]
        return f"FaultPlan(seed={self.seed}):\n  " + "\n  ".join(lines)

    def __len__(self) -> int:
        return len(self.events)


class FaultyCommunicator(Communicator):
    """Wrap a communicator and inject a :class:`FaultPlan`'s op-scoped events.

    Transparent when the plan has no events for this rank. Traffic counters
    are shared with the wrapped communicator (``stats`` delegates), while
    injected faults are tallied separately in :attr:`injected`.
    """

    def __init__(self, inner: Communicator, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self.algorithm = inner.algorithm
        self._events = plan.events_for(inner.rank, step_scoped=False)
        self._fired: set[int] = set()
        self._counts: dict[tuple[str, int | None], int] = {}
        self._dead = False
        #: kind -> number of events actually injected on this rank
        self.injected: dict[str, int] = {}

    # -- delegation -----------------------------------------------------------

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def stats(self):
        return self.inner.stats

    # -- event matching -------------------------------------------------------

    def _take(self, op: str, peer: int) -> list[tuple[int, FaultEvent]]:
        """Return the unfired events matching this operation and advance
        the per-``(op, peer)`` counters."""
        hits = []
        for pos, event in self._events:
            if pos in self._fired:
                continue
            if event.op not in (op, "any"):
                continue
            if event.peer is not None and event.peer != peer:
                continue
            count = self._counts.get((event.op, event.peer), 0)
            if count == event.index:
                hits.append((pos, event))
                self._fired.add(pos)
        for key in ((op, None), (op, peer), ("any", None), ("any", peer)):
            self._counts[key] = self._counts.get(key, 0) + 1
        return hits

    def _record(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def _check_dead(self) -> None:
        if self._dead:
            raise InjectedRankCrash(f"rank {self.rank} is dead (injected crash)")

    def _crash(self, event: FaultEvent) -> None:
        self._dead = True
        self._record("crash")
        raise InjectedRankCrash(
            f"rank {self.rank} crashed (injected): {event.describe()}"
        )

    def _flip_bits(self, array: np.ndarray, pos: int, event: FaultEvent) -> np.ndarray:
        buf = bytearray(np.ascontiguousarray(array, dtype=np.float64).tobytes())
        rng = np.random.default_rng([self.plan.seed, pos])
        for bit in rng.integers(0, len(buf) * 8, size=event.bits):
            buf[int(bit) // 8] ^= 1 << (int(bit) % 8)
        return np.frombuffer(bytes(buf), dtype=np.float64).reshape(np.shape(array))

    # -- faulted operations ---------------------------------------------------

    def send(self, dest: int, array: np.ndarray) -> None:
        self._check_dead()
        payload_event: tuple[int, FaultEvent] | None = None
        for pos, event in self._take("send", dest):
            if event.kind == "crash":
                self._crash(event)
            if event.kind == "delay":
                self._record("delay")
                time.sleep(event.delay)
            elif payload_event is None:
                payload_event = (pos, event)
        if payload_event is None:
            self.inner.send(dest, array)
            return
        pos, event = payload_event
        self._record(event.kind)
        if event.kind == "drop":
            return
        if event.kind == "duplicate":
            self.inner.send(dest, array)
            self.inner.send(dest, array)
            return
        # corrupt: deliver flipped bits; a transient fault is followed by a
        # clean retransmission (link-layer retry), a persistent one is not.
        self.inner.send(dest, self._flip_bits(array, pos, event))
        if event.transient:
            self.inner.send(dest, array)

    def recv(self, source: int, timeout: float = DEFAULT_TIMEOUT) -> np.ndarray:
        self._check_dead()
        for _, event in self._take("recv", source):
            if event.kind == "crash":
                self._crash(event)
            if event.kind == "delay":
                self._record("delay")
                time.sleep(event.delay)
        return self.inner.recv(source, timeout=timeout)

    def poll(self, source: int, timeout: float = 0.0) -> bool:
        # Probing is fault-free: events are scoped to send/recv operations.
        self._check_dead()
        return self.inner.poll(source, timeout=timeout)

    def barrier(self) -> None:
        # Dissemination over the faulted send/recv so (a) faults apply to
        # barrier traffic too and (b) a dead peer surfaces as a recv timeout
        # instead of wedging a backend-native barrier forever.
        self._check_dead()
        token = np.zeros(1)
        distance = 1
        while distance < self.size:
            self.send((self.rank + distance) % self.size, token)
            self.recv((self.rank - distance) % self.size, timeout=DEFAULT_TIMEOUT)
            distance <<= 1


class MismatchedCollectiveInjector(Communicator):
    """Swap the victim's N-th collective for a different one (``mismatch``).

    Models the divergence bug class — one rank calling ``broadcast`` where
    the others call ``allreduce`` — that ordinarily *deadlocks* the world.
    Events are op-scoped with ``op="collective"``: the victim's
    ``index``-th collective call (0-based, counted across all collective
    kinds) executes the swapped collective from :attr:`_SWAPS` instead.

    Unlike :class:`FaultyCommunicator` (which decomposes collectives onto
    its own faulted point-to-point hops), this wrapper delegates whole
    collectives to ``inner``, so a
    :class:`~repro.analysis.comm_sanitizer.CommSanitizer` stacked *below*
    it sees the swapped call and converts the would-be deadlock into an
    immediate ``CollectiveMismatchError``. Stack as::

        MismatchedCollectiveInjector(CommSanitizer(backend_comm), plan)
    """

    #: deliberately wrong-but-runnable substitute per collective kind
    _SWAPS = {
        "allreduce": "broadcast",
        "broadcast": "allreduce",
        "allgather": "allreduce",
        "reduce": "broadcast",
        "barrier": "allreduce",
    }

    def __init__(self, inner: Communicator, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self.algorithm = inner.algorithm
        self._events = [
            (pos, e)
            for pos, e in plan.events_for(inner.rank, step_scoped=False)
            if e.kind == "mismatch"
        ]
        self._fired: set[int] = set()
        self._collective_count = 0
        self.injected: dict[str, int] = {}

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def stats(self):
        return self.inner.stats

    def send(self, dest: int, array: np.ndarray) -> None:
        self.inner.send(dest, array)

    def recv(self, source: int, timeout: float = DEFAULT_TIMEOUT) -> np.ndarray:
        return self.inner.recv(source, timeout=timeout)

    def poll(self, source: int, timeout: float = 0.0) -> bool:
        return self.inner.poll(source, timeout=timeout)

    def _swap(self, kind: str) -> str | None:
        """The substitute kind when this collective call is the victim."""
        count = self._collective_count
        self._collective_count += 1
        for pos, event in self._events:
            if pos not in self._fired and event.index == count:
                self._fired.add(pos)
                self.injected["mismatch"] = self.injected.get("mismatch", 0) + 1
                return self._SWAPS[kind]
        return None

    def _run(self, kind: str, array: np.ndarray | None, **kwargs):
        swapped = self._swap(kind)
        target = swapped or kind
        if target == "barrier":
            return self.inner.barrier()
        payload = np.zeros(1) if array is None else array
        if target == "allreduce":
            return self.inner.allreduce(payload, op=kwargs.get("op", "sum"))
        if target == "broadcast":
            return self.inner.broadcast(payload, root=kwargs.get("root", 0))
        if target == "allgather":
            return self.inner.allgather(payload)
        if target == "reduce":
            return self.inner.reduce(
                payload, root=kwargs.get("root", 0), op=kwargs.get("op", "sum")
            )
        raise AssertionError(f"unknown collective {target!r}")

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        return self._run("allreduce", array, op=op)

    def broadcast(self, array: np.ndarray, root: int = 0) -> np.ndarray:
        return self._run("broadcast", array, root=root)

    def allgather(self, array: np.ndarray) -> list[np.ndarray]:
        return self._run("allgather", array)

    def reduce(
        self, array: np.ndarray, root: int = 0, op: str = "sum"
    ) -> np.ndarray | None:
        return self._run("reduce", array, root=root, op=op)

    def barrier(self) -> None:
        self._run("barrier", None)


class FaultInjectionCallback:
    """Apply a plan's *step-scoped* events from inside the training loop.

    Fires after the victim completes the scheduled optimisation step —
    deterministic on every backend, including serial runs where the
    communicator is never exercised. Supports ``crash`` (raises
    :class:`InjectedRankCrash`) and ``delay`` (straggles the whole step).
    """

    def __init__(self, plan: FaultPlan, rank: int = 0):
        self.plan = plan
        self.rank = rank
        self._events = plan.events_for(rank, step_scoped=True)
        self._fired: set[int] = set()
        self.injected: dict[str, int] = {}

    def on_run_begin(self, vqmc) -> None:
        pass

    def on_step(self, step: int, result) -> None:
        for pos, event in self._events:
            if pos in self._fired or event.step != step:
                continue
            self._fired.add(pos)
            self.injected[event.kind] = self.injected.get(event.kind, 0) + 1
            if event.kind == "delay":
                time.sleep(event.delay)
            elif event.kind == "crash":
                raise InjectedRankCrash(
                    f"rank {self.rank} crashed (injected): {event.describe()}"
                )

    def on_run_end(self, vqmc) -> None:
        pass
