"""Elastic world management: failure detection, consensus, world shrink.

When a rank dies mid-run, the survivors of a synchronous data-parallel job
have exactly three options: wedge (the status quo ante), abort, or agree on
who is still alive and continue on the smaller world. This module
implements the third:

1. **Heartbeats.** Each participant broadcasts a control frame
   ``[HB, epoch, rank]`` to every other member, then waits (bounded) for
   each peer's heartbeat. A peer that stays silent past the deadline is
   suspected dead. Ranks still blocked inside the broken collective are
   unblocked *by the heartbeat itself*: the resilient layer raises
   :class:`RankFailure` when a control frame interrupts data traffic, which
   sends them into this same protocol.
2. **Consensus.** Survivors exchange their alive-bitmaps and intersect
   them: a rank survives only if *every* survivor saw it alive. One round
   suffices under crash-stop failures with conservative timeouts (the
   failure model injected by :mod:`repro.distributed.faults`).
3. **Shrink.** The agreed group becomes a
   :class:`~repro.distributed.comm.SubCommunicator` over the original
   communicator. Because ``allreduce(op="mean")`` divides by the
   communicator's ``size``, gradient averaging is automatically
   re-normalised by the *live* world size — training degrades to a smaller
   effective batch instead of wedging.

The epoch number (monotonically increased by the caller per shrink) lets
late-arriving control frames from an earlier detection round be discarded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributed.comm import (
    DEFAULT_TIMEOUT,
    CommTimeoutError,
    RankFailure,
    SubCommunicator,
)
from repro.distributed.resilient import ResilientCommunicator

__all__ = ["ElasticConfig", "detect_survivors", "shrink_world"]

_HB_TAG = 1.0
_BM_TAG = 2.0


@dataclass
class ElasticConfig:
    """Detection timeouts. ``None`` derives a conservative value from the
    communicator's retry policy: a peer blocked on a dead rank needs its
    full retry budget to escalate into the detection protocol, so the
    heartbeat wait must exceed that (we use 2× + margin) or healthy ranks
    would be declared dead (split-brain)."""

    heartbeat_timeout: float | None = None
    consensus_timeout: float | None = None

    def resolved(self, comm) -> tuple[float, float]:
        hb = self.heartbeat_timeout
        if hb is None:
            policy = getattr(comm, "policy", None)
            if policy is not None:
                hb = 2.0 * policy.escalation_time(DEFAULT_TIMEOUT) + 0.25
            else:
                hb = 2.0 * DEFAULT_TIMEOUT
        cs = self.consensus_timeout if self.consensus_timeout is not None else hb
        return hb, cs


def detect_survivors(
    comm: ResilientCommunicator,
    members: Sequence[int],
    epoch: int,
    config: ElasticConfig | None = None,
) -> list[int]:
    """Heartbeat round + one bitmap-consensus round over ``members``.

    Collective: every live member must call it with the same ``members``
    and ``epoch``. Returns the agreed survivor group (sorted ranks in
    ``comm``'s numbering). Raises :class:`RankFailure` on the *caller* if
    consensus evicted it (e.g. its heartbeats were lost — continuing alone
    would fork the run).
    """
    cfg = config or ElasticConfig()
    hb_timeout, cs_timeout = cfg.resolved(comm)
    me = comm.rank
    peers = [r for r in members if r != me]
    heartbeat = np.array([_HB_TAG, float(epoch), float(me)])
    for peer in peers:
        try:
            comm.send_ctrl(peer, heartbeat)
        except Exception:  # noqa: BLE001 — a closed pipe to a dead peer is expected
            pass

    alive = {me}
    for peer in peers:
        deadline = time.monotonic() + hb_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                payload = comm.recv_ctrl(peer, remaining)
            except (CommTimeoutError, RankFailure):
                break
            if (
                payload.size == 3
                and payload[0] == _HB_TAG
                and int(payload[1]) == epoch
            ):
                alive.add(peer)
                break
            # control frame from an earlier epoch — keep looking

    bitmap = np.zeros(comm.size)
    bitmap[sorted(alive)] = 1.0
    announce = np.concatenate(([_BM_TAG, float(epoch)], bitmap))
    suspects = sorted(alive - {me})
    for peer in suspects:
        try:
            comm.send_ctrl(peer, announce)
        except Exception:  # noqa: BLE001
            pass
    agreed = bitmap.copy()
    for peer in suspects:
        deadline = time.monotonic() + cs_timeout
        confirmed = False
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                payload = comm.recv_ctrl(peer, remaining)
            except (CommTimeoutError, RankFailure):
                break
            if (
                payload.size == 2 + comm.size
                and payload[0] == _BM_TAG
                and int(payload[1]) == epoch
            ):
                agreed = np.minimum(agreed, payload[2:])
                confirmed = True
                break
        if not confirmed:
            agreed[peer] = 0.0  # died between heartbeat and consensus

    group = [r for r in sorted(members) if agreed[r] > 0]
    if me not in group:
        raise RankFailure(
            me, f"evicted by survivor consensus (epoch {epoch}, survivors {group})"
        )
    return group


def shrink_world(
    comm: ResilientCommunicator,
    members: Sequence[int],
    epoch: int,
    config: ElasticConfig | None = None,
) -> SubCommunicator:
    """Detect failures among ``members`` and return the shrunken world.

    The returned :class:`SubCommunicator` translates ranks onto the
    survivors; its ``size`` is the live world size, so ``mean`` allreduces
    (and the VQMC driver's global statistics) re-normalise automatically.
    """
    group = detect_survivors(comm, members, epoch, config)
    return SubCommunicator(comm, group)
