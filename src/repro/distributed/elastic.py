"""Elastic world management: failure detection, consensus, shrink *and grow*.

When a rank dies mid-run, the survivors of a synchronous data-parallel job
have exactly three options: wedge (the status quo ante), abort, or agree on
who is still alive and continue on the smaller world. This module
implements the third:

1. **Heartbeats.** Each participant broadcasts a control frame
   ``[HB, epoch, rank]`` to every other member, then waits (bounded) for
   each peer's heartbeat. A peer that stays silent past the deadline is
   suspected dead. Ranks still blocked inside the broken collective are
   unblocked *by the heartbeat itself*: the resilient layer raises
   :class:`RankFailure` when a control frame interrupts data traffic, which
   sends them into this same protocol.
2. **Consensus.** Survivors exchange their alive-bitmaps and intersect
   them: a rank survives only if *every* survivor saw it alive. One round
   suffices under crash-stop failures with conservative timeouts (the
   failure model injected by :mod:`repro.distributed.faults`).
3. **Shrink.** The agreed group becomes a
   :class:`~repro.distributed.comm.SubCommunicator` over the original
   communicator. Because ``allreduce(op="mean")`` divides by the
   communicator's ``size``, gradient averaging is automatically
   re-normalised by the *live* world size — training degrades to a smaller
   effective batch instead of wedging.

The epoch number (monotonically increased by the caller per membership
change) lets late-arriving control frames from an earlier detection round
be discarded; frames tagged with a *newer* epoch are accepted — a peer that
already advanced past our epoch is by definition alive, and discarding its
frames would deadlock repeated-failure recoveries where ranks enter
detection from different rounds.

**Growing the world back** (v2) is the reverse handshake:

1. A recovered (or new) process calls :func:`announce_join`: a
   ``[JOIN, rank, epoch]`` control frame to every peer. The resilient data
   path treats stray JOIN frames as harmless (discarded like duplicates),
   so re-announcing is safe at any time.
2. Survivors observe the announcement at a *step boundary* (the training
   supervisor polls non-member channels), agree on the joiner set via an
   allgathered join-bitmask — consensus rides the step-boundary collective,
   so every member decides identically — and call :func:`grow_world`: each
   survivor resets the joiner's channel state
   (:meth:`~repro.distributed.resilient.ResilientCommunicator.reset_peer`)
   and sends an ``[INVITE, epoch, leader, members…, joiners…]`` frame
   before touching the enlarged world, guaranteeing the joiner can drain
   every control frame ahead of new data traffic (channels are FIFO).
3. The joiner collects every survivor's invite (:func:`await_invite`),
   after which both sides form the same enlarged
   :class:`~repro.distributed.comm.SubCommunicator` and run the state
   broadcast (parameters + optimizer + step, see the training supervisor)
   so the joiner's next step is congruent with the group's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributed.comm import (
    DEFAULT_TIMEOUT,
    CommTimeoutError,
    RankFailure,
    SubCommunicator,
)
from repro.distributed.resilient import JOIN_TAG, ResilientCommunicator

__all__ = [
    "ElasticConfig",
    "detect_survivors",
    "shrink_world",
    "announce_join",
    "await_invite",
    "grow_world",
]

_HB_TAG = 1.0
_BM_TAG = 2.0
_INVITE_TAG = 4.0  # JOIN_TAG (3.0) lives in resilient.py — its data path must know it


@dataclass
class ElasticConfig:
    """Detection timeouts. ``None`` derives a conservative value from the
    communicator's retry policy: a peer blocked on a dead rank needs its
    full retry budget to escalate into the detection protocol, so the
    heartbeat wait must exceed that (we use 2× + margin) or healthy ranks
    would be declared dead (split-brain)."""

    heartbeat_timeout: float | None = None
    consensus_timeout: float | None = None

    def resolved(self, comm) -> tuple[float, float]:
        hb = self.heartbeat_timeout
        if hb is None:
            policy = getattr(comm, "policy", None)
            if policy is not None:
                hb = 2.0 * policy.escalation_time(DEFAULT_TIMEOUT) + 0.25
            else:
                hb = 2.0 * DEFAULT_TIMEOUT
        cs = self.consensus_timeout if self.consensus_timeout is not None else hb
        return hb, cs


def detect_survivors(
    comm: ResilientCommunicator,
    members: Sequence[int],
    epoch: int,
    config: ElasticConfig | None = None,
) -> list[int]:
    """Heartbeat round + one bitmap-consensus round over ``members``.

    Collective: every live member must call it with the same ``members``
    and ``epoch``. Returns the agreed survivor group (sorted ranks in
    ``comm``'s numbering). Raises :class:`RankFailure` on the *caller* if
    consensus evicted it (e.g. its heartbeats were lost — continuing alone
    would fork the run).
    """
    cfg = config or ElasticConfig()
    hb_timeout, cs_timeout = cfg.resolved(comm)
    me = comm.rank
    peers = [r for r in members if r != me]
    heartbeat = np.array([_HB_TAG, float(epoch), float(me)])
    for peer in peers:
        try:
            comm.send_ctrl(peer, heartbeat)
        except Exception:  # noqa: BLE001 — a closed pipe to a dead peer is expected
            pass

    alive = {me}
    for peer in peers:
        deadline = time.monotonic() + hb_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                payload = comm.recv_ctrl(peer, remaining)
            except (CommTimeoutError, RankFailure):
                break
            if (
                payload.size == 3
                and payload[0] == _HB_TAG
                and int(payload[1]) >= epoch
            ):
                # Same-or-newer epoch: a peer already past our round (it hit
                # a *second* failure while we were still recovering from the
                # first) is alive by definition — rejecting it would wedge
                # repeated-failure recoveries.
                alive.add(peer)
                break
            # control frame from an earlier epoch — keep looking

    bitmap = np.zeros(comm.size)
    bitmap[sorted(alive)] = 1.0
    announce = np.concatenate(([_BM_TAG, float(epoch)], bitmap))
    suspects = sorted(alive - {me})
    for peer in suspects:
        try:
            comm.send_ctrl(peer, announce)
        except Exception:  # noqa: BLE001
            pass
    agreed = bitmap.copy()
    for peer in suspects:
        deadline = time.monotonic() + cs_timeout
        confirmed = False
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                payload = comm.recv_ctrl(peer, remaining)
            except (CommTimeoutError, RankFailure):
                break
            if (
                payload.size == 2 + comm.size
                and payload[0] == _BM_TAG
                and int(payload[1]) >= epoch
            ):
                agreed = np.minimum(agreed, payload[2:])
                confirmed = True
                break
        if not confirmed:
            agreed[peer] = 0.0  # died between heartbeat and consensus

    group = [r for r in sorted(members) if agreed[r] > 0]
    if me not in group:
        raise RankFailure(
            me, f"evicted by survivor consensus (epoch {epoch}, survivors {group})"
        )
    return group


def shrink_world(
    comm: ResilientCommunicator,
    members: Sequence[int],
    epoch: int,
    config: ElasticConfig | None = None,
) -> SubCommunicator:
    """Detect failures among ``members`` and return the shrunken world.

    The returned :class:`SubCommunicator` translates ranks onto the
    survivors; its ``size`` is the live world size, so ``mean`` allreduces
    (and the VQMC driver's global statistics) re-normalise automatically.
    """
    group = detect_survivors(comm, members, epoch, config)
    return SubCommunicator(comm, group)


# -- grow: the reverse handshake ------------------------------------------------


def announce_join(comm: ResilientCommunicator, epoch_hint: int = 0) -> None:
    """Joiner side, step 1: announce this rank to every peer.

    Sends a ``[JOIN, rank, epoch]`` control frame on every channel. Safe to
    repeat (the resilient data path discards stray JOIN frames like
    duplicates), which the joiner does until an invite arrives — the
    survivors only poll for announcements at step boundaries.
    """
    me = comm.rank
    join_epoch = float(epoch_hint)
    frame = np.array([JOIN_TAG, float(me), join_epoch])
    for peer in range(comm.size):
        if peer == me:
            continue
        try:
            comm.send_ctrl(peer, frame)
        except Exception:  # noqa: BLE001 — a closed pipe to a dead peer is expected
            pass


def _parse_invite(
    payload: np.ndarray, world: int, me: int
) -> tuple[int, int, list[int], list[int]] | None:
    """``(epoch, leader, group, joiners)`` if ``payload`` is an invite
    naming ``me`` a member, else ``None``."""
    if payload.size != 3 + 2 * world or payload[0] != _INVITE_TAG:
        return None
    epoch = int(payload[1])
    leader = int(payload[2])
    group = [r for r in range(world) if payload[3 + r] > 0]
    joiners = [r for r in range(world) if payload[3 + world + r] > 0]
    if me not in group:
        return None
    return epoch, leader, group, joiners


def await_invite(
    comm: ResilientCommunicator,
    timeout: float,
    config: ElasticConfig | None = None,
) -> tuple[int, int, list[int]] | None:
    """Joiner side, step 2: wait for the survivors' invites.

    Scans every peer channel for an ``[INVITE, epoch, leader, members…,
    joiners…]`` control frame naming this rank a member (consuming stale
    detection frames along the way), then drains the *other* survivors'
    invites too — each survivor sends its invite before any data on the
    re-formed world, so once all invites are consumed the channels are
    clean for the state broadcast. Returns ``(epoch, leader, group)``, or
    ``None`` if no invite arrived within ``timeout`` (re-announce and call
    again). Raises :class:`CommTimeoutError` if a survivor's invite goes
    missing after the first one arrived.
    """
    me = comm.rank
    deadline = time.monotonic() + timeout
    first: tuple[int, int, list[int], list[int]] | None = None
    source = -1
    while first is None:
        if time.monotonic() >= deadline:
            return None
        for peer in range(comm.size):
            if peer == me or not comm.poll(peer):
                continue
            try:
                payload = comm.recv_ctrl(peer, 0.05)
            except (CommTimeoutError, RankFailure):
                continue
            parsed = _parse_invite(payload, comm.size, me)
            if parsed is not None:
                first, source = parsed, peer
                break
        else:
            time.sleep(0.01)
    epoch, leader, group, joiners = first
    cfg = config or ElasticConfig()
    _, cs_timeout = cfg.resolved(comm)
    inviters = [r for r in group if r != me and r != source and r not in joiners]
    for peer in inviters:
        peer_deadline = time.monotonic() + cs_timeout
        while True:
            remaining = peer_deadline - time.monotonic()
            if remaining <= 0:
                raise CommTimeoutError(
                    f"rank {me}: joined group {group} at epoch {epoch} but "
                    f"rank {peer}'s invite never arrived"
                )
            payload = comm.recv_ctrl(peer, remaining)
            parsed = _parse_invite(payload, comm.size, me)
            if parsed is not None and parsed[0] >= epoch:
                break
    return epoch, leader, group


def grow_world(
    comm: ResilientCommunicator,
    members: Sequence[int],
    joiners: Sequence[int],
    epoch: int,
    config: ElasticConfig | None = None,
) -> SubCommunicator:
    """Survivor side: admit ``joiners`` and return the enlarged world.

    Collective over ``members`` — every survivor must call it with the same
    ``joiners`` and ``epoch`` (the training supervisor establishes that via
    an allgathered join-bitmask at a step boundary). Per joiner it resets
    the channel state (fresh sequence counters on both sides, stale frames
    drained) and sends the invite; the invite precedes any data this rank
    sends on the new world, so the joiner can drain every control frame
    before the state broadcast starts (FIFO channels).
    """
    del config  # symmetry with shrink_world; no timeouts on the send side
    new_group = sorted(set(members) | set(joiners))
    leader = min(members)
    member_bitmap = np.zeros(comm.size)
    member_bitmap[new_group] = 1.0
    joiner_bitmap = np.zeros(comm.size)
    joiner_bitmap[sorted(joiners)] = 1.0
    invite = np.concatenate(
        ([_INVITE_TAG, float(epoch), float(leader)], member_bitmap, joiner_bitmap)
    )
    for joiner in sorted(joiners):
        comm.reset_peer(joiner)
        try:
            comm.send_ctrl(joiner, invite)
        except Exception:  # noqa: BLE001 — joiner may have died again already
            pass
    return SubCommunicator(comm, new_group)
