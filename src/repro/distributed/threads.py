"""Thread-backed communicator.

Ranks are threads inside one process; each ordered pair of ranks has a
dedicated unbounded queue, so sends are eager by construction (they never
block on the peer), which is the property the collective algorithms rely on.

numpy releases the GIL inside BLAS kernels, so thread ranks do overlap in
the compute-heavy sections; for honest process-level parallelism use
:mod:`repro.distributed.mp`.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from typing import Any, Callable, Sequence

import numpy as np

from repro.distributed.comm import (
    Communicator,
    CommTimeoutError,
    DEFAULT_TIMEOUT,
    OwnedFrame,
    RankFailure,
    WorkerFailure,
)

__all__ = ["ThreadCommunicator", "make_thread_group", "run_threaded"]


class ThreadCommunicator(Communicator):
    """One rank's endpoint of a thread group (see :func:`make_thread_group`).

    When a ``controller`` (see :mod:`repro.analysis.explore`) is attached,
    every commit point — mailbox put/get, poll, barrier arrival — asks the
    controller for permission first, which is what lets the schedule
    explorer serialize and permute the interleaving deterministically. With
    no controller the hot path is untouched.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        mailboxes: list[list["queue.Queue"]],
        barrier: threading.Barrier,
        controller: "object | None" = None,
    ):
        self._rank = rank
        self._size = size
        self._mailboxes = mailboxes
        self._barrier = barrier
        self._controller = controller

    @property
    def size(self) -> int:
        return self._size

    @property
    def rank(self) -> int:
        return self._rank

    def send(self, dest: int, array: np.ndarray) -> None:
        self._check_peer(dest)
        # Copy: sender may mutate its buffer after send returns (MPI eager
        # semantics), and queues share memory between threads. OwnedFrame
        # buffers are handed over by the resilience layer — no copy needed.
        self._count_send(array)
        if isinstance(array, OwnedFrame):
            array = array.view(np.ndarray)  # ownership handed over: no copy
        else:
            array = np.array(array, copy=True)
        if self._controller is not None:
            self._controller.send_commit(self._rank, dest, array)
        self._mailboxes[dest][self._rank].put(array)

    def recv(self, source: int, timeout: float = DEFAULT_TIMEOUT) -> np.ndarray:
        self._check_peer(source)
        inbox = self._mailboxes[self._rank][source]
        try:
            if self._controller is not None:
                out = self._controller.recv_commit(
                    self._rank, source, inbox, timeout
                )
            else:
                out = inbox.get(timeout=timeout)
        except queue.Empty:
            raise CommTimeoutError(
                f"rank {self._rank}: no message from rank {source} "
                f"within {timeout}s"
            ) from None
        self._count_recv(out)
        return out

    def poll(self, source: int, timeout: float = 0.0) -> bool:
        self._check_peer(source)
        inbox = self._mailboxes[self._rank][source]
        if self._controller is not None:
            return self._controller.poll_commit(
                self._rank, source, inbox, timeout
            )
        if not inbox.empty():
            return True
        if timeout <= 0.0:
            return False
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not inbox.empty():
                return True
            time.sleep(0.0005)
        return not inbox.empty()

    def barrier(self) -> None:
        if self._controller is not None:
            self._controller.barrier_commit(self._rank, self._barrier.parties)
            return
        self._barrier.wait()


def make_thread_group(
    size: int, controller: "object | None" = None
) -> list[ThreadCommunicator]:
    """Create ``size`` communicators wired into one group.

    Intended for tests that drive all ranks from a thread pool (or even a
    single thread, since sends are eager). Passing a ``controller`` routes
    every commit point through the schedule explorer
    (:mod:`repro.analysis.explore`).
    """
    if size < 1:
        raise ValueError(f"world size must be >= 1, got {size}")
    mailboxes = [[queue.Queue() for _ in range(size)] for _ in range(size)]
    barrier = threading.Barrier(size)
    return [
        ThreadCommunicator(r, size, mailboxes, barrier, controller)
        for r in range(size)
    ]


def run_threaded(
    fn: Callable[..., Any],
    world_size: int,
    args: Sequence[Any] = (),
    timeout: float = 300.0,
) -> list[Any]:
    """Run ``fn(comm, rank, *args)`` on ``world_size`` threads; return results.

    Error propagation: when every rank either finished or failed, the
    lowest failing rank's exception is re-raised unchanged (original type
    and traceback), annotated with any co-failing ranks — except that a
    rank holding a *diagnosis* outranks a rank holding a wedge symptom
    (:class:`CommTimeoutError` / :class:`RankFailure`): when one rank
    times out on a peer and another names the actual divergence, the
    named error is the one worth surfacing. A failure plus
    ranks that never finished — wedged waiting on the failed peer — raises
    :class:`WorkerFailure`, which attributes every traceback to its rank
    instead of hiding the root cause behind a generic timeout. A timeout
    with *no* failed rank stays a :class:`CommTimeoutError`.
    """
    comms = make_thread_group(world_size)
    results: list[Any] = [None] * world_size
    errors: list[BaseException | None] = [None] * world_size
    tracebacks: list[str | None] = [None] * world_size

    def target(rank: int) -> None:
        try:
            results[rank] = fn(comms[rank], rank, *args)
        except BaseException as exc:  # noqa: BLE001 — propagated to caller
            errors[rank] = exc
            tracebacks[rank] = traceback.format_exc()

    threads = [
        threading.Thread(target=target, args=(r,), daemon=True)
        for r in range(world_size)
    ]
    for t in threads:
        t.start()
    deadline = time.monotonic() + timeout
    wedged: list[int] = []
    for rank, t in enumerate(threads):
        t.join(timeout=max(0.0, deadline - time.monotonic()))
        if t.is_alive():
            wedged.append(rank)
    failed = [r for r in range(world_size) if errors[r] is not None]
    if failed:
        if not wedged:
            symptom = (CommTimeoutError, RankFailure)
            primary = next(
                (r for r in failed if not isinstance(errors[r], symptom)),
                failed[0],
            )
            exc = errors[primary]
            if len(failed) > 1 and hasattr(exc, "add_note"):
                exc.add_note(f"[run_threaded] raised on rank {primary}; "
                             f"ranks {failed} all failed")
            raise exc
        raise WorkerFailure(
            {r: tracebacks[r] or repr(errors[r]) for r in failed}, wedged=wedged
        ) from errors[failed[0]]
    if wedged:
        raise CommTimeoutError(
            f"worker threads (ranks {wedged}) did not finish within {timeout}s"
        )
    return results
