"""World-size-1 communicator (no-op collectives)."""

from __future__ import annotations

import numpy as np

from repro.distributed.comm import Communicator

__all__ = ["SerialCommunicator"]


class SerialCommunicator(Communicator):
    """Single-process communicator; collectives are identity operations.

    Useful so driver code can be written unconditionally against the
    communicator API and run unchanged in serial mode.
    """

    @property
    def size(self) -> int:
        return 1

    @property
    def rank(self) -> int:
        return 0

    def send(self, dest: int, array: np.ndarray) -> None:
        raise RuntimeError("point-to-point send in a world of size 1")

    def recv(self, source: int, timeout: float = 60.0) -> np.ndarray:
        raise RuntimeError("point-to-point recv in a world of size 1")

    def barrier(self) -> None:
        pass
