"""The self-healing training supervisor: detect → shrink/grow → rebalance.

:class:`TrainingSupervisor` is the explicit state machine that used to be
inlined in ``train_resilient``. One rank's run moves through:

.. code-block:: text

          ┌─────────────────────────── StopTraining / iterations ── DONE
          │
    ──▶ RUN ── RankFailure ──▶ DETECT ──▶ RESTORE ──▶ RUN
          │        ▲ (another failure during recovery loops back)
          │
          ├── sync boundary ──▶ [REBALANCE] ──▶ RUN
          └── join consensus ─▶ GROW (invite + state broadcast) ──▶ RUN

- **RUN** steps the trainer; every ``sync_every`` steps it passes a *sync
  boundary*: per-rank sampling/energy costs, local step times, and the
  locally-observed join announcements are allgathered, so every member
  reaches the same conclusions from the same data (no extra agreement
  round — consensus rides the step-boundary collective).
- **DETECT / RESTORE** is the PR-2 shrink contract (heartbeats + bitmap
  consensus + agreed-checkpoint restore), now *re-entrant*: a second
  failure during recovery — the case that used to escape the handler —
  loops back to detection on a fresh epoch instead of crashing the
  survivor.
- **GROW** admits announced joiners when the :class:`ScalingPolicy` says
  so: channel reset + invite (:func:`repro.distributed.elastic.grow_world`),
  then a parameter + optimizer + step broadcast on the enlarged world. The
  joiner's next step is congruent with the group's; survivors verify the
  broadcast parameters match their own (the lock-step invariant, enforced —
  also shape-checked under :class:`~repro.analysis.CommSanitizer`).
- **REBALANCE** feeds the allgathered per-sample costs to the
  :class:`~repro.distributed.ledger.BatchLedger`, shifting samples away
  from stragglers while the global batch stays constant (every rank runs
  the same deterministic split on the same data).

Observability: the supervisor emits ``elastic.*`` spans (``sync`` /
``detect`` / ``restore`` / ``grow`` / ``rejoin`` / ``rebalance``), counters
(``elastic.shrinks`` / ``grows`` / ``rebalances`` / ``join_requests`` /
``policy_grow_hints`` / ``policy_shrink_hints``) and gauges
(``elastic.world_size`` / ``elastic.epoch``) on the trainer's tracer and
metrics registry — see ``docs/observability.md``. A
:class:`~repro.obs.flight.FlightRecorder` passed among the callbacks is
treated as the run's black box: every shrink/grow/rejoin is noted on it
with epoch tags, and it is dumped on rank failure, eviction, and injected
crashes (so each surviving rank leaves a ``flight.rankNNN.json`` naming
the failed ranks and the agreed restore step).
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.callbacks import StopTraining
from repro.core.checkpoint import CheckpointCallback, CheckpointCorruptError
from repro.distributed.comm import CommTimeoutError, RankFailure, SubCommunicator
from repro.distributed.elastic import (
    ElasticConfig,
    announce_join,
    await_invite,
    detect_survivors,
    grow_world,
)
from repro.distributed.faults import InjectedRankCrash
from repro.distributed.ledger import BatchLedger
from repro.obs.flight import FlightRecorder
from repro.obs.tracer import NULL_TRACER

__all__ = [
    "ResilientRunReport",
    "PolicyObservation",
    "ScalingPolicy",
    "TargetStepTimePolicy",
    "TargetSNRPolicy",
    "TrainingSupervisor",
]

#: Fault hook for the schedule explorer (repro.analysis.explore): setting
#: this False re-introduces the historical double-sync-boundary bug — a
#: joiner admitted *inside* the survivors' sync boundary would run its own
#: ``_sync`` allgather while the survivors are already past theirs and
#: into the step's allreduce, interleaving mismatched collectives on the
#: grown group. Production code must never touch it; the explorer's
#: seeded-bug scenarios flip it under a finally-guard.
_SKIP_SYNC_AFTER_JOIN = True


@dataclass
class ResilientRunReport:
    """One rank's account of a resilient training run (picklable)."""

    rank: int
    completed_steps: int = 0
    crashed: bool = False
    evicted: bool = False
    #: one entry per world shrink: {"epoch", "restored_step", "group"}
    restores: list = field(default_factory=list)
    final_group: list = field(default_factory=list)
    #: wall seconds spent in detection + consensus + restore, total
    recovery_seconds: float = 0.0
    comm_stats: dict = field(default_factory=dict)
    checkpoint_dir: str = ""
    #: one entry per world grow: {"epoch", "step", "joiners", "group", "seconds"}
    joins: list = field(default_factory=list)
    #: True on a rank that re-entered the world via :meth:`TrainingSupervisor.rejoin`
    rejoined: bool = False
    #: applied ledger rebalances (see :class:`~repro.distributed.ledger.BatchLedger`)
    rebalances: int = 0


@dataclass
class PolicyObservation:
    """Congruent inputs to a scaling decision (identical on every member:
    built from allgathered sync data and global energy statistics)."""

    step: int
    world_size: int
    #: the synchronous step time — max of the members' local step times
    step_seconds: float
    energy_mean: float
    energy_sem: float
    pending_joiners: int


class ScalingPolicy:
    """Decides whether the world *should* grow. The base policy always says
    ``"grow"`` (admit every announced joiner).

    ``decide`` must be a pure function of the (congruent)
    :class:`PolicyObservation` — every member evaluates it independently
    and they must agree, or the grow collective deadlocks. Returns
    ``"grow"`` (admit pending joiners), ``"hold"`` (keep the current
    world), or ``"shrink"`` (advisory: recorded as a metric hint; the
    supervisor never evicts healthy ranks).
    """

    def decide(self, obs: PolicyObservation) -> str:
        del obs
        return "grow"


@dataclass
class TargetStepTimePolicy(ScalingPolicy):
    """Grow while the synchronous step time exceeds ``target_seconds``
    (more ranks → smaller per-rank batches → faster steps); advise shrink
    when the world is faster than ``shrink_below`` × target."""

    target_seconds: float
    shrink_below: float = 0.5

    def decide(self, obs: PolicyObservation) -> str:
        if obs.step_seconds > self.target_seconds:
            return "grow"
        if obs.step_seconds < self.shrink_below * self.target_seconds:
            return "shrink"
        return "hold"


@dataclass
class TargetSNRPolicy(ScalingPolicy):
    """Grow while the energy signal-to-noise ratio ``|mean| / sem`` is
    below ``target_snr`` (more ranks → bigger effective statistics per
    wall-second; the batch-size/SNR trade-off of ``bench_ablation_batch_snr``)."""

    target_snr: float

    def decide(self, obs: PolicyObservation) -> str:
        if obs.energy_sem <= 0:
            return "hold"
        snr = abs(obs.energy_mean) / obs.energy_sem
        return "grow" if snr < self.target_snr else "hold"


class TrainingSupervisor:
    """Run a :class:`repro.core.VQMC` trainer under elastic supervision.

    Parameters
    ----------
    vqmc:
        The trainer. For multi-rank supervision its ``comm`` must be a
        :class:`~repro.distributed.resilient.ResilientCommunicator` (the
        *root* world — the supervisor swaps ``vqmc.comm`` to
        :class:`SubCommunicator` views of it as membership changes).
    checkpoint_dir, checkpoint_every, keep_last, resume:
        The PR-2 crash-safe checkpoint knobs (see ``train_resilient``).
    callbacks:
        Regular :class:`repro.core.Callback` objects; after a restore,
        replayed steps fire ``on_step`` again.
    elastic:
        Detection timeouts (:class:`ElasticConfig`).
    max_shrinks:
        Refuse to shrink more than this many times (``None`` = unlimited).
    ledger:
        Optional :class:`~repro.distributed.ledger.BatchLedger`; when given
        it owns the per-rank batch sizes (its ``global_batch`` is held
        constant through shrink, grow, and rebalance) and is fed the
        allgathered per-sample costs at every sync boundary. Construct it
        with ``world_size == vqmc.comm.size``.
    policy:
        :class:`ScalingPolicy` gating join admission (default: admit all).
    accept_joins:
        Poll for join announcements at sync boundaries. Off by default —
        the plain ``train_resilient`` path is then bit-exactly PR 2.
    sync_every:
        Step cadence of the sync boundary (cost allgather + join poll).
    rejoin_seed:
        Entropy root for a joiner's fresh RNG stream (mixed with the join
        epoch and the joiner's root rank — deterministic, and disjoint
        from the survivors' streams).
    """

    def __init__(
        self,
        vqmc,
        *,
        checkpoint_dir: str | Path,
        checkpoint_every: int = 5,
        keep_last: int = 5,
        callbacks: Sequence = (),
        elastic: ElasticConfig | None = None,
        max_shrinks: int | None = None,
        resume: str | bool = "auto",
        ledger: BatchLedger | None = None,
        policy: ScalingPolicy | None = None,
        accept_joins: bool = False,
        sync_every: int = 1,
        rejoin_seed: int = 0,
        root=None,
    ):
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1, got {sync_every}")
        self.vqmc = vqmc
        # A rejoining rank constructs its trainer with comm=None (a full-world
        # comm would run VQMC.__init__'s parameter broadcast against members
        # living on the shrunken world) and passes the fresh stack as `root`.
        self.root = root if root is not None else vqmc.comm
        self.world = self.root.size if self.root is not None else 1
        self.rank = self.root.rank if self.root is not None else 0
        if ledger is not None and ledger.world_size != self.world:
            raise ValueError(
                f"ledger world_size {ledger.world_size} != comm size {self.world}"
            )
        self.checkpoint_every = checkpoint_every
        self.callbacks = list(callbacks)
        self.elastic = elastic
        self.max_shrinks = max_shrinks
        self.resume = resume
        self.ledger = ledger
        self.policy = policy or ScalingPolicy()
        self.accept_joins = accept_joins
        self.sync_every = sync_every
        self.rejoin_seed = rejoin_seed
        self.ckpt = CheckpointCallback(
            checkpoint_dir,
            every=checkpoint_every,
            keep_last=keep_last,
            rank=self.rank,
        )
        self.report = ResilientRunReport(
            rank=self.rank, checkpoint_dir=str(self.ckpt.directory)
        )

        self.group: list[int] = list(range(self.world))
        self.active = self.root  # current communicator (root or SubCommunicator)
        self.epoch = 0
        self.shrinks = 0
        self.tracer = getattr(vqmc, "tracer", None) or NULL_TRACER
        self.metrics = getattr(vqmc, "metrics", None)
        # A FlightRecorder among the callbacks becomes the run's black box:
        # the supervisor notes every membership change on it (epoch-tagged)
        # and dumps it on rank failure, eviction, and injected crashes.
        self.flight = next(
            (cb for cb in self.callbacks if isinstance(cb, FlightRecorder)), None
        )
        self._observed_joiners: set[int] = set()
        self._skip_sync_once = False
        self._reset_cost_window()

    # -- observability helpers ----------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _gauge_world(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("elastic.world_size").set(float(len(self.group)))
            self.metrics.gauge("elastic.epoch").set(float(self.epoch))

    def _flight_event(self, kind: str, **info) -> None:
        if self.flight is not None:
            self.flight.note_event(kind, epoch=self.epoch, **info)

    def _flight_dump(self, reason: str) -> None:
        if self.flight is not None:
            self.flight.dump(reason=reason)

    # -- cost window ---------------------------------------------------------

    def _reset_cost_window(self) -> None:
        self._win_seconds = 0.0
        self._win_samples = 0
        self._win_step_seconds = 0.0
        self._win_steps = 0
        self._last_stats = None

    def _record_step(self, result, batch: int) -> None:
        phases = result.phase_seconds
        # Only the sampling phase feeds the cost model: it is the
        # communication-free phase, so its wall-clock is a clean per-rank
        # signal. The energy phase ends in the global stats allreduce,
        # which bills every fast rank for the straggler's lag and flattens
        # the very skew the ledger exists to detect.
        self._win_seconds += phases.get("sample", 0.0)
        self._win_samples += batch
        self._win_step_seconds += result.step_time
        self._win_steps += 1
        self._last_stats = result.stats

    # -- the state machine ----------------------------------------------------

    def run(self, iterations: int, batch_size: int | None = None) -> ResilientRunReport:
        """Train to ``iterations`` total steps under supervision; returns
        this rank's report (same contract as ``train_resilient``)."""
        vqmc = self.vqmc
        if self.resume == "auto":
            self.ckpt.restore_latest(vqmc)
        if self.ckpt.newest_verified_step() is None:
            self.ckpt.write(vqmc, vqmc.global_step)
        for cb in self.callbacks:
            cb.on_run_begin(vqmc)
        outcome = self._loop(iterations, batch_size)
        return self._finalise(outcome)

    def rejoin(
        self,
        iterations: int,
        batch_size: int | None = None,
        *,
        announce_timeout: float = 1.0,
        max_announces: int = 30,
    ) -> ResilientRunReport:
        """Re-enter a running world as a recovered (or brand-new) rank.

        Call on a freshly-constructed trainer whose ``comm`` is a new
        resilient stack over the *root* world. Announces this rank until a
        survivor invites it (``max_announces`` × ``announce_timeout`` wall
        budget), receives the parameter/optimizer/step broadcast, then
        enters the normal supervised loop. Returns the report with
        ``rejoined=False`` if no invite ever arrived (e.g. the run ended).
        """
        vqmc = self.vqmc
        t0 = time.perf_counter()
        with self.tracer.span("elastic.rejoin", rank=self.rank):
            for peer in range(self.root.size):
                if peer != self.rank:
                    self.root.reset_peer(peer)
            got = None
            for _ in range(max_announces):
                announce_join(self.root, epoch_hint=self.epoch)
                self._count("elastic.join_requests")
                try:
                    got = await_invite(self.root, announce_timeout, self.elastic)
                except (CommTimeoutError, RankFailure):
                    got = None
                if got is not None:
                    break
            if got is None:
                self.report.completed_steps = vqmc.global_step
                self.report.final_group = []
                return self.report
            epoch, leader, group = got
            self.epoch = epoch
            self.group = group
            self.active = SubCommunicator(self.root, group)
            vqmc.comm = self.active
            self._broadcast_state(leader, is_joiner=True)
            if self.ledger is not None:
                self.ledger.resize(len(group))
            self.ckpt.write(vqmc, vqmc.global_step)
            # The survivors admitted this rank *inside* their sync boundary
            # for the current step and are already past it, headed into the
            # step's collectives — running our own sync now would interleave
            # its allgather with their allreduce. Skip the one boundary the
            # handshake already stood in for.
            self._skip_sync_once = _SKIP_SYNC_AFTER_JOIN
            self.report.rejoined = True
            self.report.joins.append(
                {
                    "epoch": self.epoch,
                    "step": vqmc.global_step,
                    "joiners": [self.rank],
                    "group": list(group),
                    "seconds": time.perf_counter() - t0,
                }
            )
            self._gauge_world()
            self._flight_event("rejoin", group=list(self.group))
        for cb in self.callbacks:
            cb.on_run_begin(vqmc)
        outcome = self._loop(iterations, batch_size)
        return self._finalise(outcome)

    def _loop(self, iterations: int, batch_size: int | None) -> str:
        """RUN state: step until done, dispatching to recovery/grow/rebalance.
        Returns ``"completed"`` / ``"crashed"`` / ``"evicted"``."""
        vqmc = self.vqmc
        supervised = self.root is not None and self.world > 1
        while vqmc.global_step < iterations:
            try:
                if supervised and self._sync_due():
                    if self._skip_sync_once:
                        self._skip_sync_once = False
                    else:
                        self._sync()
                batch = self._batch_for_me(batch_size)
                result = vqmc.step(batch)
                self._record_step(result, batch or vqmc.config.batch_size)
                if vqmc.global_step % self.checkpoint_every == 0:
                    self.ckpt.write(vqmc, vqmc.global_step)
                for cb in self.callbacks:
                    cb.on_step(result.step, result)
            except StopTraining:
                break
            except InjectedRankCrash as exc:
                # Process death: fall silent immediately (no on_run_end, no
                # further communication) and let the survivors detect it.
                # Local disk is not communication — the dying rank still
                # leaves its black box.
                self._flight_event("injected_crash", error=type(exc).__name__)
                self._flight_dump("injected_crash")
                return "crashed"
            except RankFailure:
                if not supervised:
                    raise
                if not self._recover():
                    return "evicted"
        return "completed"

    def _finalise(self, outcome: str) -> ResilientRunReport:
        report = self.report
        report.completed_steps = self.vqmc.global_step
        if self.ledger is not None:
            report.rebalances = self.ledger.rebalances
        if outcome == "crashed":
            report.crashed = True
            report.final_group = list(self.group)
            return report
        if outcome == "evicted":
            report.evicted = True
            report.final_group = []
            return report
        for cb in self.callbacks:
            cb.on_run_end(self.vqmc)
        report.final_group = list(self.group)
        report.comm_stats = (
            self.root.stats.snapshot() if self.root is not None else {}
        )
        return report

    # -- batch assignment ----------------------------------------------------

    def _batch_for_me(self, batch_size: int | None) -> int | None:
        if self.ledger is None:
            return batch_size
        return self.ledger.batch_for(self.active.rank)

    # -- sync boundary: costs, joins, rebalance -------------------------------

    def _sync_due(self) -> bool:
        if not (self.accept_joins or self.ledger is not None):
            return False
        return self.vqmc.global_step % self.sync_every == 0

    def _poll_joins(self) -> None:
        """Drain non-member channels for join announcements (local, cheap;
        consensus happens via the sync allgather)."""
        from repro.distributed.resilient import JOIN_TAG

        members = set(self.group)
        for peer in range(self.root.size):
            if peer == self.rank or peer in members:
                continue
            while self.root.poll(peer):
                try:
                    payload = self.root.recv_ctrl(peer, 0.05)
                except (CommTimeoutError, RankFailure):
                    break
                if payload.size == 3 and payload[0] == JOIN_TAG:
                    self._observed_joiners.add(int(payload[1]))

    def _sync(self) -> None:
        """One step-boundary round: allgather [join-mask, cost, step-time],
        feed the ledger, consult the policy, grow if agreed."""
        vqmc = self.vqmc
        with self.tracer.span(
            "elastic.sync", step=vqmc.global_step, world=len(self.group)
        ):
            if self.accept_joins:
                self._poll_joins()
            mask = 0
            for joiner in self._observed_joiners:
                mask |= 1 << joiner
            cost = (
                self._win_seconds / self._win_samples if self._win_samples else 0.0
            )
            step_seconds = (
                self._win_step_seconds / self._win_steps if self._win_steps else 0.0
            )
            gathered = self.active.allgather(
                np.array([float(mask), cost, step_seconds])
            )
            joint_mask = 0
            for vec in gathered:
                joint_mask |= int(vec[0])
            joiners = sorted(
                r
                for r in range(self.root.size)
                if joint_mask >> r & 1 and r not in self.group
            )
            self._reset_cost_window()

            if self.ledger is not None:
                costs = [float(vec[1]) for vec in gathered]
                self.ledger.observe(costs)
                with self.tracer.span("elastic.rebalance", step=vqmc.global_step):
                    if self.ledger.maybe_rebalance(vqmc.global_step):
                        self._count("elastic.rebalances")

            if self.accept_joins and joiners:
                stats = self._last_stats
                obs = PolicyObservation(
                    step=vqmc.global_step,
                    world_size=len(self.group),
                    step_seconds=max(float(vec[2]) for vec in gathered),
                    energy_mean=stats.mean if stats is not None else 0.0,
                    energy_sem=stats.sem if stats is not None else float("inf"),
                    pending_joiners=len(joiners),
                )
                decision = self.policy.decide(obs)
                if decision == "grow":
                    self._count("elastic.policy_grow_hints")
                    self._grow(joiners)
                elif decision == "shrink":
                    self._count("elastic.policy_shrink_hints")

    # -- GROW -----------------------------------------------------------------

    def _grow(self, joiners: list[int]) -> None:
        vqmc = self.vqmc
        t0 = time.perf_counter()
        with self.tracer.span(
            "elastic.grow", epoch=self.epoch + 1, joiners=list(joiners)
        ):
            self.epoch += 1
            leader = min(self.group)
            self.active = grow_world(
                self.root, self.group, joiners, self.epoch, self.elastic
            )
            self.group = sorted(set(self.group) | set(joiners))
            vqmc.comm = self.active
            self._broadcast_state(leader, is_joiner=False)
            if self.ledger is not None:
                self.ledger.resize(len(self.group))
            self.ckpt.write(vqmc, vqmc.global_step)
            self._observed_joiners -= set(self.group)
            self._reset_cost_window()
            self.report.joins.append(
                {
                    "epoch": self.epoch,
                    "step": vqmc.global_step,
                    "joiners": list(joiners),
                    "group": list(self.group),
                    "seconds": time.perf_counter() - t0,
                }
            )
            self._count("elastic.grows")
            self._gauge_world()
            self._flight_event(
                "grow", joiners=list(joiners), group=list(self.group)
            )

    def _broadcast_state(self, leader: int, is_joiner: bool) -> None:
        """Parameter + optimizer + step broadcast from ``leader`` onto the
        (re-formed) active world, in two congruently-shaped rounds: a
        fixed-size header naming the payload length, then the payload —
        every rank passes identically-shaped buffers, so the broadcast is
        clean under :class:`~repro.analysis.CommSanitizer`."""
        vqmc = self.vqmc
        active = self.active
        root_idx = self.group.index(leader)
        params = vqmc.model.flat_parameters()
        if active.rank == root_idx:
            blob = pickle.dumps(vqmc.optimizer.state_dict())
            padded = blob + b"\0" * (-len(blob) % 8)
            opt = np.frombuffer(padded, dtype=np.uint8).view(np.float64)
            header = np.array(
                [
                    float(self.epoch),
                    float(vqmc.global_step),
                    float(params.size),
                    float(len(blob)),
                    float(params.size + opt.size),
                ]
            )
        else:
            header = np.zeros(5)
        header = active.broadcast(header, root=root_idx)
        n_params = int(header[2])
        opt_bytes = int(header[3])
        payload = np.zeros(int(header[4]))
        if active.rank == root_idx:
            payload[:n_params] = params
            payload[n_params:] = opt
        payload = active.broadcast(payload, root=root_idx)
        if is_joiner:
            self.epoch = int(header[0])
            vqmc.model.set_flat_parameters(payload[:n_params].copy())
            state = pickle.loads(payload[n_params:].tobytes()[:opt_bytes])
            vqmc.optimizer.load_state_dict(state)
            vqmc.global_step = int(header[1])
            # A dead process's RNG stream is unrecoverable; derive a fresh
            # deterministic stream disjoint from every survivor's.
            vqmc.rng = np.random.default_rng(
                np.random.SeedSequence([self.rejoin_seed, self.epoch, self.rank])
            )
        elif not np.array_equal(payload[:n_params], params):
            raise RuntimeError(
                "elastic grow: survivor parameters diverged from the "
                "broadcast state (lock-step invariant violated)"
            )

    # -- DETECT / RESTORE ------------------------------------------------------

    def _recover(self) -> bool:
        """Shrink onto the survivors and restore the agreed checkpoint.

        Re-entrant by design: a *further* failure during the restore's
        collectives loops back to detection on a fresh epoch (the bug class
        of the two-crashes-in-separate-epochs regression), instead of
        escaping the handler. Returns ``False`` if this rank was evicted.
        """
        vqmc = self.vqmc
        report = self.report
        t0 = time.perf_counter()
        while True:
            self.epoch += 1
            self.shrinks += 1
            if self.max_shrinks is not None and self.shrinks > self.max_shrinks:
                raise  # noqa: PLE0704 — re-raise the RankFailure being handled
            previous_group = list(self.group)
            try:
                with self.tracer.span("elastic.detect", epoch=self.epoch):
                    self.group = detect_survivors(
                        self.root, self.group, self.epoch, self.elastic
                    )
            except RankFailure:
                report.recovery_seconds += time.perf_counter() - t0
                self._count("elastic.evictions")
                self._flight_event("evicted", group=previous_group)
                self._flight_dump("evicted")
                return False
            self.active = SubCommunicator(self.root, self.group)
            vqmc.comm = self.active
            try:
                with self.tracer.span(
                    "elastic.restore", epoch=self.epoch, world=len(self.group)
                ):
                    # Survivors agree on the newest step every one of them
                    # can verify on disk, then restore it — same parameters,
                    # optimizer moments, and RNG state everywhere, so the
                    # continued run is bit-exactly a restart from that
                    # checkpoint. The same allreduce re-synchronises the
                    # epoch (max): ranks may enter recovery from different
                    # rounds after repeated failures.
                    newest = self.ckpt.newest_verified_step()
                    if newest is None:
                        raise CheckpointCorruptError(
                            self.ckpt.directory,
                            "no verifiable checkpoint to recover from",
                        )
                    agreed_vec = self.active.allreduce(
                        np.array([-float(newest), float(self.epoch)]), op="max"
                    )
                    agreed = int(-agreed_vec[0])  # max of negatives = min step
                    self.epoch = int(agreed_vec[1])
                    used = self.ckpt.restore_latest(vqmc, at_step=agreed)
                    if used is None:
                        raise CheckpointCorruptError(
                            self.ckpt.directory,
                            f"agreed restore step {agreed} is missing or "
                            f"corrupt on rank {self.rank}",
                        )
            except RankFailure:
                continue  # another rank died during recovery — detect again
            if self.ledger is not None:
                self.ledger.resize(len(self.group))
            self._observed_joiners -= set(self.group)
            self._reset_cost_window()
            report.restores.append(
                {
                    "epoch": self.epoch,
                    "restored_step": agreed,
                    "group": list(self.group),
                }
            )
            report.recovery_seconds += time.perf_counter() - t0
            self._count("elastic.shrinks")
            self._gauge_world()
            self._flight_event(
                "shrink",
                failed=sorted(set(previous_group) - set(self.group)),
                group=list(self.group),
                restored_step=agreed,
            )
            self._flight_dump("rank_failure")
            return True
