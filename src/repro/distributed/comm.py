"""Communicator interface and reduction operators."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "ReduceOp",
    "Communicator",
    "SubCommunicator",
    "CommStats",
    "CommTimeoutError",
    "ChecksumError",
    "RankFailure",
    "WorkerFailure",
    "OwnedFrame",
]

#: default seconds to wait on a peer before declaring the job wedged
DEFAULT_TIMEOUT = 60.0


class CommTimeoutError(RuntimeError):
    """A peer did not produce an expected message in time (deadlock guard)."""


class ChecksumError(RuntimeError):
    """A framed message failed its payload checksum (corruption in transit).

    Raised (and possibly retried) by
    :class:`repro.distributed.resilient.ResilientCommunicator`.
    """


class RankFailure(RuntimeError):
    """A peer rank is considered failed after retries were exhausted.

    Carries the rank that failed (``rank``, in the failing communicator's
    numbering — translate through ``SubCommunicator.group`` for global
    ranks) and a short ``reason``. The elastic layer
    (:mod:`repro.distributed.elastic`) catches this to shrink the world
    onto the survivors.
    """

    def __init__(self, rank: int, reason: str):
        self.rank = rank
        self.reason = reason
        super().__init__(f"rank {rank} failed: {reason}")


class WorkerFailure(RuntimeError):
    """One or more worker ranks raised inside ``run_threaded``/``run_processes``.

    ``failures`` maps rank -> formatted traceback (or exception repr) so the
    root cause is attributed instead of surfacing as a generic timeout on
    the surviving ranks.
    """

    def __init__(self, failures: dict[int, str], wedged: list[int] | None = None):
        self.failures = dict(failures)
        self.wedged = list(wedged or [])
        parts = [
            f"rank {rank} raised:\n{tb.rstrip()}"
            for rank, tb in sorted(self.failures.items())
        ]
        if self.wedged:
            parts.append(
                f"ranks {self.wedged} produced no result "
                "(likely wedged waiting on a failed peer)"
            )
        super().__init__(
            "distributed run failed in "
            f"{len(self.failures)} worker rank(s):\n" + "\n".join(parts)
        )


class OwnedFrame(np.ndarray):
    """Marker subclass: the sender hands over ownership of this buffer.

    Backends defensively copy outgoing arrays (the caller may mutate its
    buffer after ``send`` returns, MPI eager semantics). The resilience
    layer builds a fresh frame per send anyway, so it tags frames with this
    view type and backends skip the second copy — keeping the fault-free
    overhead of the framing layer to one pass over the payload.
    """


class ReduceOp:
    """Elementwise reduction operators for allreduce/reduce."""

    _OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
        "sum": lambda a, b: a + b,
        "prod": lambda a, b: a * b,
        "max": np.maximum,
        "min": np.minimum,
    }

    @classmethod
    def get(cls, op: str) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
        if op == "mean":
            # 'mean' is sum followed by division by world size; the caller
            # (Communicator.allreduce) handles the division.
            return cls._OPS["sum"]
        try:
            return cls._OPS[op]
        except KeyError:
            raise ValueError(
                f"unknown reduce op {op!r}; expected one of "
                f"{sorted(cls._OPS) + ['mean']}"
            ) from None

    @classmethod
    def names(cls) -> list[str]:
        return sorted(cls._OPS) + ["mean"]


class CommStats:
    """Traffic counters for one communicator endpoint.

    Filled by the backends' ``send``/``recv``; lets users verify
    communication-volume claims (e.g. the paper's O(hn) floats per
    data-parallel step) empirically: read, do work, diff.

    The resilience layer (:mod:`repro.distributed.resilient`) additionally
    fills the recovery counters (``retries`` …), so fault recovery is
    observable the same way traffic is. Because wrappers
    (:class:`~repro.distributed.resilient.ResilientCommunicator`, fault
    injectors, the comm sanitizer) all delegate ``stats`` to the wrapped
    backend, one :meth:`snapshot` call captures the full comm picture of a
    whole stack: point-to-point traffic (``bytes_sent``/``bytes_received``
    include framing overhead — the wire truth), collective-level payload
    accounting (``collective_calls``/``collective_bytes``), and recovery
    counters.
    """

    __slots__ = (
        "messages_sent",
        "messages_received",
        "bytes_sent",
        "bytes_received",
        # -- collective-level accounting (base Communicator collectives) --
        "collective_calls",
        "collective_bytes",
        # -- resilience counters (ResilientCommunicator) --
        "retries",
        "checksum_errors",
        "duplicates_discarded",
        "timeouts_recovered",
        "rank_failures",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.collective_calls = 0
        self.collective_bytes = 0
        self.retries = 0
        self.checksum_errors = 0
        self.duplicates_discarded = 0
        self.timeouts_recovered = 0
        self.rank_failures = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"CommStats(sent={self.messages_sent} msgs/{self.bytes_sent} B, "
            f"recv={self.messages_received} msgs/{self.bytes_received} B)"
        )


class Communicator:
    """Abstract communicator: point-to-point plus collectives.

    Backends implement ``send``/``recv`` (and may override collectives with
    something smarter); the default collective implementations live in
    :mod:`repro.distributed.collectives` and are algorithm-selectable.
    Backends call :meth:`_count_send`/:meth:`_count_recv` so
    :attr:`stats` tracks traffic uniformly.
    """

    #: collective algorithm: 'ring' | 'rec_double' | 'naive'
    algorithm = "ring"

    #: span recorder for collective latency+bytes; the class-level default
    #: is the shared disabled tracer, so un-instrumented communicators pay
    #: one attribute load per collective. Attach with :meth:`attach_tracer`
    #: on the *outermost* wrapper of a stack (wrappers run the base-class
    #: collective algorithms on themselves, so that is where spans fire).
    tracer: Tracer = NULL_TRACER

    def attach_tracer(self, tracer: Tracer) -> None:
        """Report this communicator's collectives as spans on ``tracer``."""
        self.tracer = tracer

    @property
    def stats(self) -> CommStats:
        existing = getattr(self, "_stats_counters", None)
        if existing is None:
            existing = CommStats()
            # object.__setattr__-free: communicators are plain classes.
            self._stats_counters = existing
        return existing

    def _count_send(self, array: np.ndarray) -> None:
        s = self.stats
        s.messages_sent += 1
        s.bytes_sent += int(np.asarray(array).nbytes)

    def _count_recv(self, array: np.ndarray) -> None:
        s = self.stats
        s.messages_received += 1
        s.bytes_received += int(np.asarray(array).nbytes)

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def rank(self) -> int:
        raise NotImplementedError

    # -- point to point -------------------------------------------------------

    def send(self, dest: int, array: np.ndarray) -> None:
        """Asynchronous (eager) send; must never deadlock against a send
        from the peer."""
        raise NotImplementedError

    def recv(self, source: int, timeout: float = DEFAULT_TIMEOUT) -> np.ndarray:
        raise NotImplementedError

    def poll(self, source: int, timeout: float = 0.0) -> bool:
        """Is a message from ``source`` ready? (``MPI_Iprobe`` analogue.)

        ``timeout=0`` never blocks. Optional capability: backends that
        cannot probe raise :exc:`NotImplementedError`, and callers that
        merely *optimise* on it (e.g. the comm sanitizer's lazy
        fingerprint drain) must degrade to plain ``recv``.
        """
        raise NotImplementedError

    def barrier(self) -> None:
        raise NotImplementedError

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"peer {peer} out of range for world size {self.size}")
        if peer == self.rank:
            raise ValueError("self-send is not supported")

    # -- collectives (default implementations) ----------------------------------

    def _count_collective(self, array: np.ndarray) -> int:
        nbytes = int(array.nbytes)
        s = self.stats
        s.collective_calls += 1
        s.collective_bytes += nbytes
        return nbytes

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        from repro.distributed import collectives

        array = np.ascontiguousarray(array, dtype=np.float64)
        nbytes = self._count_collective(array)
        with self.tracer.span(
            "comm.allreduce", bytes=nbytes, op=op, algorithm=self.algorithm
        ):
            if self.size == 1:
                out = array.copy()
            elif self.algorithm == "ring":
                out = collectives.ring_allreduce(self, array, op)
            elif self.algorithm == "rec_double":
                out = collectives.recursive_doubling_allreduce(self, array, op)
            elif self.algorithm == "naive":
                out = collectives.naive_allreduce(self, array, op)
            else:
                raise ValueError(
                    f"unknown collective algorithm {self.algorithm!r}"
                )
        if op == "mean":
            out = out / self.size
        return out

    def broadcast(self, array: np.ndarray, root: int = 0) -> np.ndarray:
        from repro.distributed import collectives

        array = np.ascontiguousarray(array, dtype=np.float64)
        nbytes = self._count_collective(array)
        with self.tracer.span("comm.broadcast", bytes=nbytes, root=root):
            if self.size == 1:
                return array.copy()
            return collectives.tree_broadcast(self, array, root)

    def allgather(self, array: np.ndarray) -> list[np.ndarray]:
        from repro.distributed import collectives

        array = np.ascontiguousarray(array, dtype=np.float64)
        nbytes = self._count_collective(array)
        with self.tracer.span("comm.allgather", bytes=nbytes):
            if self.size == 1:
                return [array.copy()]
            return collectives.ring_allgather(self, array)

    def reduce(self, array: np.ndarray, root: int = 0, op: str = "sum") -> np.ndarray | None:
        """Reduce to ``root``; other ranks return None."""
        from repro.distributed import collectives

        array = np.ascontiguousarray(array, dtype=np.float64)
        nbytes = self._count_collective(array)
        with self.tracer.span("comm.reduce", bytes=nbytes, op=op, root=root):
            if self.size == 1:
                return array.copy()
            out = collectives.tree_reduce(self, array, root, op)
        if op == "mean" and out is not None:
            out = out / self.size
        return out

    # -- subcommunicators -----------------------------------------------------------

    def split(self, color: int, key: int | None = None) -> "SubCommunicator":
        """MPI_Comm_split: ranks with the same ``color`` form a subgroup,
        ordered by ``key`` (ties broken by parent rank; default: parent
        rank order). Collective — every rank of this communicator must
        call it.

        The subcommunicator reuses the parent's channels with rank
        translation, so parent-level and sub-level traffic must not be
        interleaved concurrently between the same pair of ranks (use one
        context at a time — the hierarchical-collective pattern).
        """
        key = self.rank if key is None else key
        triples = self.allgather(
            np.array([float(color), float(key), float(self.rank)])
        )
        members = sorted(
            (int(k), int(r))
            for c, k, r in (t for t in triples)
            if int(c) == color
        )
        group = [r for _, r in members]
        return SubCommunicator(self, group)


class SubCommunicator(Communicator):
    """A communicator over a subset of a parent's ranks (rank-translated)."""

    def __init__(self, parent: Communicator, group: list[int]):
        if parent.rank not in group:
            raise ValueError(
                f"rank {parent.rank} is not a member of the group {group}"
            )
        if len(set(group)) != len(group):
            raise ValueError(f"duplicate ranks in group {group}")
        self.parent = parent
        self.group = list(group)
        self._rank = self.group.index(parent.rank)
        self.algorithm = parent.algorithm
        self.tracer = parent.tracer  # sub-collectives stay on the same timeline

    @property
    def size(self) -> int:
        return len(self.group)

    @property
    def rank(self) -> int:
        return self._rank

    def send(self, dest: int, array: np.ndarray) -> None:
        self._check_peer(dest)
        self.parent.send(self.group[dest], array)

    def recv(self, source: int, timeout: float = DEFAULT_TIMEOUT) -> np.ndarray:
        self._check_peer(source)
        return self.parent.recv(self.group[source], timeout=timeout)

    def poll(self, source: int, timeout: float = 0.0) -> bool:
        self._check_peer(source)
        return self.parent.poll(self.group[source], timeout=timeout)

    def barrier(self) -> None:
        # Dissemination barrier within the group (cannot reuse the parent's
        # global barrier — it would wait for non-members).
        token = np.zeros(1)
        distance = 1
        while distance < self.size:
            self.send((self._rank + distance) % self.size, token)
            self.recv((self._rank - distance) % self.size, timeout=DEFAULT_TIMEOUT)
            distance <<= 1
