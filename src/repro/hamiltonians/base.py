"""Hamiltonian interface and bit/spin conventions.

Conventions
-----------
- Configurations are bit-strings ``x ∈ {0,1}^n``, batched as ``(B, n)``
  float arrays (matching the neural-network input convention).
- Spins are ``z_i = 1 - 2 x_i ∈ {+1, -1}`` (so bit 0 ↦ spin +1), matching
  the paper's Eq. 13 where the Z-eigenvalue enters as ``(1 - 2 x_i)``.
- A row index of the matrix is the big-endian integer
  ``x = 2^{n-1} x_1 + … + 2^0 x_n`` (paper §2.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Hamiltonian",
    "SingleFlipRows",
    "bits_to_spins",
    "spins_to_bits",
    "index_to_bits",
    "bits_to_index",
]


def bits_to_spins(x: np.ndarray) -> np.ndarray:
    """Map bits {0,1} to spins {+1,-1} via ``z = 1 - 2x``."""
    return 1.0 - 2.0 * np.asarray(x, dtype=np.float64)


def spins_to_bits(z: np.ndarray) -> np.ndarray:
    """Inverse of :func:`bits_to_spins`."""
    return (1.0 - np.asarray(z, dtype=np.float64)) / 2.0


def index_to_bits(idx: np.ndarray | int, n: int) -> np.ndarray:
    """Big-endian binary representation of row indices — shape (..., n)."""
    idx = np.asarray(idx)
    shifts = np.arange(n - 1, -1, -1)
    return ((idx[..., None] >> shifts) & 1).astype(np.float64)


def bits_to_index(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`index_to_bits` (big-endian)."""
    x = np.asarray(x)
    n = x.shape[-1]
    weights = (1 << np.arange(n - 1, -1, -1)).astype(np.int64)
    return (x.astype(np.int64) @ weights)


@dataclass(frozen=True)
class SingleFlipRows:
    """Structured description of off-diagonal rows made of single bit flips.

    When every connected configuration of every row is ``x`` with exactly
    one bit flipped, and the amplitude of each flip is independent of ``x``,
    the whole ``connected()`` output is summarised by two length-``K``
    arrays: ``H[x, x ⊕ e_{sites[k]}] = amplitudes[k]`` for all ``x``. This
    is the paper's Eq. 11 family (each ``X_i`` term flips bit ``i`` with
    constant amplitude ``-α_i``) and is what the fused delta-evaluation
    kernel in :mod:`repro.perf.flips` consumes — no ``(B, K, n)`` dense
    neighbour array is ever materialised.
    """

    sites: np.ndarray  # (K,) int — flipped site per connected entry
    amplitudes: np.ndarray  # (K,) float — configuration-independent amplitudes

    def __post_init__(self):
        sites = np.asarray(self.sites, dtype=np.int64)
        amps = np.asarray(self.amplitudes, dtype=np.float64)
        if sites.ndim != 1 or amps.shape != sites.shape:
            raise ValueError(
                f"sites/amplitudes must be matching 1-D arrays, got "
                f"{sites.shape} and {amps.shape}"
            )
        if sites.size and sites.size != np.unique(sites).size:
            raise ValueError("flip sites must be unique (merge amplitudes first)")
        object.__setattr__(self, "sites", sites)
        object.__setattr__(self, "amplitudes", amps)

    @property
    def k(self) -> int:
        return int(self.sites.size)


class Hamiltonian:
    """Row-sparse, efficiently row-computable Hamiltonian (Definition 2.1).

    Subclasses implement :meth:`diagonal` and :meth:`connected`; everything
    else (local energies, exact matrices, VQMC) is generic. Subclasses whose
    off-diagonal rows are configuration-independent single flips should also
    override :meth:`single_flips` to unlock the fused local-energy kernel.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"need at least one site, got n={n}")
        self.n = n

    # -- required ---------------------------------------------------------------

    def diagonal(self, x: np.ndarray) -> np.ndarray:
        """Diagonal matrix elements ``H_xx`` for a batch — shape (B,)."""
        raise NotImplementedError

    def connected(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Off-diagonal row entries for each configuration in the batch.

        Returns ``(neighbours, amplitudes)`` of shapes ``(B, K, n)`` and
        ``(B, K)``: for each ``x_b``, ``H[x_b, neighbours[b, k]] =
        amplitudes[b, k]``. ``K`` may be 0 for diagonal Hamiltonians
        (e.g. Max-Cut), in which case both arrays have a zero-sized axis.
        """
        raise NotImplementedError

    @property
    def sparsity(self) -> int:
        """Upper bound on off-diagonal entries per row (``s`` of Def. 2.1)."""
        raise NotImplementedError

    # -- optional structure --------------------------------------------------------

    def single_flips(self) -> SingleFlipRows | None:
        """Structured single-flip form of the off-diagonal rows, if any.

        Returns ``None`` when the rows are not expressible as
        configuration-independent single bit flips (the generic dense
        ``connected()`` path is used instead). The contract, when not
        ``None``: ``connected(x)`` is exactly ``x`` with bit ``sites[k]``
        flipped at amplitude ``amplitudes[k]``, for every ``x``.
        """
        return None

    # -- generic helpers ----------------------------------------------------------

    def _check_batch(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2 or x.shape[1] != self.n:
            raise ValueError(f"expected (B, {self.n}) configurations, got {x.shape}")
        return x

    def to_dense(self) -> np.ndarray:
        """Materialise the full ``2^n × 2^n`` matrix (validation; n ≤ 14)."""
        if self.n > 14:
            raise ValueError(f"refusing to materialise 2^{self.n} dense matrix")
        dim = 2**self.n
        states = index_to_bits(np.arange(dim), self.n)
        mat = np.zeros((dim, dim))
        mat[np.arange(dim), np.arange(dim)] = self.diagonal(states)
        nbrs, amps = self.connected(states)
        if nbrs.shape[1]:
            cols = bits_to_index(nbrs.reshape(-1, self.n)).reshape(dim, -1)
            for row in range(dim):
                for k in range(cols.shape[1]):
                    mat[row, cols[row, k]] += amps[row, k]
        return mat

    def to_sparse(self):
        """Materialise as ``scipy.sparse.csr_matrix`` (validation; n ≤ 20)."""
        import scipy.sparse as sp

        if self.n > 20:
            raise ValueError(f"refusing to materialise 2^{self.n} sparse matrix")
        dim = 2**self.n
        states = index_to_bits(np.arange(dim), self.n)
        diag = self.diagonal(states)
        rows = [np.arange(dim)]
        cols = [np.arange(dim)]
        vals = [diag]
        nbrs, amps = self.connected(states)
        k = nbrs.shape[1]
        if k:
            cidx = bits_to_index(nbrs.reshape(-1, self.n))
            rows.append(np.repeat(np.arange(dim), k))
            cols.append(cidx)
            vals.append(amps.ravel())
        mat = sp.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(dim, dim),
        )
        return mat.tocsr()
