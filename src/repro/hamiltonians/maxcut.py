"""Max-Cut as a (purely diagonal) quantum Hamiltonian — paper §2.4 & §5.1.

For a weighted graph with adjacency ``W`` the cut value of a partition
encoded by bits ``x`` (spins ``z = 1-2x``) is

    cut(x) = Σ_{i<j} w_ij (1 - z_i z_j) / 2 .

We encode Max-Cut as the ZZX Hamiltonian with ``α = β = 0``,
``β_ij = -w_ij/2`` and ``offset = -Σ_{i<j} w_ij / 2``, so that

    H_xx = -cut(x) ,

i.e. the ground-state energy is minus the maximum cut and VQMC maximises
the cut by minimising the energy. (The paper's §2.4 uses β_ij = L_ij/4,
which differs from this by an overall affine transformation of the spectrum;
our convention makes reported energies directly comparable to cut counts
in Table 2.)

The paper's random instances (§5.1): ``B_ij ~ Bernoulli(0.5)``, adjacency
``rint((B + Bᵀ)/2)`` with zero diagonal — i.e. an edge is present iff *both*
directed coin flips landed heads (density ≈ 1/4; this matches the Table 2
"Random" row, e.g. n=500 → E[cut] ≈ |E|/2 ≈ 15 600).
"""

from __future__ import annotations

import numpy as np

import networkx as nx

from repro.hamiltonians.base import bits_to_spins
from repro.hamiltonians.zzx import ZZXHamiltonian
from repro.utils.rng import as_generator

__all__ = ["MaxCut", "bernoulli_adjacency"]


def bernoulli_adjacency(
    n: int, seed: int | None | np.random.Generator = None, p: float = 0.5
) -> np.ndarray:
    """The paper's random adjacency: ``rint((B + Bᵀ)/2)``, zero diagonal."""
    rng = as_generator(seed)
    b = (rng.random((n, n)) < p).astype(np.float64)
    w = np.rint((b + b.T) / 2.0)
    np.fill_diagonal(w, 0.0)
    return w


class MaxCut(ZZXHamiltonian):
    """Max-Cut Hamiltonian; ``H_xx = -cut(x)``, no off-diagonal entries.

    ``single_flips()`` (inherited) returns an empty flip list — α ≡ 0 —
    so ``local_energies`` reduces to the diagonal and performs no network
    evaluations at all (unless the caller asks for ``log ψ(x)`` back).
    """

    def __init__(self, adjacency: np.ndarray):
        adjacency = np.asarray(adjacency, dtype=np.float64)
        n = adjacency.shape[0]
        if adjacency.shape != (n, n):
            raise ValueError(f"adjacency must be square, got {adjacency.shape}")
        if not np.allclose(adjacency, adjacency.T):
            raise ValueError("adjacency must be symmetric")
        if np.count_nonzero(np.diag(adjacency)):
            raise ValueError("adjacency must have zero diagonal (no self-loops)")
        total = float(np.triu(adjacency, 1).sum())
        # cut(x) = ½ total − ¼ zᵀWz and H_xx = −½ zᵀ(couplings)z + offset,
        # so couplings = −W/2 and offset = −total/2 give H_xx = −cut(x).
        super().__init__(
            alpha=np.zeros(n),
            beta=np.zeros(n),
            couplings=-adjacency / 2.0,
            offset=-total / 2.0,
        )
        self.adjacency = adjacency
        self.total_weight = total

    @classmethod
    def random(
        cls, n: int, seed: int | None | np.random.Generator = None, p: float = 0.5
    ) -> "MaxCut":
        """Paper §5.1 random instance."""
        return cls(bernoulli_adjacency(n, seed=seed, p=p))

    @classmethod
    def from_graph(cls, graph: "nx.Graph", weight: str = "weight") -> "MaxCut":
        """Build from a networkx graph (missing weights default to 1)."""
        nodes = sorted(graph.nodes())
        index = {v: i for i, v in enumerate(nodes)}
        w = np.zeros((len(nodes), len(nodes)))
        for u, v, data in graph.edges(data=True):
            wt = float(data.get(weight, 1.0))
            w[index[u], index[v]] = wt
            w[index[v], index[u]] = wt
        return cls(w)

    def cut_value(self, x: np.ndarray) -> np.ndarray:
        """Cut weight of each configuration in the batch — equals ``-H_xx``."""
        x = self._check_batch(x)
        z = bits_to_spins(x)
        agree = np.einsum("bi,ij,bj->b", z, self.adjacency, z)  # Σ_ij w_ij z_i z_j
        return 0.5 * (self.total_weight - 0.5 * agree)

    def num_edges(self) -> int:
        return int(np.count_nonzero(np.triu(self.adjacency, 1)))
