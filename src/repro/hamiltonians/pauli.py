"""General Pauli-string Hamiltonians (full Definition 2.1 generality).

The paper's Eq. 11 family has only single-site X terms. Many models of
interest (quantum XY/Heisenberg-like couplings, multi-spin drivers in
quantum annealing) need products of Pauli operators. This module supports
Hamiltonians of the form

    H = Σ_t c_t · P_t ,   P_t = ⊗_{i ∈ Z(t)} Z_i ⊗ ⊗_{j ∈ X(t)} X_j

i.e. every term is a product of Z factors and X factors on disjoint site
sets (Y factors are excluded: they introduce complex amplitudes, outside
the paper's real-non-negative setting).

Matrix elements in the computational basis: for row ``x``,

- the X part flips the bits in ``X(t)`` → column ``y = x ⊕ mask(t)``;
- the Z part contributes the sign ``Π_{i ∈ Z(t)} (1 − 2 x_i)``;

so ``H[x, y] += c_t · sign_Z(x)``. Terms with empty X part are diagonal.
The row is computable in ``O(#terms)`` — "efficiently row computable".

Stoquasticity (Perron–Frobenius, §2.1) requires all *off-diagonal* entries
≤ 0. For a pure-X term that is just ``c_t ≤ 0``… with the paper's sign
convention (coefficients enter as given, no global minus) — while mixed
Z·X terms have state-dependent signs and are generally non-stoquastic.
``check_stoquastic()`` verifies the condition exactly by row enumeration of
the sign patterns; VQMC with a non-negative ansatz is only variationally
meaningful when it passes (the constructor warns otherwise unless told not
to).
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass

import numpy as np

from repro.hamiltonians.base import Hamiltonian, bits_to_spins

__all__ = ["PauliTerm", "PauliStringHamiltonian"]


@dataclass(frozen=True)
class PauliTerm:
    """One ``c · Π Z_i Π X_j`` term; ``z_sites`` / ``x_sites`` are disjoint
    tuples of site indices."""

    coefficient: float
    z_sites: tuple[int, ...] = ()
    x_sites: tuple[int, ...] = ()

    def __post_init__(self):
        if set(self.z_sites) & set(self.x_sites):
            raise ValueError(
                f"Z and X factors overlap on sites "
                f"{sorted(set(self.z_sites) & set(self.x_sites))} — that is a "
                "Y operator (complex), which is not supported"
            )
        if len(set(self.z_sites)) != len(self.z_sites):
            raise ValueError(f"duplicate Z sites in {self.z_sites}")
        if len(set(self.x_sites)) != len(self.x_sites):
            raise ValueError(f"duplicate X sites in {self.x_sites}")

    @property
    def is_diagonal(self) -> bool:
        return not self.x_sites

    @staticmethod
    def parse(spec: str, coefficient: float) -> "PauliTerm":
        """Parse ``"Z0 Z3 X5"``-style strings."""
        z, x = [], []
        for token in spec.split():
            kind, idx = token[0].upper(), int(token[1:])
            if kind == "Z":
                z.append(idx)
            elif kind == "X":
                x.append(idx)
            else:
                raise ValueError(f"unsupported Pauli factor {token!r} (Z/X only)")
        return PauliTerm(coefficient, tuple(z), tuple(x))


class PauliStringHamiltonian(Hamiltonian):
    """Sum of Z/X Pauli strings with real coefficients.

    Parameters
    ----------
    n:
        Number of sites.
    terms:
        Iterable of :class:`PauliTerm` (or ``(spec, coefficient)`` string
        pairs accepted by :meth:`PauliTerm.parse`).
    check:
        Verify stoquasticity at construction and warn if violated.
    """

    def __init__(self, n: int, terms, check: bool = True):
        super().__init__(n)
        parsed: list[PauliTerm] = []
        for term in terms:
            if isinstance(term, PauliTerm):
                parsed.append(term)
            else:
                spec, coeff = term
                parsed.append(PauliTerm.parse(spec, coeff))
        for t in parsed:
            sites = t.z_sites + t.x_sites
            if sites and (min(sites) < 0 or max(sites) >= n):
                raise ValueError(f"term {t} references sites outside [0, {n})")
        self.terms = tuple(parsed)
        self.diag_terms = tuple(t for t in self.terms if t.is_diagonal)
        self.offdiag_terms = tuple(t for t in self.terms if not t.is_diagonal)
        if check and not self.is_stoquastic():
            warnings.warn(
                "Hamiltonian is not stoquastic: its ground state may not be "
                "expressible with a non-negative wavefunction, so VQMC with "
                "ψ = sqrt(π) is only an upper-bound heuristic.",
                stacklevel=2,
            )

    @property
    def sparsity(self) -> int:
        return len(self.offdiag_terms)

    def single_flips(self):
        """Structured single-flip rows when every off-diagonal term is a bare
        single-site X (no Z factors — those make amplitudes state-dependent).
        Coefficients of repeated sites merge; returns ``None`` otherwise."""
        from repro.hamiltonians.base import SingleFlipRows

        amplitudes: dict[int, float] = {}
        for term in self.offdiag_terms:
            if term.z_sites or len(term.x_sites) != 1:
                return None
            site = term.x_sites[0]
            amplitudes[site] = amplitudes.get(site, 0.0) + term.coefficient
        sites = np.array(sorted(amplitudes), dtype=np.int64)
        return SingleFlipRows(
            sites=sites,
            amplitudes=np.array([amplitudes[s] for s in sites]),
        )

    # -- matrix elements ------------------------------------------------------------

    @staticmethod
    def _z_sign(term: PauliTerm, x: np.ndarray) -> np.ndarray:
        if not term.z_sites:
            return np.ones(x.shape[0])
        z = bits_to_spins(x[:, list(term.z_sites)])
        return z.prod(axis=1)

    def diagonal(self, x: np.ndarray) -> np.ndarray:
        x = self._check_batch(x)
        out = np.zeros(x.shape[0])
        for term in self.diag_terms:
            out += term.coefficient * self._z_sign(term, x)
        return out

    def connected(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = self._check_batch(x)
        bsz = x.shape[0]
        k = len(self.offdiag_terms)
        if k == 0:
            return np.zeros((bsz, 0, self.n)), np.zeros((bsz, 0))
        nbrs = np.broadcast_to(x[:, None, :], (bsz, k, self.n)).copy()
        amps = np.empty((bsz, k))
        for idx, term in enumerate(self.offdiag_terms):
            cols = list(term.x_sites)
            nbrs[:, idx, cols] = 1.0 - nbrs[:, idx, cols]
            # ⟨y|Z-part X-part|x⟩: the Z factors act on |x⟩ first (they are
            # written to the left of X in our convention H[x,y] = c·sign(x)…
            # either convention gives a symmetric matrix because the Z and X
            # site sets are disjoint, so sign(x) = sign(y).
            amps[:, idx] = term.coefficient * self._z_sign(term, x)
        return nbrs, amps

    # -- stoquasticity --------------------------------------------------------------

    def is_stoquastic(self) -> bool:
        """Exact check that every off-diagonal entry is ≤ 0.

        Entries for the same flip mask add up, so we group off-diagonal
        terms by their X-site set and check the worst case of the summed
        signed coefficients over all Z-sign patterns (2^{#distinct z sites}
        combinations per group — cheap for physical term counts).
        """
        groups: dict[tuple[int, ...], list[PauliTerm]] = {}
        for term in self.offdiag_terms:
            groups.setdefault(tuple(sorted(term.x_sites)), []).append(term)
        for terms in groups.values():
            z_union = sorted({s for t in terms for s in t.z_sites})
            for signs in itertools.product((1.0, -1.0), repeat=len(z_union)):
                sign_of = dict(zip(z_union, signs))
                total = 0.0
                for t in terms:
                    s = 1.0
                    for site in t.z_sites:
                        s *= sign_of[site]
                    total += t.coefficient * s
                if total > 1e-12:
                    return False
        return True

    def __repr__(self) -> str:
        return (
            f"PauliStringHamiltonian(n={self.n}, terms={len(self.terms)}, "
            f"offdiag={len(self.offdiag_terms)})"
        )
