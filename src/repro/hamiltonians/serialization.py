"""Hamiltonian (de)serialisation — publishable problem instances.

The paper's exact random instances are unpublished, which is why absolute
objective values can't be compared directly. This module makes our own
instances shareable: any library Hamiltonian round-trips through a plain
JSON-compatible dict (and therefore a ``.json`` file), so benchmark
configurations can be pinned and re-run bit-exactly elsewhere.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.hamiltonians.ising import TransverseFieldIsing
from repro.hamiltonians.lattice import LatticeTFIM
from repro.hamiltonians.maxcut import MaxCut
from repro.hamiltonians.pauli import PauliStringHamiltonian, PauliTerm
from repro.hamiltonians.qubo import IsingQUBO
from repro.hamiltonians.zzx import ZZXHamiltonian

__all__ = ["to_dict", "from_dict", "save_instance", "load_instance"]

_FORMAT = 1


def to_dict(ham: Hamiltonian) -> dict:
    """Serialise a Hamiltonian to a JSON-compatible dict."""
    if isinstance(ham, MaxCut):
        return {
            "format": _FORMAT,
            "kind": "maxcut",
            "adjacency": ham.adjacency.tolist(),
        }
    if isinstance(ham, LatticeTFIM):
        return {
            "format": _FORMAT,
            "kind": "lattice_tfim",
            "shape": list(ham.shape),
            "coupling": ham.coupling,
            "field": ham.field,
            "periodic": ham.periodic,
        }
    if isinstance(ham, IsingQUBO):
        return {
            "format": _FORMAT,
            "kind": "qubo",
            "Q": ham.Q.tolist(),
            "q": ham.q.tolist(),
            "const": ham.const,
        }
    if isinstance(ham, PauliStringHamiltonian):
        return {
            "format": _FORMAT,
            "kind": "pauli",
            "n": ham.n,
            "terms": [
                {
                    "coefficient": t.coefficient,
                    "z_sites": list(t.z_sites),
                    "x_sites": list(t.x_sites),
                }
                for t in ham.terms
            ],
        }
    if isinstance(ham, ZZXHamiltonian):  # TIM and the generic family
        return {
            "format": _FORMAT,
            "kind": "tim" if isinstance(ham, TransverseFieldIsing) else "zzx",
            "alpha": ham.alpha.tolist(),
            "beta": ham.beta.tolist(),
            "couplings": ham.couplings.tolist(),
            "offset": ham.offset,
        }
    raise TypeError(f"cannot serialise {type(ham).__name__}")


def from_dict(payload: dict) -> Hamiltonian:
    """Inverse of :func:`to_dict`."""
    if payload.get("format") != _FORMAT:
        raise ValueError(f"unsupported instance format {payload.get('format')!r}")
    kind = payload["kind"]
    if kind == "maxcut":
        return MaxCut(np.asarray(payload["adjacency"], dtype=np.float64))
    if kind == "lattice_tfim":
        return LatticeTFIM(
            tuple(payload["shape"]),
            coupling=payload["coupling"],
            field=payload["field"],
            periodic=payload["periodic"],
        )
    if kind == "qubo":
        return IsingQUBO(
            Q=np.asarray(payload["Q"], dtype=np.float64),
            q=np.asarray(payload["q"], dtype=np.float64),
            const=payload["const"],
        )
    if kind == "pauli":
        terms = [
            PauliTerm(
                t["coefficient"],
                tuple(t["z_sites"]),
                tuple(t["x_sites"]),
            )
            for t in payload["terms"]
        ]
        return PauliStringHamiltonian(payload["n"], terms, check=False)
    if kind in ("tim", "zzx"):
        cls = TransverseFieldIsing if kind == "tim" else ZZXHamiltonian
        kwargs = dict(
            alpha=np.asarray(payload["alpha"], dtype=np.float64),
            beta=np.asarray(payload["beta"], dtype=np.float64),
            couplings=np.asarray(payload["couplings"], dtype=np.float64),
        )
        if kind == "zzx":
            kwargs["offset"] = payload["offset"]
        elif payload.get("offset", 0.0) != 0.0:  # repro-lint: disable=ag-float-eq -- stored sentinel round-trips JSON exactly; any nonzero offset is an error
            raise ValueError("TIM instances must have zero offset")
        return cls(**kwargs)
    raise ValueError(f"unknown instance kind {kind!r}")


def save_instance(ham: Hamiltonian, path: str | Path) -> None:
    """Write an instance to a JSON file."""
    Path(path).write_text(json.dumps(to_dict(ham)), encoding="utf-8")


def load_instance(path: str | Path) -> Hamiltonian:
    """Read an instance from a JSON file."""
    return from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
