"""Sparse-row Hamiltonians (Definition 2.1 of the paper).

A Hamiltonian here is a real-symmetric ``2^n × 2^n`` matrix that is never
materialised: rows are produced on demand as (diagonal entry, list of
connected columns + amplitudes). This is exactly the paper's "row-s sparse
and efficiently row computable" interface, and is all the local-energy
estimator (Eq. 3) needs.
"""

from repro.hamiltonians.base import Hamiltonian, bits_to_spins, spins_to_bits
from repro.hamiltonians.zzx import ZZXHamiltonian
from repro.hamiltonians.ising import TransverseFieldIsing
from repro.hamiltonians.maxcut import MaxCut, bernoulli_adjacency
from repro.hamiltonians.qubo import IsingQUBO
from repro.hamiltonians.lattice import LatticeTFIM, tfim_chain_exact_energy
from repro.hamiltonians.pauli import PauliStringHamiltonian, PauliTerm
from repro.hamiltonians.problems import (
    sherrington_kirkpatrick,
    number_partitioning,
    max_independent_set,
    vertex_cover,
)
from repro.hamiltonians.serialization import (
    from_dict,
    load_instance,
    save_instance,
    to_dict,
)

__all__ = [
    "LatticeTFIM",
    "tfim_chain_exact_energy",
    "PauliStringHamiltonian",
    "PauliTerm",
    "sherrington_kirkpatrick",
    "number_partitioning",
    "max_independent_set",
    "vertex_cover",
    "to_dict",
    "from_dict",
    "save_instance",
    "load_instance",
    "Hamiltonian",
    "ZZXHamiltonian",
    "TransverseFieldIsing",
    "MaxCut",
    "IsingQUBO",
    "bernoulli_adjacency",
    "bits_to_spins",
    "spins_to_bits",
]
