"""Geometrically-local transverse-field Ising models on lattices.

The paper deliberately studies *non*-geometrically-local Hamiltonians
(dense random couplings) where MCMC proposals have no structure to exploit.
This module adds the complementary, classic setting — TFIM on a chain or a
square lattice with uniform couplings:

    H = -J Σ_<ij> Z_i Z_j - Γ Σ_i X_i

which is the system of Carleo & Troyer (2017) that the paper's §3 builds
on. The 1-D chain has an exact solution by Jordan–Wigner transformation to
free fermions, giving a parameter-free ground-truth energy at *any* size:

    E₀ = -Σ_k ε(k)/…  with ε(k) = 2 sqrt(J² + Γ² - 2 J Γ cos k)

(open or periodic chains; we implement the standard periodic-chain formula
with the correct parity sector). This provides a large-n validation target
the dense disordered models cannot.
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.zzx import ZZXHamiltonian

__all__ = ["LatticeTFIM", "tfim_chain_exact_energy"]


class LatticeTFIM(ZZXHamiltonian):
    """Uniform TFIM on a chain or square lattice.

    Parameters
    ----------
    shape:
        ``(L,)`` for a chain of L sites, ``(Lx, Ly)`` for a square lattice.
    coupling:
        Ising coupling J (> 0 ferromagnetic).
    field:
        Transverse field Γ ≥ 0.
    periodic:
        Wrap-around bonds.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        coupling: float = 1.0,
        field: float = 1.0,
        periodic: bool = True,
    ):
        if field < 0:
            raise ValueError(
                f"transverse field must be >= 0 (Perron-Frobenius), got {field}"
            )
        if len(shape) == 1:
            n = shape[0]
            bonds = self._chain_bonds(n, periodic)
        elif len(shape) == 2:
            n = shape[0] * shape[1]
            bonds = self._grid_bonds(shape[0], shape[1], periodic)
        else:
            raise ValueError(f"only 1-D and 2-D lattices supported, got {shape}")

        couplings = np.zeros((n, n))
        for i, j in bonds:
            couplings[i, j] += coupling
            couplings[j, i] += coupling
        super().__init__(
            alpha=np.full(n, float(field)),
            beta=np.zeros(n),
            couplings=couplings,
        )
        self.shape = tuple(shape)
        self.coupling = float(coupling)
        self.field = float(field)
        self.periodic = periodic
        self.bonds = bonds

    @staticmethod
    def _chain_bonds(n: int, periodic: bool) -> list[tuple[int, int]]:
        if n < 2:
            raise ValueError(f"chain needs at least 2 sites, got {n}")
        bonds = [(i, i + 1) for i in range(n - 1)]
        if periodic and n > 2:
            bonds.append((0, n - 1))
        return bonds

    @staticmethod
    def _grid_bonds(lx: int, ly: int, periodic: bool) -> list[tuple[int, int]]:
        if lx < 2 or ly < 2:
            raise ValueError(f"grid needs at least 2x2 sites, got {lx}x{ly}")

        def site(x: int, y: int) -> int:
            return x * ly + y

        bonds = []
        for x in range(lx):
            for y in range(ly):
                right = (x + 1, y)
                up = (x, y + 1)
                if right[0] < lx:
                    bonds.append((site(x, y), site(*right)))
                elif periodic and lx > 2:
                    bonds.append((site(0, y), site(x, y)))
                if up[1] < ly:
                    bonds.append((site(x, y), site(*up)))
                elif periodic and ly > 2:
                    bonds.append((site(x, 0), site(x, y)))
        return [(min(a, b), max(a, b)) for a, b in bonds]


def tfim_chain_exact_energy(
    n: int, coupling: float = 1.0, field: float = 1.0
) -> float:
    """Exact ground energy of the periodic 1-D TFIM via Jordan–Wigner.

    ``H = -J Σ Z_i Z_{i+1} - Γ Σ X_i`` maps to free fermions with dispersion
    ``ε(k) = 2 sqrt(J² + Γ² − 2JΓ cos k)``. The fermion-parity constraint
    selects antiperiodic momenta ``k = π(2m+1)/n`` (even sector), whose
    Bogoliubov vacuum is the true ground state for all (J, Γ):

        E₀ = −½ Σ_{m=0}^{n-1} ε(k_m) .

    Validated against exact diagonalisation to machine precision for
    n ≤ 14 in the test suite.
    """
    if n < 2:
        raise ValueError(f"need at least 2 sites, got {n}")
    m = np.arange(n)
    k = np.pi * (2.0 * m + 1.0) / n  # antiperiodic momenta
    eps = 2.0 * np.sqrt(
        coupling**2 + field**2 - 2.0 * coupling * field * np.cos(k)
    )
    return float(-0.5 * eps.sum())
