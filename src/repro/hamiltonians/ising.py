"""Disordered transverse-field Ising model (TIM) — paper §5.1.

"The second example is a disordered quantum system referred to as transverse
field Ising model, whose Hamiltonian is of the form (13) with
β_i, β_ij ~ U(-1,1) and α_i ~ U(0,1) sampled once and fixed."

Note this is *non-geometrically-local*: every pair of sites is coupled, so
there is no lattice structure for an MCMC proposal to exploit — which is
precisely the regime where the paper argues MCMC struggles.
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.zzx import ZZXHamiltonian
from repro.utils.rng import as_generator

__all__ = ["TransverseFieldIsing"]


class TransverseFieldIsing(ZZXHamiltonian):
    """Random dense TIM instance with the paper's disorder distributions.

    Inherits the structured ``single_flips()`` row description from
    :class:`ZZXHamiltonian`: with α_i ~ U(0,1) every site carries a
    transverse field (almost surely), so each row has exactly ``n``
    single-flip neighbours — the worst case the fused delta-evaluation
    kernel in :mod:`repro.perf.flips` is built for.
    """

    def __init__(
        self,
        alpha: np.ndarray,
        beta: np.ndarray,
        couplings: np.ndarray,
    ):
        super().__init__(alpha, beta, couplings, offset=0.0)

    @classmethod
    def random(
        cls, n: int, seed: int | None | np.random.Generator = None
    ) -> "TransverseFieldIsing":
        """Draw an instance: α_i ~ U(0,1), β_i ~ U(-1,1), β_ij ~ U(-1,1).

        The couplings are sampled on the strict upper triangle and
        symmetrised, so each unordered pair has a single U(-1,1) coefficient.
        """
        rng = as_generator(seed)
        alpha = rng.uniform(0.0, 1.0, size=n)
        beta = rng.uniform(-1.0, 1.0, size=n)
        upper = np.triu(rng.uniform(-1.0, 1.0, size=(n, n)), 1)
        couplings = upper + upper.T
        return cls(alpha, beta, couplings)
