"""The paper's Hamiltonian family (Eq. 11):

    H = -Σ_i (α_i X_i + β_i Z_i) - Σ_{i<j} β_ij Z_i Z_j  (+ offset·I)

In the computational basis (Eq. 13) this gives, with spins ``z = 1 - 2x``:

- diagonal:      ``H_xx = -Σ_i β_i z_i - Σ_{i<j} β_ij z_i z_j + offset``
- off-diagonal:  flipping bit ``i`` contributes amplitude ``-α_i``.

The sparsity parameter is ``s = #{i : α_i ≠ 0} ≤ n``, satisfying
Definition 2.1. The scalar ``offset`` is not in the paper's Eq. 11 but lets
Max-Cut be expressed so that ``-H_xx`` equals the cut value exactly.
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.base import Hamiltonian, SingleFlipRows, bits_to_spins

__all__ = ["ZZXHamiltonian"]


class ZZXHamiltonian(Hamiltonian):
    """Hamiltonian of the form Eq. 11 with arbitrary coefficient arrays.

    Parameters
    ----------
    alpha:
        Transverse-field coefficients ``α_i ≥ 0`` (off-diagonal bit flips).
        The non-negativity requirement is the paper's Perron–Frobenius
        condition ensuring a sign-free ground state.
    beta:
        Longitudinal fields ``β_i``.
    couplings:
        Symmetric ``(n, n)`` matrix with zero diagonal; entry ``[i, j]``
        (``i < j``) is ``β_ij``. A full symmetric matrix may be passed — the
        pair sum counts each unordered pair once.
    offset:
        Constant shift ``offset · I``.
    """

    def __init__(
        self,
        alpha: np.ndarray,
        beta: np.ndarray,
        couplings: np.ndarray,
        offset: float = 0.0,
    ):
        alpha = np.asarray(alpha, dtype=np.float64)
        beta = np.asarray(beta, dtype=np.float64)
        couplings = np.asarray(couplings, dtype=np.float64)
        n = alpha.shape[0]
        super().__init__(n)
        if beta.shape != (n,):
            raise ValueError(f"beta shape {beta.shape} != ({n},)")
        if couplings.shape != (n, n):
            raise ValueError(f"couplings shape {couplings.shape} != ({n}, {n})")
        if not np.allclose(couplings, couplings.T):
            raise ValueError("couplings matrix must be symmetric")
        if np.count_nonzero(np.diag(couplings)):
            raise ValueError("couplings matrix must have zero diagonal")
        if np.any(alpha < 0.0):
            raise ValueError(
                "alpha must be non-negative (Perron-Frobenius condition, paper §2.4)"
            )
        self.alpha = alpha
        self.beta = beta
        self.couplings = couplings
        self.offset = float(offset)
        # Only sites with a non-zero transverse field generate off-diagonal
        # entries; Max-Cut (alpha = 0) is purely diagonal.
        self._flip_sites = np.nonzero(alpha != 0.0)[0]

    @property
    def sparsity(self) -> int:
        return int(self._flip_sites.size)

    def diagonal(self, x: np.ndarray) -> np.ndarray:
        x = self._check_batch(x)
        z = bits_to_spins(x)
        field = z @ self.beta
        # Each unordered pair counted once: ½ zᵀ C z with C symmetric, 0 diag.
        pair = 0.5 * np.einsum("bi,ij,bj->b", z, self.couplings, z)
        return -field - pair + self.offset

    def single_flips(self) -> SingleFlipRows:
        """Every X_i term flips bit ``i`` with constant amplitude ``-α_i`` —
        the structured form the fused local-energy kernel consumes."""
        sites = self._flip_sites
        return SingleFlipRows(sites=sites, amplitudes=-self.alpha[sites])

    def connected(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = self._check_batch(x)
        bsz = x.shape[0]
        flips = self.single_flips()
        k = flips.k
        if k == 0:
            return np.zeros((bsz, 0, self.n)), np.zeros((bsz, 0))
        sites = flips.sites
        nbrs = np.broadcast_to(x[:, None, :], (bsz, k, self.n)).copy()
        rows = np.arange(k)
        nbrs[:, rows, sites] = 1.0 - nbrs[:, rows, sites]
        amps = np.broadcast_to(flips.amplitudes, (bsz, k)).copy()
        return nbrs, amps

    # -- convenience --------------------------------------------------------------

    @property
    def num_terms(self) -> int:
        """Number of non-zero Pauli terms (for cost accounting)."""
        return (
            int(np.count_nonzero(self.alpha))
            + int(np.count_nonzero(self.beta))
            + int(np.count_nonzero(np.triu(self.couplings, 1)))
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, sparsity={self.sparsity}, "
            f"terms={self.num_terms})"
        )
