"""Classic combinatorial-optimisation instances as Hamiltonians.

The paper frames VQMC as a general QUBO heuristic (§2.4); this module
provides the standard benchmark families beyond Max-Cut, each as a ready
:class:`repro.hamiltonians.IsingQUBO` (diagonal) instance so the full VQMC
stack — and the exact brute-force validators — applies unchanged.
"""

from __future__ import annotations

import numpy as np

import networkx as nx

from repro.hamiltonians.qubo import IsingQUBO
from repro.hamiltonians.zzx import ZZXHamiltonian
from repro.utils.rng import as_generator

__all__ = [
    "sherrington_kirkpatrick",
    "number_partitioning",
    "max_independent_set",
    "vertex_cover",
]


def sherrington_kirkpatrick(
    n: int, seed: int | None | np.random.Generator = None
) -> ZZXHamiltonian:
    """Sherrington–Kirkpatrick spin glass: ``H = -(1/√n) Σ_{i<j} J_ij Z_i Z_j``
    with ``J_ij ~ N(0, 1)``.

    The canonical hard mean-field glass; ground energy per spin approaches
    the Parisi constant ≈ −0.7632 as n → ∞.
    """
    rng = as_generator(seed)
    upper = np.triu(rng.normal(size=(n, n)), 1)
    couplings = (upper + upper.T) / np.sqrt(n)
    return ZZXHamiltonian(
        alpha=np.zeros(n), beta=np.zeros(n), couplings=couplings
    )


def number_partitioning(
    weights: np.ndarray,
) -> IsingQUBO:
    """Partition ``weights`` into two sets with minimal difference.

    Objective: ``(Σ_i w_i z_i)² = (Σ w_i (1-2x_i))²`` — zero iff a perfect
    partition exists. Encoded as the QUBO obtained by expanding the square;
    the minimum of ``H`` equals the squared residual of the best partition.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size < 2:
        raise ValueError("need a 1-D array of at least two weights")
    total = w.sum()
    # (total - 2 Σ w_i x_i)² = 4 xᵀ(wwᵀ)x − 4·total·wᵀx + total².
    return IsingQUBO(
        Q=4.0 * np.outer(w, w),
        q=-4.0 * total * w,
        const=total**2,
    )


def max_independent_set(
    graph: "nx.Graph", penalty: float = 2.0
) -> IsingQUBO:
    """Maximum independent set via the penalised QUBO
    ``min −Σ_i x_i + penalty · Σ_{(i,j)∈E} x_i x_j``.

    For ``penalty > 1`` every optimal QUBO solution is a valid independent
    set, and −(optimal value) is the MIS size.
    """
    if penalty <= 1.0:
        raise ValueError(f"penalty must exceed 1 for exactness, got {penalty}")
    nodes = sorted(graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)
    if n < 1:
        raise ValueError("graph has no nodes")
    Q = np.zeros((n, n))
    for u, v in graph.edges():
        i, j = index[u], index[v]
        Q[i, j] += penalty / 2.0
        Q[j, i] += penalty / 2.0
    return IsingQUBO(Q=Q, q=-np.ones(n))


def vertex_cover(
    graph: "nx.Graph", penalty: float = 2.0
) -> IsingQUBO:
    """Minimum vertex cover: ``min Σ_i x_i + penalty · Σ_{(i,j)∈E}
    (1-x_i)(1-x_j)`` — the penalty punishes uncovered edges.

    For ``penalty > 1`` the optimum equals the true cover size.
    """
    if penalty <= 1.0:
        raise ValueError(f"penalty must exceed 1 for exactness, got {penalty}")
    nodes = sorted(graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)
    if n < 1:
        raise ValueError("graph has no nodes")
    Q = np.zeros((n, n))
    q = np.ones(n)
    const = 0.0
    for u, v in graph.edges():
        i, j = index[u], index[v]
        # penalty(1 - x_i - x_j + x_i x_j)
        const += penalty
        q[i] -= penalty
        q[j] -= penalty
        Q[i, j] += penalty / 2.0
        Q[j, i] += penalty / 2.0
    return IsingQUBO(Q=Q, q=q, const=const)
