"""General quadratic unconstrained binary optimisation (QUBO) as a Hamiltonian.

A QUBO minimises ``f(x) = xᵀ Q x + qᵀ x + c`` over ``x ∈ {0,1}^n``. Any such
objective is an affine function of spin variables, hence expressible in the
diagonal part of the paper's Eq. 11 family. This class performs that
translation, so the full VQMC machinery (and the exact-diagonalisation
validators) applies to arbitrary QUBOs — the "combinatorial optimisation"
generalisation the paper's abstract claims.

Translation (z = 1 - 2x ⇔ x = (1-z)/2, with S = Q + Qᵀ symmetrised):

    xᵀQx + qᵀx + c
      = Σ_{i<j} S_ij x_i x_j + Σ_i (Q_ii + q_i) x_i + c
      = Σ_{i<j} S_ij (1-z_i)(1-z_j)/4 + Σ_i (Q_ii+q_i)(1-z_i)/2 + c

which matches ``H_xx = -Σ β_i z_i - Σ_{i<j} β_ij z_i z_j + offset`` with

    β_ij  = -S_ij / 4
    β_i   = (Q_ii + q_i)/2 + Σ_{j≠i} S_ij / 4
    offset = c + Σ_i (Q_ii + q_i)/2 + Σ_{i<j} S_ij / 4 .
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.zzx import ZZXHamiltonian

__all__ = ["IsingQUBO"]


class IsingQUBO(ZZXHamiltonian):
    """Diagonal Hamiltonian with ``H_xx = f(x)`` for a QUBO objective ``f``.

    The VQMC ground-state search then *minimises* ``f``.
    """

    def __init__(
        self,
        Q: np.ndarray,
        q: np.ndarray | None = None,
        const: float = 0.0,
    ):
        Q = np.asarray(Q, dtype=np.float64)
        n = Q.shape[0]
        if Q.shape != (n, n):
            raise ValueError(f"Q must be square, got {Q.shape}")
        q = np.zeros(n) if q is None else np.asarray(q, dtype=np.float64)
        if q.shape != (n,):
            raise ValueError(f"q shape {q.shape} != ({n},)")

        s = Q + Q.T
        np.fill_diagonal(s, 0.0)  # S_ij for i != j; diagonal handled via linear term
        lin = np.diag(Q) + q

        beta_ij = -s / 4.0
        beta = lin / 2.0 + s.sum(axis=1) / 4.0
        offset = const + lin.sum() / 2.0 + np.triu(s, 1).sum() / 4.0
        super().__init__(
            alpha=np.zeros(n), beta=beta, couplings=beta_ij, offset=offset
        )
        self.Q = Q
        self.q = q
        self.const = float(const)

    def objective(self, x: np.ndarray) -> np.ndarray:
        """Direct evaluation of ``xᵀQx + qᵀx + c`` (sanity check vs. diagonal)."""
        x = self._check_batch(x)
        return np.einsum("bi,ij,bj->b", x, self.Q, x) + x @ self.q + self.const
