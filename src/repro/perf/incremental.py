"""Incremental ancestral sampling for MADE — the O(n·h) fast path.

The naive sampler (``MADE.sample(method='naive')``, paper Algorithm 1) runs
``n`` *full* forward passes per batch: at step ``i`` it computes all ``n``
conditionals but consumes only column ``i`` — O(n²·h) work for O(n·h)
information. The autoregressive masks make almost all of that work
redundant:

- setting bit ``i`` changes the first-layer pre-activations by exactly the
  masked weight column ``±W1[:, i]`` (a rank-1 column update, and only for
  the batch rows whose sampled bit is 1 — a zero bit contributes nothing);
- at step ``i`` only *logit row* ``i`` of the output layer is needed, an
  O(h) dot product instead of the full O(n·h) output matmul.

This module maintains cached per-layer pre-activations for the whole batch
and advances them site by site. For the paper's single-hidden-layer
architecture the per-batch cost drops from ``n`` full passes (O(n²·h)
multiply-adds per row) to O(n·h) total — asymptotically *less than two*
full forward passes. Deep MADEs are supported exactly by propagating the
post-ReLU deltas through the hidden stack (the n-dependent input and
output matmuls are still skipped; the hidden-to-hidden work is shared with
the naive path).

The kernel draws from the RNG in exactly the same order and with the same
comparison (``u < p``) as the naive sampler, so the produced 0/1 samples
are bit-identical to ``MADE.sample(method='naive')`` under the same stream
(the conditionals themselves may differ by a few ULP because the
accumulation order differs from the BLAS matmul; a sample bit could only
flip if a uniform draw landed inside that ~1e-15 window).

Cost accounting: the kernel counts the multiply-accumulate operations it
actually performs and reports them in units of naive batched forward
passes (``forward_pass_equivalents``), which is what
:class:`repro.samplers.base.SamplerStats` surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor.tensor import no_grad

__all__ = [
    "IncrementalSampleResult",
    "supports_incremental",
    "incremental_sample",
    "stable_sigmoid",
]


def stable_sigmoid(z: np.ndarray) -> np.ndarray:
    """Sign-split sigmoid on raw arrays — same formula as ``Tensor.sigmoid``."""
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ex = np.exp(z[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


@dataclass(frozen=True)
class IncrementalSampleResult:
    """Samples plus the operation count the kernel actually paid.

    ``macs`` counts multiply-accumulates (column adds counted as one MAC per
    element); ``full_pass_macs`` is the dense cost of ONE naive batched
    forward pass, so ``forward_pass_equivalents`` is directly comparable to
    the naive sampler's pass count of ``n``.
    """

    samples: np.ndarray
    macs: int
    full_pass_macs: int

    @property
    def forward_pass_equivalents(self) -> float:
        return self.macs / max(1, self.full_pass_macs)


def supports_incremental(model) -> bool:
    """True iff ``model`` is a MADE whose layer stack the kernel understands
    (masked linear layers with biases, ReLU hidden activations)."""
    from repro.models.made import MADE
    from repro.nn.linear import MaskedLinear

    if not isinstance(model, MADE):
        return False
    layers = getattr(model, "_layers", None)
    if not layers:
        return False
    return all(isinstance(l, MaskedLinear) and l.bias is not None for l in layers)


def incremental_sample(
    model,
    batch_size: int,
    rng: np.random.Generator,
    clamp: np.ndarray | None = None,
) -> IncrementalSampleResult:
    """Draw exact i.i.d. samples from a MADE via incremental state updates.

    Semantics (including ``clamp`` handling and RNG consumption order) match
    ``MADE.sample`` exactly; see :mod:`repro.perf.incremental` for the
    complexity argument.
    """
    if not supports_incremental(model):
        raise TypeError(
            f"incremental sampling requires a MADE-style layer stack; "
            f"got {type(model).__name__}"
        )
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    n = model.n
    clamp = _validate_clamp(clamp, n)

    with no_grad():
        layers = model.fc_layers
        effs = [layer.effective_weight() for layer in layers]
        biases = [layer.bias.data for layer in layers]
    hidden_effs, out_eff = effs[:-1], effs[-1]
    hidden_biases, out_bias = biases[:-1], biases[-1]
    n_hidden = len(hidden_effs)
    widths = [w.shape[0] for w in hidden_effs]

    macs = 0
    # Dense MAC count of one naive batched forward pass (`MADE.logits`).
    dims = [n, *widths, n]
    full_pass_macs = batch_size * sum(a * b for a, b in zip(dims[:-1], dims[1:]))

    # All rows start from the all-zero prefix, so the initial state is a
    # single-row forward pass, tiled across the batch.
    pre_row = hidden_biases[0].copy()
    pre_acts = [np.repeat(pre_row[None, :], batch_size, axis=0)]
    hiddens = [np.maximum(pre_acts[0], 0.0)]
    for l in range(1, n_hidden):
        pre_row = hidden_effs[l] @ np.maximum(pre_row, 0.0) + hidden_biases[l]
        macs += widths[l - 1] * widths[l]
        pre_acts.append(np.repeat(pre_row[None, :], batch_size, axis=0))
        hiddens.append(np.maximum(pre_acts[-1], 0.0))

    x = np.zeros((batch_size, n))
    for i in range(n):
        if clamp is not None and not np.isnan(clamp[i]):
            x[:, i] = clamp[i]
        else:
            # Only logit row i — an O(h) dot per batch row.
            logit = hiddens[-1] @ out_eff[i] + out_bias[i]
            macs += batch_size * widths[-1]
            p = stable_sigmoid(logit)
            x[:, i] = (rng.random(batch_size) < p).astype(np.float64)
        if i == n - 1:
            break
        # Fold bit i into the cached state: rows with bit 0 are unchanged.
        rows = np.nonzero(x[:, i] == 1.0)[0]
        if rows.size == 0:
            continue
        pre_acts[0][rows] += effs[0][:, i]
        macs += rows.size * widths[0]
        new_h = np.maximum(pre_acts[0][rows], 0.0)
        delta = new_h - hiddens[0][rows]
        hiddens[0][rows] = new_h
        for l in range(1, n_hidden):
            pre_acts[l][rows] += delta @ hidden_effs[l].T
            macs += rows.size * widths[l - 1] * widths[l]
            new_h = np.maximum(pre_acts[l][rows], 0.0)
            delta = new_h - hiddens[l][rows]
            hiddens[l][rows] = new_h
    return IncrementalSampleResult(
        samples=x, macs=macs, full_pass_macs=full_pass_macs
    )


def _validate_clamp(clamp: np.ndarray | None, n: int) -> np.ndarray | None:
    if clamp is None:
        return None
    clamp = np.asarray(clamp, dtype=np.float64)
    if clamp.shape != (n,):
        raise ValueError(f"clamp must have shape ({n},), got {clamp.shape}")
    fixed = ~np.isnan(clamp)
    if not np.all(np.isin(clamp[fixed], (0.0, 1.0))):
        raise ValueError("clamped values must be 0 or 1")
    return clamp
