"""Fast-path kernels exploiting autoregressive and single-flip structure.

This package holds the performance layer the rest of the stack opts into:

- :mod:`repro.perf.incremental` — O(n·h) ancestral sampling for MADE via
  cached pre-activations and masked rank-1 column updates (vs the naive
  O(n²·h) of ``n`` full forward passes);
- :mod:`repro.perf.flips` — fused single-flip ``log ψ`` delta kernel that
  evaluates all connected-row amplitude ratios from one cached forward
  pass (used by ``local_energies`` for Hamiltonians exposing a structured
  flip list).

Everything here is exact (same math, same clipping as the naive paths) —
see ``docs/performance.md`` for the complexity table and the dispatch
rules.
"""

from repro.perf.flips import (
    MADEForwardCache,
    flip_log_ratios,
    forward_cache,
    supports_flip_kernel,
)
from repro.perf.incremental import (
    IncrementalSampleResult,
    incremental_sample,
    supports_incremental,
)

__all__ = [
    "IncrementalSampleResult",
    "MADEForwardCache",
    "flip_log_ratios",
    "forward_cache",
    "incremental_sample",
    "supports_flip_kernel",
    "supports_incremental",
]
