"""Fused single-flip log-ψ kernel for MADE — delta evaluation of amplitude ratios.

``local_energies`` needs the ``K`` ratios ``ψ(x^{(s)})/ψ(x)`` per sample,
where ``x^{(s)}`` flips one bit ``s``. The dense path materialises a
``(B, K, n)`` neighbour array and runs a from-scratch forward pass over all
``B·K`` rows — O(B·K·n·h) for the paper's architecture. But a single bit
flip barely perturbs a MADE:

- logits ``z_i`` for ``i ≤ s`` are untouched (the autoregressive masks make
  output ``i`` a function of inputs ``< i`` only), so the Bernoulli terms
  of the sites ``i < s`` cancel from the log-ratio, and site ``s`` itself
  only swaps its target bit under an unchanged logit;
- the first hidden layer moves by the masked weight column ``±W1[:, s]``
  (rank-1), and only output rows ``i > s`` need recomputing.

So the kernel runs ONE cached forward pass on the batch and then, per flip
site ``s``, applies the column update, re-activates, propagates post-ReLU
deltas through any deeper hidden layers, and evaluates only the logit tail
``z_{>s}`` — skipping the O(n·h) input matmul entirely and halving the
output matmul on average. The result is mathematically identical to the
dense path (same log-ratio, same clipping), to floating-point roundoff.

The cached pass also yields ``log ψ(x)`` for free, which
:func:`repro.core.energy.local_energies` returns to the training loop so
amplitudes are never evaluated twice per step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import validate_configurations
from repro.perf.incremental import supports_incremental
from repro.tensor.tensor import no_grad

__all__ = [
    "MADEForwardCache",
    "supports_flip_kernel",
    "forward_cache",
    "flip_log_ratios",
    "log_bernoulli",
]


def log_bernoulli(targets: np.ndarray, logits: np.ndarray) -> np.ndarray:
    """Elementwise ``log Bern(t; σ(z)) = t·logσ(z) + (1-t)·logσ(-z)``, stable."""
    log_p = np.minimum(logits, 0.0) - np.log1p(np.exp(-np.abs(logits)))
    log_q = log_p - logits  # log σ(-z) = log σ(z) - z, exactly
    return targets * log_p + (1.0 - targets) * log_q


@dataclass(frozen=True)
class MADEForwardCache:
    """Everything one forward pass knows, kept for delta evaluation.

    ``site_terms[b, i]`` is the per-site Bernoulli log-likelihood
    ``log Bern(x_i; σ(z_i))``, so ``log_psi = ½ · site_terms.sum(axis=1)``.
    """

    x: np.ndarray  # (B, n) configurations
    pre_acts: tuple[np.ndarray, ...]  # per hidden layer, (B, h_l)
    hiddens: tuple[np.ndarray, ...]  # post-ReLU activations, (B, h_l)
    logits: np.ndarray  # (B, n)
    site_terms: np.ndarray  # (B, n)
    log_psi: np.ndarray  # (B,)


def supports_flip_kernel(model) -> bool:
    """The flip kernel understands exactly the layer stacks the incremental
    sampler does (masked linear + ReLU, biases present)."""
    return supports_incremental(model)


def forward_cache(model, x: np.ndarray) -> MADEForwardCache:
    """One batched forward pass of a MADE, retaining every intermediate."""
    if not supports_flip_kernel(model):
        raise TypeError(
            f"flip kernel requires a MADE-style layer stack; got {type(model).__name__}"
        )
    x = validate_configurations(x, model.n)
    with no_grad():
        layers = model.fc_layers
        effs = [layer.effective_weight() for layer in layers]
        biases = [layer.bias.data for layer in layers]
    pre_acts: list[np.ndarray] = []
    hiddens: list[np.ndarray] = []
    cur = x
    for eff, bias in zip(effs[:-1], biases[:-1]):
        a = cur @ eff.T + bias
        pre_acts.append(a)
        cur = np.maximum(a, 0.0)
        hiddens.append(cur)
    logits = cur @ effs[-1].T + biases[-1]
    terms = log_bernoulli(x, logits)
    return MADEForwardCache(
        x=x,
        pre_acts=tuple(pre_acts),
        hiddens=tuple(hiddens),
        logits=logits,
        site_terms=terms,
        log_psi=0.5 * terms.sum(axis=1),
    )


def flip_log_ratios(
    model,
    sites: np.ndarray,
    x: np.ndarray | None = None,
    cache: MADEForwardCache | None = None,
) -> tuple[np.ndarray, MADEForwardCache]:
    """``log ψ(x^{(s)}) − log ψ(x)`` for every flip site — shape (B, K).

    Parameters
    ----------
    sites:
        (K,) integer site indices; ``x^{(s)}`` flips bit ``sites[k]``.
    x, cache:
        Pass either the configurations (a cache is built) or a prebuilt
        :func:`forward_cache`. Passing both uses the cache.

    Returns the ratio matrix and the cache (so callers reuse ``log_psi``).
    """
    if cache is None:
        if x is None:
            raise ValueError("need x or a forward cache")
        cache = forward_cache(model, x)
    x = cache.x
    sites = np.asarray(sites, dtype=np.int64)
    if sites.ndim != 1:
        raise ValueError(f"sites must be 1-D, got shape {sites.shape}")
    n = model.n
    if sites.size and (sites.min() < 0 or sites.max() >= n):
        raise ValueError(f"flip sites must lie in [0, {n})")

    bsz = x.shape[0]
    deltas = np.empty((bsz, sites.size))
    if sites.size == 0:
        return deltas, cache

    with no_grad():
        layers = model.fc_layers
        effs = [layer.effective_weight() for layer in layers]
        biases = [layer.bias.data for layer in layers]
    hidden_effs, out_eff = effs[:-1], effs[-1]
    out_bias = biases[-1]

    # Suffix sums of the cached per-site terms: tail_terms[:, s] = Σ_{i>s} t_i.
    tail = np.concatenate(
        [np.cumsum(cache.site_terms[:, ::-1], axis=1)[:, ::-1][:, 1:],
         np.zeros((bsz, 1))],
        axis=1,
    )

    for k, s in enumerate(sites):
        s = int(s)
        # Rank-1 column update: bit 0 → +W1[:, s], bit 1 → −W1[:, s].
        sign = 1.0 - 2.0 * x[:, s]
        h = np.maximum(cache.pre_acts[0] + sign[:, None] * effs[0][:, s], 0.0)
        delta_h = h - cache.hiddens[0]
        for l in range(1, len(hidden_effs)):
            h = np.maximum(cache.pre_acts[l] + delta_h @ hidden_effs[l].T, 0.0)
            delta_h = h - cache.hiddens[l]
        # Site s keeps its logit (depends on inputs < s only); sites > s get
        # recomputed logits; sites < s cancel exactly.
        term_s = log_bernoulli(1.0 - x[:, s], cache.logits[:, s])
        if s + 1 < n:
            z_tail = h @ out_eff[s + 1 :].T + out_bias[s + 1 :]
            new_tail = log_bernoulli(x[:, s + 1 :], z_tail).sum(axis=1)
        else:
            new_tail = np.zeros(bsz)
        deltas[:, k] = 0.5 * (
            term_s - cache.site_terms[:, s] + new_tail - tail[:, s]
        )
    return deltas, cache
