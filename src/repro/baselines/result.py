"""Shared result record for Max-Cut solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CutResult", "cut_of_partition"]


def cut_of_partition(adjacency: np.ndarray, bits: np.ndarray) -> float:
    """Cut weight of the partition encoded by ``bits ∈ {0,1}^n``."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    z = 1.0 - 2.0 * np.asarray(bits, dtype=np.float64)
    total = np.triu(adjacency, 1).sum()
    return float(0.5 * (total - 0.5 * z @ adjacency @ z))


@dataclass
class CutResult:
    """A Max-Cut solution: value, partition, and solver metadata."""

    value: float
    bits: np.ndarray
    info: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"CutResult(value={self.value}, n={self.bits.size}, info={self.info})"
