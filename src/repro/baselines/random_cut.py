"""Random Cut: assign each vertex to a side by a fair coin.

In expectation this cuts half the total edge weight — the classic
0.5-approximation and the paper's first Table 2 baseline. We return the
best of ``trials`` draws (the paper's row is a single draw per seed; use
``trials=1`` to match exactly).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.result import CutResult, cut_of_partition
from repro.utils.rng import as_generator

__all__ = ["random_cut"]


def random_cut(
    adjacency: np.ndarray,
    seed: int | None | np.random.Generator = None,
    trials: int = 1,
) -> CutResult:
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    rng = as_generator(seed)
    n = adjacency.shape[0]
    best_val, best_bits = -np.inf, None
    for _ in range(trials):
        bits = (rng.random(n) < 0.5).astype(np.float64)
        val = cut_of_partition(adjacency, bits)
        if val > best_val:
            best_val, best_bits = val, bits
    return CutResult(value=best_val, bits=best_bits, info={"trials": trials})
