"""Classical Max-Cut baselines (Table 2's first three rows).

- :func:`random_cut` — the 0.5-approximation (uniform random partition).
- :class:`GoemansWilliamson` — SDP relaxation + random-hyperplane rounding
  (0.878-approximation). The SDP is solved by Burer–Monteiro factorisation
  at a provably sufficient rank (p ≥ ⌈√(2n)⌉ ⇒ no spurious local optima),
  using our Riemannian solvers — replacing the paper's CVXPY dependency.
- :class:`BurerMonteiro` — the low-rank non-convex reformulation solved with
  the Riemannian trust-region method (the paper's Manopt baseline), with
  hyperplane rounding and 1-opt local search.
"""

from repro.baselines.result import CutResult
from repro.baselines.random_cut import random_cut
from repro.baselines.goemans_williamson import GoemansWilliamson
from repro.baselines.burer_monteiro import BurerMonteiro
from repro.baselines.local_search import one_opt_local_search
from repro.baselines.nes import NaturalEvolutionStrategies

__all__ = [
    "CutResult",
    "random_cut",
    "GoemansWilliamson",
    "BurerMonteiro",
    "one_opt_local_search",
    "NaturalEvolutionStrategies",
]
