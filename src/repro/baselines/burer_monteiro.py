"""Burer–Monteiro low-rank Max-Cut (the paper's strongest classical baseline).

Identical factorised problem to :mod:`goemans_williamson` but framed the way
the paper uses it (Burer & Monteiro 2001 + Riemannian trust region, as in
Manopt's ``maxcut`` example; Journée et al. 2010): solve at modest rank,
round, polish with 1-opt local search, and keep the best over restarts.
In Table 2 this baseline achieves the best cut at every size; the local
search and restarts are what push it past plain GW.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.goemans_williamson import hyperplane_rounding, maxcut_sdp_problem
from repro.baselines.local_search import one_opt_local_search
from repro.baselines.result import CutResult
from repro.manifolds import RiemannianTrustRegion
from repro.utils.rng import as_generator, spawn_generators

__all__ = ["BurerMonteiro"]


class BurerMonteiro:
    """Low-rank SDP heuristic with rounding + local search + restarts.

    Parameters
    ----------
    rank:
        Factorisation rank p; ``None`` → ``⌈√(2n)⌉ + 1``.
    rounds:
        Hyperplane roundings per restart.
    restarts:
        Independent solver restarts (best cut kept).
    """

    def __init__(
        self,
        rank: int | None = None,
        rounds: int = 100,
        restarts: int = 1,
        local_search: bool = True,
        solver: RiemannianTrustRegion | None = None,
    ):
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        self.rank = rank
        self.rounds = rounds
        self.restarts = restarts
        self.local_search = local_search
        self.solver = solver or RiemannianTrustRegion(max_iter=300, grad_tol=1e-6)

    def solve(
        self, adjacency: np.ndarray, seed: int | None | np.random.Generator = None
    ) -> CutResult:
        adjacency = np.asarray(adjacency, dtype=np.float64)
        n = adjacency.shape[0]
        rank = self.rank or min(n, int(math.ceil(math.sqrt(2.0 * n))) + 1)
        rngs = spawn_generators(as_generator(seed), self.restarts)

        total = float(np.triu(adjacency, 1).sum())
        best: CutResult | None = None
        for rng in rngs:
            problem = maxcut_sdp_problem(adjacency, rank)
            opt = self.solver.solve(problem, rng=rng)
            bits, value = hyperplane_rounding(opt.point, adjacency, rng, self.rounds)
            if self.local_search:
                bits, value = one_opt_local_search(adjacency, bits)
            if best is None or value > best.value:
                best = CutResult(
                    value=value,
                    bits=bits,
                    info={
                        "sdp_bound": total / 2.0 - opt.cost,
                        "rank": rank,
                        "solver_iterations": opt.iterations,
                    },
                )
        assert best is not None
        best.info["restarts"] = self.restarts
        return best
