"""Natural evolution strategies (NES) over the binary hypercube.

The paper (§2.4, citing Zhao et al. 2020) notes that VQMC applied to a
*diagonal* Hamiltonian — i.e. a classical objective ``f(x)`` — "is
equivalent to natural evolution strategies". This module implements that
NES directly, as an independent reference:

- search distribution: product Bernoulli with logits θ,
- score: ``∇θ log π(x) = x − σ(θ)``,
- gradient estimate: ``E[(f(x) − f̄)(x − σ(θ))]`` (baseline-subtracted),
- natural gradient: the Bernoulli Fisher is the closed-form diagonal
  ``F = diag(p(1−p))``, so preconditioning is elementwise.

The equivalence is exact and tested: with the same sample batch, one NES
gradient step equals one VQMC step on :class:`repro.models.MeanField`
(whose score is ``½(x − p)`` and whose energy gradient carries a 2 — the
factors cancel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["NaturalEvolutionStrategies", "NESResult"]


@dataclass
class NESResult:
    best_value: float
    best_x: np.ndarray
    mean_values: list[float]
    logits: np.ndarray


class NaturalEvolutionStrategies:
    """Minimise ``f : {0,1}^n → R`` with Bernoulli NES.

    Parameters
    ----------
    lr:
        Natural-gradient learning rate.
    batch_size:
        Samples per generation.
    natural:
        Precondition by the inverse Fisher diag(p(1−p)) (the "natural" in
        NES). ``False`` gives plain REINFORCE.
    fisher_floor:
        Lower bound on p(1−p) to keep the preconditioner bounded as the
        distribution concentrates.
    """

    def __init__(
        self,
        lr: float = 0.1,
        batch_size: int = 256,
        natural: bool = True,
        fisher_floor: float = 1e-4,
    ):
        if lr <= 0 or batch_size < 2:
            raise ValueError("invalid NES parameters")
        self.lr = lr
        self.batch_size = batch_size
        self.natural = natural
        self.fisher_floor = fisher_floor

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    def gradient(
        self, logits: np.ndarray, x: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """The (naturalised) NES gradient for a given sample batch."""
        p = self._sigmoid(logits)
        centred = values - values.mean()
        grad = centred @ (x - p) / x.shape[0]
        if self.natural:
            grad = grad / np.maximum(p * (1.0 - p), self.fisher_floor)
        return grad

    def minimize(
        self,
        objective: Callable[[np.ndarray], np.ndarray],
        n: int,
        iterations: int = 200,
        seed: int | None | np.random.Generator = None,
    ) -> NESResult:
        """Run NES; ``objective`` maps an (B, n) batch to (B,) values."""
        rng = as_generator(seed)
        logits = rng.normal(0.0, 0.01, size=n)
        best_value = np.inf
        best_x = np.zeros(n)
        means: list[float] = []
        for _ in range(iterations):
            p = self._sigmoid(logits)
            x = (rng.random((self.batch_size, n)) < p).astype(np.float64)
            values = np.asarray(objective(x), dtype=np.float64)
            means.append(float(values.mean()))
            idx = int(np.argmin(values))
            if values[idx] < best_value:
                best_value = float(values[idx])
                best_x = x[idx].copy()
            logits = logits - self.lr * self.gradient(logits, x, values)
        return NESResult(
            best_value=best_value, best_x=best_x, mean_values=means, logits=logits
        )
