"""Goemans–Williamson: SDP relaxation + random-hyperplane rounding.

The Max-Cut SDP relaxation assigns each vertex a unit vector ``v_i`` and
maximises ``Σ_{i<j} w_ij (1 − ⟨v_i, v_j⟩)/2``; rounding by the sign of a
random hyperplane projection achieves at least 0.87856 of the optimum in
expectation (Goemans & Williamson 1995).

The paper solved the SDP with CVXPY; with no SDP library offline we use the
Burer–Monteiro route: factor ``X = VᵀV`` with ``V`` on the oblique manifold
at rank ``p ≥ ⌈√(2n)⌉ + 1``. At that rank every second-order critical point
of the factorised problem is a global SDP optimum (Boumal–Voroninski–
Bandeira 2016), so a Riemannian solve recovers the true relaxation value
and the GW guarantee applies to the rounded cut.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.local_search import one_opt_local_search
from repro.baselines.result import CutResult, cut_of_partition
from repro.manifolds import (
    ManifoldProblem,
    ObliqueManifold,
    RiemannianTrustRegion,
)
from repro.utils.rng import as_generator

__all__ = ["GoemansWilliamson", "maxcut_sdp_problem", "hyperplane_rounding"]


def maxcut_sdp_problem(adjacency: np.ndarray, rank: int) -> ManifoldProblem:
    """The factorised Max-Cut SDP: ``min f(V) = ¼ tr(W VᵀV)`` on OB(rank, n).

    The SDP cut bound is ``total_weight/2 − f(V*)``.
    """
    w = np.asarray(adjacency, dtype=np.float64)
    n = w.shape[0]
    manifold = ObliqueManifold(rank, n)

    def cost(v: np.ndarray) -> float:
        return 0.25 * float(np.sum((v @ w) * v))

    def egrad(v: np.ndarray) -> np.ndarray:
        return 0.5 * (v @ w)

    def ehess(v: np.ndarray, xi: np.ndarray) -> np.ndarray:
        return 0.5 * (xi @ w)

    return ManifoldProblem(manifold, cost, egrad, ehess)


def hyperplane_rounding(
    v: np.ndarray,
    adjacency: np.ndarray,
    rng: np.random.Generator,
    rounds: int = 100,
) -> tuple[np.ndarray, float]:
    """Best-of-``rounds`` random-hyperplane rounding of the vector solution.

    Each round draws ``r ~ N(0, I_p)`` and assigns vertex i to the side
    ``sign(⟨r, v_i⟩)``; bits convention: bit 1 ⇔ negative side.
    """
    p, n = v.shape
    r = rng.normal(size=(rounds, p))
    signs = (r @ v) < 0.0  # (rounds, n) — True → bit 1
    best_val, best_bits = -np.inf, None
    for bits in signs.astype(np.float64):
        val = cut_of_partition(adjacency, bits)
        if val > best_val:
            best_val, best_bits = val, bits
    return best_bits, best_val


class GoemansWilliamson:
    """GW approximation with a Riemannian SDP solver.

    Parameters
    ----------
    rank:
        Factorisation rank; ``None`` → ``⌈√(2n)⌉ + 1`` (BM-sufficient).
    rounds:
        Number of hyperplane roundings (best kept).
    local_search:
        Polish the rounded cut to 1-opt optimality (off by default: the
        textbook GW algorithm does no local search).
    """

    def __init__(
        self,
        rank: int | None = None,
        rounds: int = 100,
        local_search: bool = False,
        solver: RiemannianTrustRegion | None = None,
    ):
        self.rank = rank
        self.rounds = rounds
        self.local_search = local_search
        self.solver = solver or RiemannianTrustRegion(max_iter=300, grad_tol=1e-6)

    def solve(
        self, adjacency: np.ndarray, seed: int | None | np.random.Generator = None
    ) -> CutResult:
        adjacency = np.asarray(adjacency, dtype=np.float64)
        rng = as_generator(seed)
        n = adjacency.shape[0]
        rank = self.rank or min(n, int(math.ceil(math.sqrt(2.0 * n))) + 1)

        problem = maxcut_sdp_problem(adjacency, rank)
        opt = self.solver.solve(problem, rng=rng)

        total = float(np.triu(adjacency, 1).sum())
        sdp_bound = total / 2.0 - opt.cost

        bits, value = hyperplane_rounding(opt.point, adjacency, rng, self.rounds)
        if self.local_search:
            bits, value = one_opt_local_search(adjacency, bits)
        return CutResult(
            value=value,
            bits=bits,
            info={
                "sdp_bound": sdp_bound,
                "rank": rank,
                "solver_iterations": opt.iterations,
                "solver_grad_norm": opt.grad_norm,
                "ratio_to_sdp": value / sdp_bound if sdp_bound > 0 else float("nan"),
            },
        )
