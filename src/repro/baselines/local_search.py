"""1-opt local search for Max-Cut (greedy single-vertex moves).

Repeatedly move the vertex whose side-switch most increases the cut until
no single move helps. Each sweep is O(n²) via incremental gain updates;
used as the polish step after hyperplane rounding.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.result import cut_of_partition

__all__ = ["one_opt_local_search"]


def one_opt_local_search(
    adjacency: np.ndarray, bits: np.ndarray, max_moves: int | None = None
) -> tuple[np.ndarray, float]:
    """Improve a partition to 1-opt local optimality.

    Returns ``(bits, cut_value)``. The gain of flipping vertex i is
    ``Σ_j w_ij z_i z_j`` (its signed agreement with its neighbourhood):
    positive gain ⇔ the flip increases the cut by that amount. Each move
    strictly increases the cut, so termination is guaranteed; ``max_moves``
    (default ``50 n``) is a safety valve for weighted near-ties.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    bits = np.asarray(bits, dtype=np.float64).copy()
    z = 1.0 - 2.0 * bits
    gains = z * (adjacency @ z)  # flip gains for every vertex
    if max_moves is None:
        max_moves = 50 * bits.size

    for _ in range(max_moves):
        i = int(np.argmax(gains))
        if gains[i] <= 1e-12:
            break
        # Flip i; update z and all gains incrementally (O(n)).
        z_i_old = z[i]
        z[i] = -z[i]
        bits[i] = 1.0 - bits[i]
        # For j ≠ i the gain changes by 2 w_ij z_j (z_i_new − z_i_old)·… —
        # recompute from the definition for clarity at O(n):
        gains += 2.0 * adjacency[i] * z * z[i]
        gains[i] = z[i] * (adjacency[i] @ z)
    return bits, cut_of_partition(adjacency, bits)
