"""Live health monitoring: a streaming rule engine over the metric stream.

The flight recorder (:mod:`repro.obs.flight`) preserves the moments before
a death; this module is the layer that *watches* a run while it is alive
and judges it. Each :class:`HealthRule` inspects the per-step frames the
:class:`~repro.obs.flight.StepFrameBuilder` produces and yields a
detail string when the step looks bad; a hysteresis wrapper turns raw
per-step judgements into stable OK/WARN/CRIT verdicts:

- the first bad sighting escalates to **WARN**;
- ``trip_after`` *consecutive* bad steps escalate to **CRIT** (so a
  single noisy step cannot page anyone);
- ``clear_after`` consecutive clean steps decay back to **OK** (so a
  verdict does not flap at the threshold).

Rule catalogue (defaults chosen so a clean run never reaches CRIT):

=====================  ========================================================
``nan_energy``         energy / std / grad_norm non-finite (trips immediately)
``energy_variance``    energy std collapsed or spiked vs. a rolling baseline
``acceptance_collapse``sampler acceptance below an absolute floor (MCMC runs)
``snr_drop``           energy |mean|/sem dropped far below its rolling baseline
``cg_stall``           consecutive incomplete SR-CG solves (``SRSolveInfo``)
``straggler_drift``    step time beyond the trace CLI's straggler threshold
                       (1.25×) of its rolling median
``arena_growth``       ``jit.arena_bytes`` gauge growing every step (leak-like)
=====================  ========================================================

Rolling baselines freeze while a rule is bad — an anomaly must not be
allowed to normalise itself into the baseline it is judged against.

:class:`HealthMonitor` bundles the rules behind the standard callback
protocol (``on_step``), exposes :meth:`~HealthMonitor.report` (embedded
in checkpoints by ``save_checkpoint`` and in flight dumps), and replays
recorded streams offline (:func:`replay_frames` — what
``tools/monitor.py`` uses on JSONL logs and flight dumps).
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import deque

from repro.obs.flight import StepFrameBuilder

__all__ = [
    "OK",
    "WARN",
    "CRIT",
    "HealthRule",
    "NonFiniteEnergyRule",
    "EnergyVarianceRule",
    "AcceptanceCollapseRule",
    "SNRDropRule",
    "CGStallRule",
    "StragglerDriftRule",
    "ArenaGrowthRule",
    "HealthMonitor",
    "default_rules",
    "replay_frames",
    "worst_verdict",
]

OK, WARN, CRIT = "OK", "WARN", "CRIT"
_SEVERITY = {OK: 0, WARN: 1, CRIT: 2}

#: health-report schema identifier
HEALTH_SCHEMA = "repro.health/1"


def worst_verdict(verdicts) -> str:
    """The most severe of an iterable of OK/WARN/CRIT strings."""
    worst = OK
    for v in verdicts:
        if _SEVERITY.get(v, 0) > _SEVERITY[worst]:
            worst = v
    return worst


def _finite(value) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


class _Rolling:
    """Bounded rolling window with a median baseline.

    ``push`` only happens while the owning rule judges the step clean, so
    a sustained anomaly cannot drag the baseline toward itself. The window
    is mirrored into an incrementally-maintained sorted list so the
    per-step median is two index reads, not a fresh sort — this runs on
    every training step of every rank.
    """

    def __init__(self, window: int = 50, min_samples: int = 10):
        self.window = window
        self.min_samples = min_samples
        self._buf: deque = deque()
        self._sorted: list[float] = []

    def push(self, value: float) -> None:
        value = float(value)
        self._buf.append(value)
        insort(self._sorted, value)
        if len(self._buf) > self.window:
            evicted = self._buf.popleft()
            del self._sorted[bisect_left(self._sorted, evicted)]

    def median(self) -> float | None:
        n = len(self._sorted)
        if n < self.min_samples:
            return None
        mid = n // 2
        if n % 2:
            return self._sorted[mid]
        return 0.5 * (self._sorted[mid - 1] + self._sorted[mid])


class HealthRule:
    """One streaming judgement. Subclasses implement :meth:`check`.

    Attributes
    ----------
    name:
        Stable identifier (keys reports, tests, and the monitor CLI).
    trip_after:
        Consecutive bad steps before WARN escalates to CRIT.
    clear_after:
        Consecutive clean steps before the verdict decays to OK.
    """

    name = "rule"
    trip_after = 3
    clear_after = 10

    def check(self, frame: dict) -> str | None:
        """Return a human-readable detail when ``frame`` looks bad, else
        ``None``. Must tolerate missing keys (offline streams carry fewer
        fields than live ones)."""
        raise NotImplementedError


class NonFiniteEnergyRule(HealthRule):
    """NaN/Inf in the quantities that poison a run irreversibly."""

    name = "nan_energy"
    trip_after = 1

    def check(self, frame: dict) -> str | None:
        for key in ("energy", "std", "sem", "grad_norm"):
            value = frame.get(key)
            if value is not None and not _finite(value):
                return f"{key} is {value}"
        return None


class EnergyVarianceRule(HealthRule):
    """Energy variance collapsed (sampler stuck on one configuration) or
    spiked (amplitude ratios blowing up) relative to its own history."""

    name = "energy_variance"

    def __init__(
        self,
        collapse_ratio: float = 1e-3,
        spike_ratio: float = 100.0,
        window: int = 50,
        min_samples: int = 10,
    ):
        self.collapse_ratio = collapse_ratio
        self.spike_ratio = spike_ratio
        self._baseline = _Rolling(window, min_samples)

    def check(self, frame: dict) -> str | None:
        std = frame.get("std")
        if not _finite(std):
            return None  # nan_energy owns non-finite values
        base = self._baseline.median()
        if base is not None and base > 0:
            if std < self.collapse_ratio * base:
                return (
                    f"energy std {std:.3g} collapsed below "
                    f"{self.collapse_ratio:g}x baseline {base:.3g}"
                )
            if std > self.spike_ratio * base:
                return (
                    f"energy std {std:.3g} spiked above "
                    f"{self.spike_ratio:g}x baseline {base:.3g}"
                )
        self._baseline.push(std)
        return None


class AcceptanceCollapseRule(HealthRule):
    """MCMC acceptance rate below an absolute floor: the chain is stuck
    and the batch is no longer a sample. Exact (autoregressive) samplers
    report acceptance 1.0 and never trip this."""

    name = "acceptance_collapse"

    def __init__(self, min_acceptance: float = 0.05):
        self.min_acceptance = min_acceptance

    def check(self, frame: dict) -> str | None:
        acceptance = frame.get("acceptance")
        if not _finite(acceptance):
            return None  # sampler does not report acceptance
        if acceptance < self.min_acceptance:
            return (
                f"acceptance {acceptance:.4f} below floor "
                f"{self.min_acceptance:g}"
            )
        return None


class SNRDropRule(HealthRule):
    """Energy signal-to-noise (|mean| / sem) far below its rolling
    baseline: the estimator's statistics degraded — batch starvation,
    sampler trouble, or divergence-in-progress."""

    name = "snr_drop"

    def __init__(
        self,
        drop_ratio: float = 0.1,
        window: int = 50,
        min_samples: int = 10,
    ):
        self.drop_ratio = drop_ratio
        self._baseline = _Rolling(window, min_samples)

    def check(self, frame: dict) -> str | None:
        mean, sem = frame.get("energy"), frame.get("sem")
        if not (_finite(mean) and _finite(sem)) or sem <= 0:
            return None
        snr = abs(mean) / sem
        base = self._baseline.median()
        if base is not None and base > 0 and snr < self.drop_ratio * base:
            return (
                f"SNR {snr:.3g} dropped below {self.drop_ratio:g}x "
                f"baseline {base:.3g}"
            )
        self._baseline.push(snr)
        return None


class CGStallRule(HealthRule):
    """Consecutive incomplete SR-CG solves: the natural-gradient system
    has become too ill-conditioned for the iteration budget, and every
    update direction is a truncated guess."""

    name = "cg_stall"

    def check(self, frame: dict) -> str | None:
        sr = frame.get("sr")
        if not isinstance(sr, dict) or not sr.get("incomplete"):
            return None
        return (
            f"CG incomplete at {sr.get('iterations')} iterations "
            f"(residual {sr.get('residual', float('nan')):.3g})"
        )


class StragglerDriftRule(HealthRule):
    """This rank's step time drifted beyond the trace CLI's straggler
    threshold (default 1.25×) of its own rolling median — the live,
    per-rank version of ``tools/trace.py summary``'s cross-rank flag."""

    name = "straggler_drift"
    trip_after = 5

    def __init__(
        self,
        threshold: float = 1.25,
        window: int = 50,
        min_samples: int = 10,
    ):
        self.threshold = threshold
        self._baseline = _Rolling(window, min_samples)

    def check(self, frame: dict) -> str | None:
        step_time = frame.get("step_time")
        if not _finite(step_time) or step_time <= 0:
            return None
        base = self._baseline.median()
        if base is not None and base > 0 and step_time > self.threshold * base:
            return (
                f"step time {step_time * 1e3:.1f} ms is "
                f"{step_time / base:.2f}x the rolling median "
                f"{base * 1e3:.1f} ms (threshold {self.threshold:g}x)"
            )
        self._baseline.push(step_time)
        return None


class ArenaGrowthRule(HealthRule):
    """The jit arena (``jit.arena_bytes`` gauge) grew on every recent
    step. One growth is a legitimate recompile; monotone growth means
    guard misses are recompiling every step — a compile-cache leak."""

    name = "arena_growth"
    trip_after = 5

    def __init__(self) -> None:
        self._prev: float | None = None

    def check(self, frame: dict) -> str | None:
        arena = frame.get("gauges", {}).get("jit.arena_bytes")
        if not _finite(arena):
            return None
        prev, self._prev = self._prev, arena
        if prev is not None and arena > prev:
            return (
                f"jit.arena_bytes grew {prev:.0f} -> {arena:.0f} "
                "(sustained growth = recompilation leak)"
            )
        return None


def default_rules() -> list[HealthRule]:
    """Fresh instances of the full rule catalogue."""
    return [
        NonFiniteEnergyRule(),
        EnergyVarianceRule(),
        AcceptanceCollapseRule(),
        SNRDropRule(),
        CGStallRule(),
        StragglerDriftRule(),
        ArenaGrowthRule(),
    ]


class _RuleRuntime:
    """Hysteresis wrapper: raw per-step judgements → stable verdicts."""

    __slots__ = ("rule", "verdict", "detail", "bad_streak", "good_streak",
                 "tripped_step", "bad_steps")

    def __init__(self, rule: HealthRule):
        self.rule = rule
        self.verdict = OK
        self.detail = ""
        self.bad_streak = 0
        self.good_streak = 0
        self.tripped_step: int | None = None
        self.bad_steps = 0

    def update(self, frame: dict) -> str:
        detail = self.rule.check(frame)
        if detail is not None:
            self.bad_steps += 1
            self.bad_streak += 1
            self.good_streak = 0
            self.detail = detail
            if self.bad_streak >= self.rule.trip_after:
                if self.verdict != CRIT:
                    self.tripped_step = frame.get("step")
                self.verdict = CRIT
            elif self.verdict == OK:
                self.verdict = WARN
        else:
            self.good_streak += 1
            self.bad_streak = 0
            if self.verdict != OK and self.good_streak >= self.rule.clear_after:
                self.verdict = OK
                self.detail = ""
        return self.verdict

    def snapshot(self) -> dict:
        return {
            "verdict": self.verdict,
            "detail": self.detail,
            "bad_steps": self.bad_steps,
            "bad_streak": self.bad_streak,
            "tripped_step": self.tripped_step,
        }


class HealthMonitor:
    """Streaming OK/WARN/CRIT verdicts over a training run.

    Use as a regular callback (``callbacks=[HealthMonitor()]``), hand it
    to a :class:`~repro.obs.flight.FlightRecorder` (``health=``) to share
    one frame builder, or drive it offline via :meth:`observe` /
    :func:`replay_frames`.

    ``on_run_begin`` registers the monitor as ``vqmc.health`` so
    ``save_checkpoint`` embeds :meth:`report` in every checkpoint header —
    a restored run knows how healthy its source was.
    """

    def __init__(self, rules=None, *, max_transitions: int = 200):
        self.rules = list(rules) if rules is not None else default_rules()
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {names}")
        self._runtimes = [_RuleRuntime(r) for r in self.rules]
        #: bounded log of verdict transitions: {step, rule, from, to, detail}
        self.transitions: deque = deque(maxlen=max_transitions)
        self.steps_seen = 0
        self.last_step: int | None = None
        self._builder = StepFrameBuilder()

    # -- callback protocol --------------------------------------------------------

    def on_run_begin(self, vqmc) -> None:
        vqmc.health = self

    def on_step(self, step: int, result) -> None:
        self.observe(self._builder.build(step, result))

    def on_run_end(self, vqmc) -> None:
        pass

    # -- streaming core -----------------------------------------------------------

    def observe(self, frame: dict) -> str:
        """Feed one frame through every rule; returns the overall verdict."""
        self.steps_seen += 1
        step = frame.get("step")
        if step is not None:
            self.last_step = int(step)
        for rt in self._runtimes:
            before = rt.verdict
            after = rt.update(frame)
            if after != before:
                self.transitions.append(
                    {
                        "step": step,
                        "rule": rt.rule.name,
                        "from": before,
                        "to": after,
                        "detail": rt.detail,
                    }
                )
        return self.verdict

    @property
    def verdict(self) -> str:
        """Overall verdict: the worst of the per-rule verdicts."""
        return worst_verdict(rt.verdict for rt in self._runtimes)

    def rule_verdicts(self) -> dict[str, str]:
        return {rt.rule.name: rt.verdict for rt in self._runtimes}

    def report(self) -> dict:
        """JSON-ready :class:`HealthReport`: overall + per-rule verdicts,
        details, trip points, and the recent transition log."""
        return {
            "schema": HEALTH_SCHEMA,
            "verdict": self.verdict,
            "steps": self.steps_seen,
            "last_step": self.last_step,
            "rules": {rt.rule.name: rt.snapshot() for rt in self._runtimes},
            "transitions": list(self.transitions),
        }


def replay_frames(frames, rules=None) -> HealthMonitor:
    """Classify a recorded frame stream offline; returns the monitor.

    This is the engine behind ``tools/monitor.py``: the same rules that
    run live are replayed over a JSONL log or a flight dump's ring
    buffer, so online and post-mortem verdicts can never disagree.
    """
    monitor = HealthMonitor(rules)
    for frame in frames:
        monitor.observe(frame)
    return monitor
