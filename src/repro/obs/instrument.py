"""Training-loop instrumentation: the callback gluing tracer → exporters.

:class:`ObsCallback` rides the same callback protocol as
:class:`~repro.utils.runlog.RunLogger` (``on_run_begin`` / ``on_step`` /
``on_run_end`` — duck-typed, no import of the driver) and turns one rank's
:class:`~repro.obs.tracer.Tracer` into durable artefacts:

- ``trace.rankNNN.jsonl`` — a JSONL stream extending the RunLogger schema
  (``trace_begin`` header, one ``trace_step`` object per step carrying the
  per-phase seconds of *that* step, ``trace_end`` footer with run totals).
  Parse it with :meth:`repro.utils.runlog.RunLogger.read`.
- ``trace.rankNNN.json`` — the Chrome trace-event timeline
  (:func:`repro.obs.export.write_chrome_trace`), one process per rank.
- optionally, with a metrics registry, ``metrics.rankNNN.json`` — the
  rank's :meth:`~repro.obs.metrics.Metrics.snapshot`, in the mergeable
  form ``tools/trace.py merge``/``summary`` fold across ranks.
- optionally, with a communicator, a cross-rank skew report folded over
  ``allgather`` at run end (:attr:`skew`) — **collective**: either every
  rank's callback aggregates or none does.

Because ``VQMC.run`` invokes ``on_run_end`` from a ``finally`` block, the
trace files exist even when training dies mid-step — which is precisely
when you want the timeline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.obs.export import (
    allgather_named_floats,
    metrics_file_name,
    skew_report,
    trace_file_name,
    write_chrome_trace,
)
from repro.obs.tracer import Tracer

__all__ = ["ObsCallback"]


class ObsCallback:
    """Callback exporting a tracer's spans as JSONL + Chrome trace files.

    Parameters
    ----------
    tracer:
        The rank's tracer (typically the one handed to ``VQMC``).
    directory:
        Output directory; files are ``trace.rankNNN.{jsonl,json}``.
    rank:
        Rank tag for file names and trace ``pid`` (default: the tracer's).
    comm:
        Optional communicator; when given, ``on_run_end`` allgathers the
        per-phase totals and stores :func:`~repro.obs.export.skew_report`
        output in :attr:`skew`. Collective — pass it on every rank or none.
    jsonl, chrome:
        Disable either exporter (both on by default).
    metrics:
        Optional :class:`~repro.obs.metrics.Metrics` registry (typically
        the one handed to ``VQMC``); when given, ``on_run_end`` writes its
        snapshot to ``metrics.rankNNN.json`` — the mergeable form that
        ``tools/trace.py merge``/``summary`` fold across ranks.
    """

    def __init__(
        self,
        tracer: Tracer,
        directory: str | Path,
        rank: int | None = None,
        comm=None,
        jsonl: bool = True,
        chrome: bool = True,
        metrics=None,
    ):
        self.tracer = tracer
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.rank = tracer.rank if rank is None else int(rank)
        self.comm = comm
        self.jsonl_enabled = jsonl
        self.chrome_enabled = chrome
        self.metrics = metrics
        #: cross-rank skew report (populated at run end when ``comm`` given)
        self.skew: dict[str, dict[str, float]] | None = None
        self.chrome_path: Path | None = None
        self.jsonl_path: Path | None = None
        self.metrics_path: Path | None = None
        self._fh = None
        self._event_idx = 0

    # -- callback protocol --------------------------------------------------------

    def on_run_begin(self, vqmc) -> None:
        self._event_idx = len(self.tracer.events)
        if not self.jsonl_enabled:
            return
        self.jsonl_path = self.directory / (trace_file_name(self.rank) + "l")
        self._fh = self.jsonl_path.open("a", encoding="utf-8")
        self._write(
            {
                "event": "trace_begin",
                "time": time.time(),  # repro-lint: disable=det-wall-clock -- log-sink timestamp, never feeds numerics
                "rank": self.rank,
                "enabled": self.tracer.enabled,
                "max_events": self.tracer.max_events,
            }
        )

    def on_step(self, step: int, result) -> None:
        if self._fh is None:
            return
        phases: dict[str, float] = {}
        events = self.tracer.events
        for ev in events[self._event_idx:]:
            phases[ev.name] = phases.get(ev.name, 0.0) + ev.dur_ns * 1e-9
        self._event_idx = len(events)
        self._write(
            {
                "event": "trace_step",
                "step": step,
                "step_time": result.step_time,
                "phases": {k: phases[k] for k in sorted(phases)},
            }
        )

    def on_run_end(self, vqmc) -> None:
        totals = self.tracer.totals()
        if self._fh is not None:
            self._write(
                {
                    "event": "trace_end",
                    "rank": self.rank,
                    "phases": {k: v["total_s"] for k, v in totals.items()},
                    "span_count": len(self.tracer.events),
                    "dropped_events": self.tracer.dropped,
                }
            )
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
        if self.chrome_enabled:
            self.chrome_path = write_chrome_trace(
                self.tracer,
                self.directory / trace_file_name(self.rank),
                rank=self.rank,
            )
        if self.metrics is not None:
            self.metrics_path = self.directory / metrics_file_name(self.rank)
            self.metrics_path.write_text(
                json.dumps(self.metrics.snapshot(), default=repr) + "\n",
                encoding="utf-8",
            )
        if self.comm is not None:
            phase_totals = {
                k: v["total_s"] for k, v in self.tracer.totals(depth=1).items()
            }
            per_rank = allgather_named_floats(self.comm, phase_totals)
            self.skew = skew_report(per_rank)

    # -- helpers ------------------------------------------------------------------

    def _write(self, record: dict) -> None:
        # repr() fallback mirrors RunLogger: telemetry must never be the
        # thing that kills a run over an exotic attribute value.
        self._fh.write(json.dumps(record, default=repr) + "\n")
        self._fh.flush()
