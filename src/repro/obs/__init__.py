"""Unified observability: spans + metrics for every perf claim in the repo.

The paper's headline numbers (Fig. 3 weak scaling, Table 6 raw scaling)
are wall-clock decompositions; this package is the layer that produces
them from real runs instead of ad-hoc ``time.perf_counter()`` pairs:

- :mod:`repro.obs.tracer` — nested, exception-safe spans with per-rank
  buffers, bounded memory, near-zero disabled cost.
- :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  with associatively-mergeable snapshots.
- :mod:`repro.obs.export` — Chrome trace-event JSON (one process per
  rank; load in ``chrome://tracing`` / Perfetto), trace merging, and
  cross-rank skew aggregation over ``Communicator.allgather``.
- :mod:`repro.obs.instrument` — :class:`ObsCallback`, the training-loop
  callback that writes the JSONL stream and the per-rank Chrome traces.
- :mod:`repro.obs.flight` — :class:`FlightRecorder`, a bounded ring
  buffer over the last K steps that atomically dumps a CRC-stamped
  ``flight.rankNNN.json`` black box on crash / rank failure / SIGTERM.
- :mod:`repro.obs.health` — :class:`HealthMonitor`, a streaming rule
  engine (NaN energy, variance/acceptance collapse, SNR drop, CG stalls,
  straggler drift, arena growth) yielding OK/WARN/CRIT verdicts with
  hysteresis; reports embed in checkpoints and flight dumps. Inspect
  either live streams or post-mortem dumps with ``tools/monitor.py``.

Instrumentation is already wired through the hot paths: ``VQMC.step``
emits ``step``/``sample``/``local_energy``/``gradient``/``sr_solve``/
``optimizer`` phase spans, every ``Communicator`` collective reports
bytes + latency (all backends and wrappers — serial, threads, mp,
resilient, fault-injected, sanitized — inherit the spans from the base
class), ``AutoregressiveSampler`` records fast-path vs. fallback, and
checkpoint save/restore is spanned. Summarise a trace with
``python tools/trace.py summary <dir>``; see ``docs/observability.md``.
"""

from repro.obs.export import (
    allgather_named_floats,
    chrome_trace_events,
    load_chrome_trace,
    merge_chrome_traces,
    metrics_file_name,
    skew_report,
    trace_file_name,
    write_chrome_trace,
)
from repro.obs.flight import (
    FlightDumpError,
    FlightRecorder,
    StepFrameBuilder,
    flight_file_name,
    load_flight_dump,
)
from repro.obs.health import (
    CRIT,
    OK,
    WARN,
    HealthMonitor,
    HealthRule,
    default_rules,
    replay_frames,
    worst_verdict,
)
from repro.obs.instrument import ObsCallback
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    merge_snapshots,
)
from repro.obs.tracer import NULL_TRACER, SpanEvent, Tracer

__all__ = [
    "Tracer",
    "SpanEvent",
    "NULL_TRACER",
    "Metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "merge_snapshots",
    "DEFAULT_BUCKETS",
    "ObsCallback",
    "FlightRecorder",
    "FlightDumpError",
    "StepFrameBuilder",
    "flight_file_name",
    "load_flight_dump",
    "HealthMonitor",
    "HealthRule",
    "default_rules",
    "replay_frames",
    "worst_verdict",
    "OK",
    "WARN",
    "CRIT",
    "chrome_trace_events",
    "write_chrome_trace",
    "load_chrome_trace",
    "merge_chrome_traces",
    "trace_file_name",
    "metrics_file_name",
    "allgather_named_floats",
    "skew_report",
]
