"""Flight recorder: a bounded black box for VQMC training runs.

Long multi-rank runs fail in ways that are only diagnosable *after* the
fact — by which point the interesting state (the last few steps of span
timings, metric movement, comm traffic, SR solve quality) is gone unless
someone was recording it. :class:`FlightRecorder` is that recorder: a
fixed-size ring buffer of per-step :func:`frames <StepFrameBuilder.build>`
that costs O(capacity) memory forever and is dumped — atomically,
CRC-stamped — the moment the run dies.

Dump triggers, mirroring how runs actually end:

- **Crash**: ``VQMC.run`` raises → its ``finally`` block delivers
  ``on_crash`` to every callback that defines it before ``on_run_end``;
  the recorder dumps with the exception type as the reason.
- **RankFailure / elastic events**: :class:`~repro.distributed.supervisor.
  TrainingSupervisor` finds a recorder among its callbacks and (a) notes
  every shrink/grow/rejoin with epoch tags, (b) dumps after each recovery
  and on eviction, so every surviving rank leaves a black box naming the
  failed ranks.
- **SIGTERM**: :meth:`FlightRecorder.install_signal_handlers` chains onto
  the process signal handler (main thread only) so preemption by a job
  scheduler still produces a dump.
- **Manual**: :meth:`FlightRecorder.dump` at any point.

The dump (``flight.rankNNN.json``) carries a CRC32 over its canonical
body JSON, the same integrity idiom as the crash-safe checkpoints;
:func:`load_flight_dump` verifies it. Read dumps with
``python tools/monitor.py`` — it replays the frames through the health
rule engine (:mod:`repro.obs.health`) and names the failing rank and the
last completed step.
"""

from __future__ import annotations

import json
import os
import signal
import time
import zlib
from collections import deque
from pathlib import Path

__all__ = [
    "FLIGHT_SCHEMA",
    "FlightDumpError",
    "FlightRecorder",
    "StepFrameBuilder",
    "flight_file_name",
    "load_flight_dump",
]

#: dump schema identifier (bump on incompatible layout changes)
FLIGHT_SCHEMA = "repro.flight/1"


class FlightDumpError(RuntimeError):
    """A flight dump is truncated, unparseable, or fails its CRC32."""

    def __init__(self, path: Path | str, reason: str):
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"invalid flight dump {path}: {reason}")


def flight_file_name(rank: int) -> str:
    """Canonical per-rank dump file name (``flight.rank003.json``)."""
    return f"flight.rank{rank:03d}.json"


def _body_crc(body: dict) -> int:
    """CRC32 over the canonical (sorted-key) JSON of the dump body.

    ``json.dumps`` round-trips Python floats exactly (incl. NaN/Inf
    tokens), so verify-after-load recomputes the identical digest.
    """
    blob = json.dumps(body, sort_keys=True, default=repr).encode("utf-8")
    return zlib.crc32(blob) & 0xFFFFFFFF


class StepFrameBuilder:
    """Turns one :class:`~repro.core.vqmc.StepResult` into a JSON-ready
    per-step *frame* — the unit both the flight recorder's ring buffer and
    the health rule engine consume.

    A frame is a flat dict of plain scalars::

        {"step", "energy", "std", "sem", "grad_norm", "acceptance",
         "step_time", "phases": {...},
         "sr": {"solver", "iterations", "residual", "incomplete"},   # if SR ran
         "metric_deltas": {...},   # counter movement since the last frame
         "gauges": {...},          # absolute gauge levels (jit.arena_bytes, ...)
         "comm_deltas": {...},     # CommStats movement since the last frame
         "world_size": int}        # if a communicator is attached

    Counters and comm stats are *deltas* (the builder keeps the previous
    snapshot), so each frame describes what that step did, not cumulative
    history — exactly what you want in the moments before a crash.
    """

    def __init__(self) -> None:
        self._prev_counters: dict[str, float] = {}
        self._prev_comm: dict[str, int] = {}

    def build(self, step: int, result) -> dict:
        stats = getattr(result, "stats", None)
        frame: dict = {"step": int(step)}
        if stats is not None:
            frame["energy"] = float(stats.mean)
            frame["std"] = float(stats.std)
            frame["sem"] = float(stats.sem)
        for name in ("grad_norm", "step_time", "acceptance"):
            raw = getattr(result, name, None)
            if raw is not None:
                # NaN is preserved on purpose: a NaN grad_norm/energy is a
                # health signal, not a serialisation accident.
                frame[name] = float(raw)
        phases = getattr(result, "phase_seconds", None)
        if phases:
            frame["phases"] = {k: float(v) for k, v in sorted(phases.items())}

        vqmc = getattr(result, "vqmc", None)
        if vqmc is None:
            return frame
        sr = getattr(vqmc, "sr", None)
        info = getattr(sr, "last_solve", None) if sr is not None else None
        if info is not None:
            frame["sr"] = {
                "solver": info.solver,
                "iterations": int(info.iterations),
                "residual": float(info.residual),
                "incomplete": bool(info.incomplete),
            }
        metrics = getattr(vqmc, "metrics", None)
        if metrics is not None:
            snap = metrics.snapshot()
            counters = snap.get("counters", {})
            deltas = {
                name: value - self._prev_counters.get(name, 0.0)
                for name, value in counters.items()
                if value != self._prev_counters.get(name, 0.0)
            }
            self._prev_counters = counters
            if deltas:
                frame["metric_deltas"] = deltas
            if snap.get("gauges"):
                frame["gauges"] = snap["gauges"]
        comm = getattr(vqmc, "comm", None)
        comm_stats = getattr(comm, "stats", None) if comm is not None else None
        if comm_stats is not None:
            snap = comm_stats.snapshot()
            deltas = {
                name: value - self._prev_comm.get(name, 0)
                for name, value in snap.items()
                if value != self._prev_comm.get(name, 0)
            }
            self._prev_comm = snap
            if deltas:
                frame["comm_deltas"] = deltas
            frame["world_size"] = int(getattr(comm, "size", 1))
        return frame


class FlightRecorder:
    """Ring-buffer black box riding the training callback protocol.

    Parameters
    ----------
    directory:
        Where dumps land (created on demand). One file per rank:
        ``flight.rankNNN.json``; repeated dumps of the same rank overwrite
        (the newest black box is the one that matters).
    capacity:
        Ring size — the "last K steps" the dump preserves.
    rank:
        Rank tag for the dump file name. Default: resolved from the
        trainer's communicator at ``on_run_begin`` (0 for serial runs).
    health:
        Optional :class:`~repro.obs.health.HealthMonitor`. When given the
        recorder feeds it every frame (one shared
        :class:`StepFrameBuilder`, no duplicate snapshot work), registers
        it on the trainer for checkpoint health reports, and embeds its
        :meth:`~repro.obs.health.HealthMonitor.report` in every dump. Do
        *not* also pass the monitor as a separate callback.
    dump_on_end:
        Also dump on a clean run end (default: only on crash/signal/
        explicit :meth:`dump`).
    max_events:
        Bound on the out-of-band event log (elastic membership changes,
        crashes, signals).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        capacity: int = 64,
        rank: int | None = None,
        health=None,
        dump_on_end: bool = False,
        max_events: int = 256,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.directory = Path(directory)
        self.capacity = int(capacity)
        self.rank = rank
        self.health = health
        self.dump_on_end = dump_on_end
        self.frames: deque = deque(maxlen=self.capacity)
        self.events: deque = deque(maxlen=max_events)
        self.frames_seen = 0
        self.last_step: int | None = None
        #: paths written by :meth:`dump`, in order
        self.dumped: list[Path] = []
        self._builder = StepFrameBuilder()
        self._dumped_this_run = False
        self._prev_handlers: dict[int, object] = {}

    # -- callback protocol --------------------------------------------------------

    def on_run_begin(self, vqmc) -> None:
        if self.rank is None:
            comm = getattr(vqmc, "comm", None)
            rank = getattr(comm, "rank", None) if comm is not None else None
            self.rank = int(rank) if rank is not None else 0
        self._dumped_this_run = False
        if self.health is not None:
            self.health.on_run_begin(vqmc)

    def on_step(self, step: int, result) -> None:
        frame = self._builder.build(step, result)
        if self.health is not None:
            verdict = self.health.observe(frame)
            frame["health"] = verdict
        self.frames.append(frame)
        self.frames_seen += 1
        self.last_step = int(step)

    def on_crash(self, vqmc, exc: BaseException) -> None:
        """Delivered by ``VQMC.run``'s ``finally`` when a step or callback
        raised; dumps the black box with the exception as the reason."""
        del vqmc
        self.note_event(
            "crash", error=type(exc).__name__, detail=str(exc)[:500]
        )
        self.dump(reason=type(exc).__name__)

    def on_run_end(self, vqmc) -> None:
        del vqmc
        if self.dump_on_end and not self._dumped_this_run:
            self.dump(reason="run_end")

    # -- events -------------------------------------------------------------------

    def note_event(self, kind: str, **info) -> None:
        """Record an out-of-band event (elastic membership change, crash,
        signal) tagged with the last completed step."""
        event = {"kind": str(kind), "step": self.last_step}
        event.update({k: _json_safe(v) for k, v in info.items()})
        self.events.append(event)

    # -- the black box --------------------------------------------------------------

    def body(self) -> dict:
        """The dump payload (everything under the CRC)."""
        body = {
            "rank": int(self.rank or 0),
            "capacity": self.capacity,
            "frames_seen": self.frames_seen,
            "last_step": self.last_step,
            "frames": list(self.frames),
            "events": list(self.events),
        }
        if self.health is not None:
            body["health"] = self.health.report()
        return body

    def dump(self, reason: str = "manual") -> Path:
        """Atomically write ``flight.rankNNN.json`` and return its path.

        Write-temp + fsync + ``os.replace``, the checkpoint idiom: a
        reader (or a second crash) never observes a half-written dump.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        body = self.body()
        body["reason"] = str(reason)
        doc = {
            "schema": FLIGHT_SCHEMA,
            "unix_time": round(time.time(), 3),  # repro-lint: disable=det-wall-clock -- dump timestamp, never feeds numerics
            "crc32": _body_crc(body),
            "body": body,
        }
        path = self.directory / flight_file_name(int(self.rank or 0))
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, default=repr) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.dumped.append(path)
        self._dumped_this_run = True
        return path

    # -- signals --------------------------------------------------------------------

    def install_signal_handlers(self, signums=(signal.SIGTERM,)) -> list[int]:
        """Dump on delivery of ``signums`` (default SIGTERM — preemption).

        Chains to the previously-installed handler (or re-raises the
        default action) after dumping. Signal handlers can only be set on
        the main thread; on worker threads this is a no-op. Returns the
        list of signals actually hooked.
        """
        installed: list[int] = []
        for signum in signums:
            try:
                previous = signal.signal(signum, self._on_signal)
            except ValueError:  # not the main thread
                continue
            self._prev_handlers[int(signum)] = previous
            installed.append(int(signum))
        return installed

    def _on_signal(self, signum, frame) -> None:
        del frame
        self.note_event("signal", signal=int(signum))
        self.dump(reason=f"signal_{int(signum)}")
        previous = self._prev_handlers.get(int(signum))
        if callable(previous):
            previous(signum, None)
        elif previous == signal.SIG_DFL:
            raise SystemExit(128 + int(signum))


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def load_flight_dump(path: str | Path, verify: bool = True) -> dict:
    """Load a ``flight.rankNNN.json`` dump; returns the full document.

    With ``verify`` (default) the body CRC32 is recomputed and any
    mismatch, truncation, or schema surprise raises
    :class:`FlightDumpError` — a tampered or torn black box is worse than
    a missing one.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise FlightDumpError(path, f"unreadable: {exc}") from exc
    if not isinstance(doc, dict) or "body" not in doc or "crc32" not in doc:
        raise FlightDumpError(path, "missing body/crc32 members (foreign file?)")
    if doc.get("schema") != FLIGHT_SCHEMA:
        raise FlightDumpError(path, f"unknown schema {doc.get('schema')!r}")
    if verify:
        actual = _body_crc(doc["body"])
        stored = int(doc["crc32"])
        if actual != stored:
            raise FlightDumpError(
                path,
                f"CRC32 mismatch (stored {stored:#010x}, actual {actual:#010x})",
            )
    return doc
