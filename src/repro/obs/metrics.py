"""Counters, gauges and fixed-bucket histograms with mergeable snapshots.

The tracer (:mod:`repro.obs.tracer`) answers "where did the time go";
metrics answer "how often / how much" — retries, bytes moved, fast-path
hits, local-energy batch latencies. The design constraints mirror the
tracer's:

- ``inc``/``set``/``observe`` are cheap enough for hot paths (attribute
  bumps, one bisect for histograms — no locks, no allocation);
- snapshots are plain dicts, JSON-ready, and **merge associatively**:
  ``merge(merge(a, b), c) == merge(a, merge(b, c))`` for any grouping, so
  per-rank snapshots can be folded in any order (tree reductions included)
  into one cross-rank report. Counters and histograms add; gauges take the
  max (the only associative+commutative choice that keeps "worst rank"
  semantics without carrying rank identity).

Histograms use *fixed* bucket boundaries chosen at registration — two
snapshots merge only if their boundaries agree, which is exactly the
property that makes cross-rank merging exact instead of approximate.
"""

from __future__ import annotations

from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "merge_snapshots",
    "DEFAULT_BUCKETS",
]

#: default histogram boundaries: exponential seconds-scale latency grid
DEFAULT_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0,
)


class Counter:
    """Monotonically increasing count (events, bytes, retries)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount


class Gauge:
    """Last-written level (queue depth, world size, buffer occupancy)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-boundary histogram: counts per bucket plus sum/count/max.

    ``boundaries`` are upper edges; values above the last edge land in the
    overflow bucket, so there are ``len(boundaries) + 1`` counts. The
    observed maximum is tracked so the overflow bucket has a finite upper
    edge for quantile estimates.
    """

    __slots__ = ("boundaries", "counts", "sum", "count", "max")

    def __init__(self, boundaries=DEFAULT_BUCKETS):
        edges = tuple(float(b) for b in boundaries)
        if not edges or any(hi <= lo for lo, hi in zip(edges, edges[1:])):
            raise ValueError(f"boundaries must be strictly increasing, got {edges}")
        self.boundaries = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_right(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1
        if self.max is None or value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Upper-edge estimate of the ``q``-quantile (conservative).

        Within the finite buckets this returns the bucket's upper edge.
        A quantile landing in the terminal overflow bucket interpolates
        linearly between the last finite edge and the observed maximum
        (instead of collapsing to the last edge or blowing up to +inf),
        so tail quantiles of long-tailed latencies stay informative.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                if i < len(self.boundaries):
                    return self.boundaries[i]
                last = self.boundaries[-1]
                top = self.max if self.max is not None and self.max > last else last
                if c == 0:
                    return top
                within = (target - (seen - c)) / c
                return last + within * (top - last)
        return float("inf")  # unreachable: seen == count >= target at the end


class Metrics:
    """Named registry of counters/gauges/histograms for one rank.

    Instruments are get-or-create by name; re-requesting a name with a
    different kind (or different histogram boundaries) raises, because the
    merge contract depends on structural agreement across ranks.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- registration -------------------------------------------------------------

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other, table in owners.items():
            if other != kind and name in table:
                raise ValueError(f"{name!r} is already registered as a {other}")

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_unique(name, "counter")
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_unique(name, "gauge")
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str, boundaries=DEFAULT_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_unique(name, "histogram")
            h = self._histograms[name] = Histogram(boundaries)
        elif h.boundaries != tuple(float(b) for b in boundaries):
            raise ValueError(
                f"histogram {name!r} already registered with boundaries "
                f"{h.boundaries}"
            )
        return h

    # -- hot-path conveniences ----------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (JSON-ready, mergeable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "boundaries": list(h.boundaries),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                    "max": h.max,
                }
                for n, h in sorted(self._histograms.items())
            },
        }


def merge_snapshots(a: dict, b: dict) -> dict:
    """Merge two :meth:`Metrics.snapshot` dicts (associative, commutative).

    Counters and histogram bins add; gauges take the max. Histograms with
    the same name must share boundaries (raises ``ValueError`` otherwise).
    """
    counters = dict(a.get("counters", {}))
    for name, value in b.get("counters", {}).items():
        counters[name] = counters.get(name, 0.0) + value
    gauges = dict(a.get("gauges", {}))
    for name, value in b.get("gauges", {}).items():
        gauges[name] = max(gauges[name], value) if name in gauges else value
    histograms = {n: dict(h) for n, h in a.get("histograms", {}).items()}
    for name, h in b.get("histograms", {}).items():
        mine = histograms.get(name)
        if mine is None:
            histograms[name] = dict(h)
            continue
        if list(mine["boundaries"]) != list(h["boundaries"]):
            raise ValueError(
                f"cannot merge histogram {name!r}: boundary mismatch "
                f"{mine['boundaries']} vs {h['boundaries']}"
            )
        # .get("max"): snapshots written before the max slot existed merge
        # as if they never observed anything above the last edge.
        maxes = [m for m in (mine.get("max"), h.get("max")) if m is not None]
        histograms[name] = {
            "boundaries": list(mine["boundaries"]),
            "counts": [x + y for x, y in zip(mine["counts"], h["counts"])],
            "sum": mine["sum"] + h["sum"],
            "count": mine["count"] + h["count"],
            "max": max(maxes) if maxes else None,
        }
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }
