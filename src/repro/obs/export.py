"""Trace exporters: Chrome trace-event JSON, JSONL, cross-rank aggregation.

Three consumers, three formats:

- **Chrome trace-event JSON** (:func:`write_chrome_trace`): one file per
  rank, loadable in ``chrome://tracing`` / Perfetto. Spans become complete
  (``"ph": "X"``) events; the rank is the ``pid``, so merging per-rank
  files (:func:`merge_chrome_traces`) yields one timeline with a process
  lane per rank — cross-rank skew is *visible*, not just summarised.
- **JSONL** — written by :class:`repro.obs.instrument.ObsCallback` in the
  same one-object-per-line idiom as :class:`repro.utils.runlog.RunLogger`,
  so the experiment tables and the traces parse with the same reader.
- **Cross-rank aggregation** (:func:`allgather_named_floats` /
  :func:`skew_report`): per-rank phase totals travel over the existing
  ``Communicator.allgather`` (no new wire protocol), and the skew report
  turns them into per-phase min/median/max and a straggler ratio — the
  quantity the paper's exact-sampling argument says should stay ≈ 1.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.obs.tracer import SpanEvent, Tracer

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "load_chrome_trace",
    "merge_chrome_traces",
    "trace_file_name",
    "metrics_file_name",
    "allgather_named_floats",
    "skew_report",
]


def trace_file_name(rank: int) -> str:
    """Canonical per-rank trace file name (``trace.rank003.json``)."""
    return f"trace.rank{rank:03d}.json"


def metrics_file_name(rank: int) -> str:
    """Canonical per-rank metrics snapshot name (``metrics.rank003.json``).

    The payload is one :meth:`repro.obs.metrics.Metrics.snapshot` dict —
    the mergeable form, so ``tools/trace.py merge``/``summary`` can fold
    any subset of ranks with :func:`~repro.obs.metrics.merge_snapshots`.
    """
    return f"metrics.rank{rank:03d}.json"


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return repr(value)


def chrome_trace_events(
    events: Iterable[SpanEvent], pid: int = 0
) -> list[dict]:
    """Convert spans to Chrome trace-event dicts, sorted by start time.

    Timestamps (``ts``) and durations (``dur``) are microseconds, as the
    trace-event spec requires; sorting guarantees monotone ``ts`` so
    consumers can stream.
    """
    out = []
    for ev in events:
        entry = {
            "name": ev.name,
            "cat": ev.name.split(".", 1)[0],
            "ph": "X",
            "ts": ev.t0_ns / 1e3,
            "dur": ev.dur_ns / 1e3,
            "pid": pid,
            "tid": ev.tid,
            "args": {
                "depth": ev.depth,
                **{k: _json_safe(v) for k, v in (ev.attrs or {}).items()},
            },
        }
        out.append(entry)
    out.sort(key=lambda e: (e["ts"], -e["dur"]))
    return out


def write_chrome_trace(
    tracer: Tracer, path: str | Path, rank: int | None = None
) -> Path:
    """Write one rank's spans as a Chrome trace-event JSON file.

    The document is the object form (``{"traceEvents": [...]}``) with a
    ``process_name`` metadata event naming the rank, plus drop accounting
    in ``metadata`` so a truncated trace is labelled as such.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    pid = tracer.rank if rank is None else rank
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"rank {pid}"},
        }
    ]
    events.extend(chrome_trace_events(tracer.events, pid=pid))
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"rank": pid, "dropped_events": tracer.dropped},
    }
    path.write_text(json.dumps(doc) + "\n", encoding="utf-8")
    return path


def load_chrome_trace(path: str | Path) -> list[dict]:
    """Load trace events from either the object or bare-array JSON form."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(doc, dict):
        events = doc.get("traceEvents", [])
    else:
        events = doc
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome trace (no event list)")
    return events


def merge_chrome_traces(paths: Sequence[str | Path], out: str | Path) -> Path:
    """Concatenate per-rank trace files into one multi-process timeline.

    Ranks stay distinguishable through their ``pid``; events are re-sorted
    globally so the merged stream stays monotone in ``ts``.
    """
    merged: list[dict] = []
    for path in paths:
        merged.extend(load_chrome_trace(path))
    meta = [e for e in merged if e.get("ph") == "M"]
    data = [e for e in merged if e.get("ph") != "M"]
    data.sort(key=lambda e: (e.get("ts", 0.0), -e.get("dur", 0.0)))
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps({"traceEvents": meta + data, "displayTimeUnit": "ms"}) + "\n",
        encoding="utf-8",
    )
    return out


# -- cross-rank aggregation ---------------------------------------------------------


def _keys_signature(keys: Sequence[str]) -> float:
    return float(zlib.crc32("\x1f".join(keys).encode("utf-8")))


def allgather_named_floats(comm, values: dict[str, float]) -> list[dict[str, float]]:
    """Gather one ``{name: float}`` dict per rank over ``comm.allgather``.

    Every rank must pass the *same key set* (the dicts come from identical
    instrumentation code paths); a CRC over the sorted key list rides along
    and a mismatch raises ``ValueError`` instead of silently zipping
    disagreeing schemas.
    """
    keys = sorted(values)
    sig = _keys_signature(keys)
    vec = np.array([sig] + [float(values[k]) for k in keys])
    gathered = comm.allgather(vec)
    out = []
    for rank, g in enumerate(gathered):
        if g.shape[0] != vec.shape[0] or g[0] != sig:
            raise ValueError(
                f"rank {rank} gathered a different key schema "
                f"(len {g.shape[0] - 1} vs {len(keys)}); all ranks must "
                "aggregate the same named values"
            )
        out.append({k: float(v) for k, v in zip(keys, g[1:])})
    return out


def skew_report(per_rank: Sequence[dict[str, float]]) -> dict[str, dict[str, float]]:
    """Per-name cross-rank spread: min/median/max, argmax rank, skew ratio.

    ``skew`` is ``max / median`` — 1.0 means perfectly balanced ranks; the
    straggler effect the paper's exact sampling removes shows up here as
    ``skew >> 1`` on the ``sample`` phase of MCMC runs.
    """
    if not per_rank:
        return {}
    report: dict[str, dict[str, float]] = {}
    for name in sorted(per_rank[0]):
        vals = np.array([r[name] for r in per_rank])
        med = float(np.median(vals))
        report[name] = {
            "min": float(vals.min()),
            "median": med,
            "max": float(vals.max()),
            "max_rank": int(vals.argmax()),
            "skew": float(vals.max() / med) if med > 0 else 1.0,
        }
    return report
