"""Nested, exception-safe span tracing with bounded per-rank buffers.

The scalability claims of the paper are wall-clock claims: Figure 3's weak
scaling and Table 6's raw numbers only hold if we can say *where* each
step's time goes — sampling vs. local-energy vs. gradient vs. allreduce —
per rank. A :class:`Tracer` is one rank's in-memory recorder for exactly
that question:

- **Spans** are named intervals with attributes::

      with tracer.span("allreduce", bytes=grad.nbytes):
          comm.allreduce(grad)

  They nest (a ``comm.allreduce`` span inside a ``gradient`` span), close
  on exceptions (the ``with`` form is the contract; the lint rule
  ``obs-span-leak`` flags raw :meth:`begin` without a ``finally``-paired
  :meth:`end`), and carry monotonic-clock timestamps
  (``time.perf_counter_ns`` — never the wall clock, so traces are immune
  to NTP steps).
- **Bounded memory.** At most ``max_events`` completed spans are kept;
  beyond that new spans are counted in :attr:`dropped` instead of stored,
  so an unbounded training loop cannot OOM through its own telemetry.
- **Near-zero cost when disabled.** A disabled tracer returns a shared
  no-op context manager from :meth:`span` — no allocation, no clock read —
  so instrumentation can stay in the hot paths permanently
  (``benchmarks/bench_obs_overhead.py`` holds this to ≤ 0.5 %).

One tracer per rank; cross-rank views are assembled by the exporters
(:mod:`repro.obs.export`) from per-rank buffers, never by sharing a tracer
across processes.
"""

from __future__ import annotations

import threading
import time

__all__ = ["SpanEvent", "Tracer", "NULL_TRACER"]


class SpanEvent:
    """One completed span: name, start, duration, nesting depth, attributes.

    Timestamps are ``perf_counter_ns`` values relative to the tracer's
    origin (its construction), so events from one tracer share a timeline.
    """

    __slots__ = ("name", "t0_ns", "dur_ns", "depth", "tid", "attrs")

    def __init__(
        self,
        name: str,
        t0_ns: int,
        dur_ns: int,
        depth: int,
        tid: int,
        attrs: dict | None,
    ):
        self.name = name
        self.t0_ns = t0_ns
        self.dur_ns = dur_ns
        self.depth = depth
        self.tid = tid
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanEvent({self.name!r}, t0={self.t0_ns}ns, "
            f"dur={self.dur_ns}ns, depth={self.depth})"
        )


class _OpenSpan:
    """Handle returned by :meth:`Tracer.begin`; closed by :meth:`Tracer.end`."""

    __slots__ = ("name", "t0_ns", "depth", "tid", "attrs", "closed")

    def __init__(self, name: str, t0_ns: int, depth: int, tid: int, attrs: dict | None):
        self.name = name
        self.t0_ns = t0_ns
        self.depth = depth
        self.tid = tid
        self.attrs = attrs
        self.closed = False


class _NoopSpan:
    """Shared do-nothing context manager / handle for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP = _NoopSpan()


class _SpanContext:
    """The ``with tracer.span(...)`` guard: always records, even on raise."""

    __slots__ = ("_tracer", "_open")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict | None):
        self._tracer = tracer
        self._open = tracer.begin(name, **(attrs or {}))

    def __enter__(self) -> _OpenSpan:
        return self._open

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # Annotate rather than swallow: the span closes, the exception
            # propagates, and the trace shows where it happened.
            attrs = dict(self._open.attrs or {})
            attrs["error"] = exc_type.__name__
            self._open.attrs = attrs
        self._tracer.end(self._open)


class Tracer:
    """Per-rank span recorder with a bounded buffer.

    Parameters
    ----------
    enabled:
        When False, :meth:`span`/:meth:`begin`/:meth:`end` are no-ops that
        allocate nothing and never read the clock.
    rank:
        Recorded into exports (one Chrome-trace process per rank).
    max_events:
        Completed-span buffer bound; excess spans are dropped (counted in
        :attr:`dropped`), never grown.
    """

    def __init__(self, enabled: bool = True, rank: int = 0, max_events: int = 200_000):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.enabled = bool(enabled)
        self.rank = int(rank)
        self.max_events = int(max_events)
        self.dropped = 0
        self._events: list[SpanEvent] = []
        self._local = threading.local()  # per-thread open-span stack
        self._tids: dict[int, int] = {}  # thread ident -> small stable id
        self._lock = threading.Lock()
        self._origin_ns = time.perf_counter_ns()

    # -- recording ----------------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def span(self, name: str, **attrs):
        """Context manager measuring the enclosed block as one span.

        This is the canonical API: it is exception-safe by construction.
        """
        if not self.enabled:
            return _NOOP
        return _SpanContext(self, name, attrs or None)

    def begin(self, name: str, **attrs) -> _OpenSpan | _NoopSpan:
        """Open a span manually. MUST be closed with :meth:`end` in a
        ``finally`` block — prefer :meth:`span`; the ``obs-span-leak`` lint
        rule enforces this pairing."""
        if not self.enabled:
            return _NOOP
        stack = self._stack()
        open_span = _OpenSpan(
            name,
            time.perf_counter_ns() - self._origin_ns,
            len(stack),
            self._tid(),
            attrs or None,
        )
        stack.append(open_span)
        return open_span

    def end(self, span: _OpenSpan | _NoopSpan, **attrs) -> None:
        """Close ``span`` (idempotent) and record the completed event."""
        if not self.enabled or span is _NOOP or isinstance(span, _NoopSpan):
            return
        if span.closed:
            return
        span.closed = True
        now = time.perf_counter_ns() - self._origin_ns
        stack = self._stack()
        if span in stack:  # tolerate out-of-order closes of overlapping spans
            stack.remove(span)
        if attrs:
            merged = dict(span.attrs or {})
            merged.update(attrs)
            span.attrs = merged
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(
            SpanEvent(
                span.name,
                span.t0_ns,
                max(0, now - span.t0_ns),
                span.depth,
                span.tid,
                span.attrs,
            )
        )

    def instant(self, name: str, **attrs) -> None:
        """Record a zero-duration marker event."""
        if not self.enabled:
            return
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(
            SpanEvent(
                name,
                time.perf_counter_ns() - self._origin_ns,
                0,
                len(self._stack()),
                self._tid(),
                attrs or None,
            )
        )

    # -- inspection ---------------------------------------------------------------

    @property
    def events(self) -> list[SpanEvent]:
        """Completed spans, in completion order (children before parents)."""
        return self._events

    def open_spans(self) -> int:
        """Open spans on the *calling* thread (0 after clean unwinding)."""
        return len(self._stack())

    def clear(self) -> None:
        """Drop all completed events (open spans stay open)."""
        self._events.clear()
        self.dropped = 0

    def totals(self, depth: int | None = None) -> dict[str, dict[str, float]]:
        """Aggregate completed spans by name.

        Returns ``{name: {"total_s", "count", "mean_s"}}``; ``depth``
        restricts to spans at one nesting level (``depth=1`` is the
        :class:`~repro.core.vqmc.VQMC` phase level, under ``step``).
        """
        sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        for ev in self._events:
            if depth is not None and ev.depth != depth:
                continue
            sums[ev.name] = sums.get(ev.name, 0.0) + ev.dur_ns * 1e-9
            counts[ev.name] = counts.get(ev.name, 0) + 1
        return {
            name: {
                "total_s": sums[name],
                "count": float(counts[name]),
                "mean_s": sums[name] / counts[name],
            }
            for name in sorted(sums)
        }


#: Shared disabled tracer: the default for every instrumented component, so
#: un-instrumented use pays one attribute load and an ``if`` per call site.
NULL_TRACER = Tracer(enabled=False, max_events=1)
