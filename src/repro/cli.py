"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``train``
    One VQMC training run under the paper's protocol; prints progress and
    the final evaluation, optionally writes a JSONL run log and checkpoint.
``maxcut``
    Solve a Max-Cut instance with every method (Random/GW/BM/NES/VQMC) and
    print the comparison table.
``exact``
    Exact ground energy of a small instance (eigsh + our Lanczos).
``sweep``
    Grid sweep over seeds/optimisers/sizes with a mean ± std table.

All commands accept ``--help``. The CLI is a thin shell over
:mod:`repro.experiments`; everything it does is available as a library call.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalable VQMC with exact autoregressive sampling "
        "(SC 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t = sub.add_parser("train", help="run one VQMC training job")
    t.add_argument("--problem", default="tim",
                   choices=["tim", "maxcut", "chain"], help="Hamiltonian family")
    t.add_argument("--n", type=int, default=20, help="number of sites")
    t.add_argument("--arch", default="made", choices=["made", "rbm", "mean_field", "rnn"])
    t.add_argument("--sampler", default="auto",
                   choices=["auto", "mcmc", "tempering"])
    t.add_argument("--optimizer", default="adam",
                   choices=["sgd", "adam", "sgd+sr"])
    t.add_argument("--iterations", type=int, default=300)
    t.add_argument("--batch-size", type=int, default=1024)
    t.add_argument("--hidden", type=int, default=None)
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--instance-seed", type=int, default=0)
    t.add_argument("--log", default=None, help="JSONL run-log path")
    t.add_argument("--checkpoint", default=None, help="final checkpoint path")
    t.add_argument("--quiet", action="store_true")

    m = sub.add_parser("maxcut", help="compare all Max-Cut solvers")
    m.add_argument("--n", type=int, default=20)
    m.add_argument("--instance-seed", type=int, default=0)
    m.add_argument("--iterations", type=int, default=150)
    m.add_argument("--batch-size", type=int, default=512)
    m.add_argument("--seed", type=int, default=0)

    e = sub.add_parser("exact", help="exact ground state (n <= 20)")
    e.add_argument("--problem", default="tim", choices=["tim", "maxcut", "chain"])
    e.add_argument("--n", type=int, default=10)
    e.add_argument("--instance-seed", type=int, default=0)

    s = sub.add_parser("sweep", help="multi-seed grid sweep")
    s.add_argument("--problem", default="tim", choices=["tim", "maxcut", "chain"])
    s.add_argument("--n", type=int, nargs="+", default=[16])
    s.add_argument("--optimizer", nargs="+", default=["adam"],
                   choices=["sgd", "adam", "sgd+sr"])
    s.add_argument("--arch", default="made", choices=["made", "rbm", "mean_field", "rnn"])
    s.add_argument("--sampler", default="auto",
                   choices=["auto", "mcmc", "tempering"])
    s.add_argument("--seeds", type=int, default=3)
    s.add_argument("--iterations", type=int, default=50)
    s.add_argument("--batch-size", type=int, default=256)
    s.add_argument("--workers", type=int, default=1)
    s.add_argument("--metric", default="final_energy",
                   choices=["final_energy", "final_std", "best_cut",
                            "train_seconds"])

    sub.add_parser("selfcheck", help="fast end-to-end validation battery")

    p = sub.add_parser("plan", help="cluster scaling report for a problem size")
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--batch-size", type=int, default=1024)
    p.add_argument("--iterations", type=int, default=300)
    p.add_argument("--hidden", type=int, default=None)
    return parser


# ---------------------------------------------------------------------------


def _cmd_train(args) -> int:
    from repro.core import VQMC, History, ProgressPrinter
    from repro.core.checkpoint import save_checkpoint
    from repro.experiments import (
        build_model,
        build_optimizer,
        build_sampler,
        make_hamiltonian,
    )
    from repro.utils.runlog import RunLogger

    ham = make_hamiltonian(args.problem, args.n, seed=args.instance_seed)
    model = build_model(args.arch, args.n, args.seed, hidden=args.hidden)
    sampler = build_sampler(args.sampler, args.n)
    optimizer, sr = build_optimizer(args.optimizer, model)
    vqmc = VQMC(model, ham, sampler, optimizer, sr=sr, seed=args.seed + 10_000)

    callbacks: list = [History()]
    if not args.quiet:
        callbacks.append(ProgressPrinter(every=max(1, args.iterations // 10)))
    if args.log:
        callbacks.append(RunLogger(args.log, meta=vars(args)))

    vqmc.run(args.iterations, batch_size=args.batch_size, callbacks=callbacks)
    stats = vqmc.evaluate(batch_size=args.batch_size)
    print(f"final: {stats}")
    if args.problem == "maxcut":
        x = sampler.sample(model, args.batch_size, vqmc.rng)
        print(f"best cut in evaluation batch: {ham.cut_value(x).max():.1f}")
    if args.checkpoint:
        save_checkpoint(vqmc, args.checkpoint)
        print(f"checkpoint written to {args.checkpoint}")
    return 0


def _cmd_maxcut(args) -> int:
    from repro.baselines import (
        BurerMonteiro,
        GoemansWilliamson,
        NaturalEvolutionStrategies,
        random_cut,
    )
    from repro.experiments import make_hamiltonian, train_once
    from repro.utils.tables import format_table

    ham = make_hamiltonian("maxcut", args.n, seed=args.instance_seed)
    w = ham.adjacency
    rows = [
        ["Random", random_cut(w, seed=args.seed).value],
        ["Goemans-Williamson",
         GoemansWilliamson(rounds=100).solve(w, seed=args.seed).value],
        ["Burer-Monteiro",
         BurerMonteiro(rounds=100, restarts=2).solve(w, seed=args.seed).value],
    ]
    nes = NaturalEvolutionStrategies(lr=0.5, batch_size=args.batch_size).minimize(
        lambda x: ham.diagonal(x), args.n,
        iterations=args.iterations, seed=args.seed,
    )
    rows.append(["NES (mean-field)", -nes.best_value])
    out = train_once(
        ham, "made", "auto", "sgd+sr",
        args.iterations, args.batch_size, seed=args.seed,
    )
    rows.append(["VQMC (MADE+AUTO+SR)", out.best_cut])
    if args.n <= 20:
        from repro.exact import brute_force_max_cut

        opt, _ = brute_force_max_cut(w)
        rows.append(["(exact optimum)", opt])
    print(format_table(["method", "cut"],
                       rows, title=f"Max-Cut n={args.n}, |E|={ham.num_edges()}",
                       precision=1))
    return 0


def _cmd_exact(args) -> int:
    from repro.exact import ground_state, lanczos_ground_state
    from repro.experiments import make_hamiltonian

    ham = make_hamiltonian(args.problem, args.n, seed=args.instance_seed)
    gs = ground_state(ham)
    lz = lanczos_ground_state(ham)
    print(f"{type(ham).__name__} n={args.n}")
    print(f"eigsh ground energy  : {gs.energy:.10f}")
    print(f"our Lanczos          : {lz.energy:.10f} "
          f"({lz.iterations} iterations, residual {lz.residual_norm:.2e})")
    if args.problem == "chain":
        from repro.hamiltonians import tfim_chain_exact_energy

        print(f"Jordan-Wigner closed form: "
              f"{tfim_chain_exact_energy(args.n):.10f}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments import Sweep, TrialSpec, aggregate
    from repro.utils.tables import format_table

    sweep = Sweep(
        base=TrialSpec(
            problem=args.problem,
            arch=args.arch,
            sampler=args.sampler,
            iterations=args.iterations,
            batch_size=args.batch_size,
        ),
        grid={
            "n": args.n,
            "optimizer": args.optimizer,
            "seed": list(range(args.seeds)),
        },
    )
    records = sweep.run(workers=args.workers)
    table = aggregate(records, by=("n", "optimizer"), metric=args.metric)
    rows = [[n, opt, (mean, std)] for (n, opt), (mean, std) in table.items()]
    print(format_table(
        ["n", "optimizer", args.metric],
        rows,
        title=f"{args.problem} sweep — {args.metric} over {args.seeds} seeds",
        precision=3,
    ))
    return 0


def _cmd_selfcheck(args) -> int:
    from repro.validation import run_selfcheck

    results = run_selfcheck(verbose=True)
    return 0 if all(r.passed for r in results) else 1


def _cmd_plan(args) -> int:
    from repro.cluster.report import scaling_report

    print(scaling_report(
        args.n,
        global_batch=args.batch_size,
        iterations=args.iterations,
        hidden=args.hidden,
    ))
    return 0


_COMMANDS = {
    "train": _cmd_train,
    "maxcut": _cmd_maxcut,
    "exact": _cmd_exact,
    "sweep": _cmd_sweep,
    "selfcheck": _cmd_selfcheck,
    "plan": _cmd_plan,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=6, suppress=True)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
