"""Hardware specifications for the simulated cluster.

Defaults model the paper's testbed: NVIDIA Tesla V100 (32 GB) GPUs, 4 per
node with NVLink, nodes connected by InfiniBand — up to the paper's largest
configuration, 6 × 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DeviceSpec", "NodeSpec", "ClusterSpec", "V100", "DGX_NODE"]


@dataclass(frozen=True)
class DeviceSpec:
    """One accelerator.

    Attributes
    ----------
    peak_flops:
        Peak throughput for the arithmetic used (fp32 here).
    mem_bytes:
        Device memory capacity.
    achieved_fraction:
        Fraction of peak the small GEMMs of this workload sustain —
        batched (bs × n) @ (n × h) products are far from the GEMM roofline.
    kernel_overhead_s:
        Fixed per-forward-pass cost (kernel launches + Python dispatch).
        Dominates when matrices are small; this is why Table 1's MADE times
        scale almost exactly linearly with n (n sequential passes).
    """

    name: str
    peak_flops: float
    mem_bytes: float
    achieved_fraction: float = 0.10
    kernel_overhead_s: float = 2.4e-4

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.achieved_fraction


@dataclass(frozen=True)
class NodeSpec:
    """A multi-GPU node with an intra-node interconnect."""

    device: DeviceSpec
    gpus: int = 4
    intra_bw_bytes: float = 150e9  # NVLink per-direction aggregate
    intra_latency_s: float = 5e-6


@dataclass(frozen=True)
class ClusterSpec:
    """Multiple nodes over an inter-node fabric."""

    node: NodeSpec
    nodes: int = 6
    inter_bw_bytes: float = 12.5e9  # 100 Gb/s InfiniBand
    inter_latency_s: float = 2e-6

    @property
    def total_gpus(self) -> int:
        return self.nodes * self.node.gpus

    def configurations(self) -> list[tuple[int, int]]:
        """The paper's GPU configurations (L₁ nodes × L₂ GPUs/node)."""
        configs = []
        for n_nodes in range(1, self.nodes + 1):
            for gpn in range(1, self.node.gpus + 1):
                configs.append((n_nodes, gpn))
        return configs


V100 = DeviceSpec(
    name="V100-32GB",
    peak_flops=15.7e12,  # fp32
    mem_bytes=32 * 2**30,
)

DGX_NODE = NodeSpec(device=V100, gpus=4)
