"""Human-readable scaling report for a problem/cluster combination.

Combines the calibrated cost model, the memory model, the parallelism
planner and the straggler simulator into one text report — the "should I
ask for more GPUs" answer sheet. Exposed as ``python -m repro plan``.
"""

from __future__ import annotations

import io

import numpy as np

from repro.cluster.device import DGX_NODE, ClusterSpec
from repro.cluster.efficiency import auto_parallel_efficiency, mcmc_parallel_efficiency
from repro.cluster.memory import MemoryModel
from repro.cluster.perfmodel import MadeAutoCostModel, RbmMcmcCostModel
from repro.cluster.planner import plan_parallelism
from repro.cluster.simulator import DataParallelSimulator
from repro.models.made import default_hidden_size
from repro.utils.tables import format_table

__all__ = ["scaling_report"]


def scaling_report(
    n: int,
    global_batch: int = 1024,
    iterations: int = 300,
    hidden: int | None = None,
    cluster: ClusterSpec | None = None,
    top_plans: int = 3,
) -> str:
    """Return the report text for a TIM-style problem of dimension ``n``."""
    if n < 1 or global_batch < 1:
        raise ValueError("n and global_batch must be positive")
    cluster = cluster or ClusterSpec(node=DGX_NODE)
    h = hidden if hidden is not None else default_hidden_size(n)
    made = MadeAutoCostModel(device=cluster.node.device, cluster=cluster)
    rbm = RbmMcmcCostModel(device=cluster.node.device, cluster=cluster)
    mem = MemoryModel(device=cluster.node.device)

    out = io.StringIO()
    w = out.write
    w(f"Scaling report — TIM n={n}, MADE h={h}, global batch {global_batch}, "
      f"{iterations} iterations\n")
    w(f"Cluster: {cluster.nodes} nodes × {cluster.node.gpus} × "
      f"{cluster.node.device.name}\n\n")

    # -- single-device picture ---------------------------------------------------
    d = 2 * h * n + h + n
    try:
        max_mbs = mem.max_mini_batch(n, h)
        mem_line = f"memory-saturating mini-batch 2^{int(np.log2(max_mbs))}"
    except ValueError:
        mem_line = "does not fit on one device"
    w("Single device:\n")
    w(f"  parameters d = {d}; {mem_line}\n")
    w(f"  MADE+AUTO: {made.training_time(n, global_batch, iterations):.1f} s"
      f" ({made.iteration_time(n, global_batch)*1e3:.1f} ms/iter)\n")
    w(f"  RBM+MCMC : {rbm.training_time(n, global_batch, iterations):.1f} s"
      f" (chain k+bs/c = {rbm.chain_steps(n, global_batch)})\n\n")

    # -- recommended plans -----------------------------------------------------------
    plans = plan_parallelism(
        n, global_batch, hidden=h, cluster=cluster, cost_model=made,
        memory_model=mem,
    )[:top_plans]
    rows = [
        [f"{p.data_ranks}xDP · {p.model_shards}xMP", p.mini_batch,
         p.iteration_time * 1e3, p.dp_comm_time * 1e6, p.mp_comm_time * 1e6,
         "yes" if p.memory_ok else "NO"]
        for p in plans
    ]
    w(format_table(
        ["plan", "mbs", "iter (ms)", "DP comm (µs)", "MP comm (µs)", "fits"],
        rows, title="Recommended execution plans",
    ))
    w("\n\n")

    # -- parallel efficiency ------------------------------------------------------------
    best = plans[0]
    ls = sorted({1, 2, 4, 8, cluster.total_gpus})
    rows = [
        ["AUTO (Eq. 15)"] + [
            f"{auto_parallel_efficiency(L, n, h, max(1, global_batch // L)):.2f}"
            for L in ls
        ],
        ["MCMC (Eq. 14, k=3n+100)"] + [
            f"{mcmc_parallel_efficiency(L, max(1, global_batch // L), 3 * n + 100):.2f}"
            for L in ls
        ],
    ]
    w(format_table(["sampler"] + [f"L={L}" for L in ls], rows,
                   title="Speedup over one device"))
    w("\n\n")

    # -- robustness ------------------------------------------------------------------------
    L = best.data_ranks * best.model_shards
    gpn = min(L, cluster.node.gpus)
    nodes = max(1, L // gpn)
    base = DataParallelSimulator(
        n=n, mini_batch=best.mini_batch, n_nodes=nodes, gpus_per_node=gpn,
        hidden=h, cluster=cluster, cost_model=made,
    ).run(3)
    factors = np.ones(nodes * gpn)
    factors[0] = 1.5
    slow = DataParallelSimulator(
        n=n, mini_batch=best.mini_batch, n_nodes=nodes, gpus_per_node=gpn,
        hidden=h, cluster=cluster, cost_model=made, speed_factors=factors,
    ).run(3)
    w("Robustness (discrete-event simulation of the best plan):\n")
    w(f"  homogeneous iteration: {base.mean_iteration*1e3:.2f} ms\n")
    w(f"  with one 1.5x straggler: {slow.mean_iteration*1e3:.2f} ms "
      f"({slow.slowdown_vs(base):.2f}x — synchronous steps are gated by "
      "the slowest rank)\n")
    return out.getvalue()
