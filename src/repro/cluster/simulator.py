"""Discrete-event simulation of data-parallel VQMC iterations.

The closed-form cost model (:mod:`repro.cluster.perfmodel`) assumes
perfectly homogeneous devices. Real clusters have stragglers — thermal
throttling, noisy neighbours, asymmetric NUMA — and one slow rank gates
every synchronous allreduce. This simulator plays an iteration timeline
per rank:

    sample → measure → backward → [allreduce barrier] → update

with per-rank speed factors and optional random jitter, and reports wall
time, per-rank idle time and the critical-path breakdown. For homogeneous
ranks it reproduces the closed-form model exactly (tested); with
stragglers it quantifies the paper-adjacent question "what breaks weak
scaling in practice".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.comm_model import hierarchical_allreduce_time
from repro.cluster.device import DGX_NODE, ClusterSpec
from repro.cluster.perfmodel import MadeAutoCostModel
from repro.models.made import default_hidden_size

__all__ = ["RankTimeline", "SimulationResult", "DataParallelSimulator"]


@dataclass
class RankTimeline:
    """Per-rank phase durations for one iteration (seconds)."""

    rank: int
    sample: float
    measure: float
    backward: float
    idle: float  # waiting at the allreduce barrier
    comm: float
    update: float

    @property
    def busy(self) -> float:
        return self.sample + self.measure + self.backward + self.comm + self.update

    @property
    def total(self) -> float:
        return self.busy + self.idle


@dataclass
class SimulationResult:
    """Aggregate of a simulated run."""

    iteration_times: np.ndarray  # (iterations,)
    timelines: list[RankTimeline]  # last iteration's per-rank breakdown
    utilization: np.ndarray  # (ranks,) busy / total over the run
    extras: dict = field(default_factory=dict)

    @property
    def mean_iteration(self) -> float:
        return float(self.iteration_times.mean())

    def slowdown_vs(self, baseline: "SimulationResult") -> float:
        return self.mean_iteration / baseline.mean_iteration


class DataParallelSimulator:
    """Simulate L-rank synchronous data-parallel training.

    Parameters
    ----------
    n, mini_batch:
        Problem size and per-rank batch.
    n_nodes, gpus_per_node:
        Cluster layout (L = n_nodes × gpus_per_node ranks).
    hidden:
        Model width (default: paper's 5(log n)²).
    speed_factors:
        Per-rank multiplier on compute durations (1.0 = nominal; 2.0 = a
        2× straggler). Length L; default all-1.
    jitter:
        Lognormal σ of random per-phase noise (0 = deterministic).
    """

    def __init__(
        self,
        n: int,
        mini_batch: int,
        n_nodes: int = 1,
        gpus_per_node: int = 1,
        hidden: int | None = None,
        cluster: ClusterSpec | None = None,
        cost_model: MadeAutoCostModel | None = None,
        speed_factors: np.ndarray | None = None,
        jitter: float = 0.0,
    ):
        if n < 1 or mini_batch < 1:
            raise ValueError("n and mini_batch must be positive")
        self.n = n
        self.mini_batch = mini_batch
        self.n_nodes = n_nodes
        self.gpus_per_node = gpus_per_node
        self.ranks = n_nodes * gpus_per_node
        self.hidden = hidden if hidden is not None else default_hidden_size(n)
        self.cluster = cluster or ClusterSpec(node=DGX_NODE)
        self.cost = cost_model or MadeAutoCostModel(
            device=self.cluster.node.device, cluster=self.cluster
        )
        if speed_factors is None:
            speed_factors = np.ones(self.ranks)
        speed_factors = np.asarray(speed_factors, dtype=np.float64)
        if speed_factors.shape != (self.ranks,):
            raise ValueError(
                f"speed_factors must have length {self.ranks}, "
                f"got {speed_factors.shape}"
            )
        if np.any(speed_factors <= 0):
            raise ValueError("speed factors must be positive")
        self.speed_factors = speed_factors
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.jitter = jitter

    # -- nominal phase durations -----------------------------------------------------

    def _nominal(self) -> tuple[float, float, float, float, float]:
        sample = self.cost.sampling_time(self.n, self.mini_batch, self.hidden)
        measure = self.cost.measurement_time(self.n, self.mini_batch, self.hidden)
        backward = self.cost.backward_time(self.n, self.mini_batch, self.hidden)
        d = 2 * self.hidden * self.n + self.hidden + self.n
        comm = hierarchical_allreduce_time(
            d, self.n_nodes, self.gpus_per_node, self.cluster
        )
        update = d * 2.0 / self.cost.device.effective_flops
        return sample, measure, backward, comm, update

    def run(
        self, iterations: int = 10, rng: np.random.Generator | None = None
    ) -> SimulationResult:
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        rng = rng if rng is not None else np.random.default_rng(0)
        sample0, measure0, backward0, comm, update0 = self._nominal()

        iter_times = np.empty(iterations)
        busy = np.zeros(self.ranks)
        total = np.zeros(self.ranks)
        timelines: list[RankTimeline] = []
        for it in range(iterations):
            if self.jitter > 0:
                noise = rng.lognormal(0.0, self.jitter, size=(self.ranks, 3))
            else:
                noise = np.ones((self.ranks, 3))
            phases = np.stack(
                [
                    sample0 * noise[:, 0],
                    measure0 * noise[:, 1],
                    backward0 * noise[:, 2],
                ],
                axis=1,
            ) * self.speed_factors[:, None]
            arrive = phases.sum(axis=1)  # time each rank reaches the barrier
            barrier = float(arrive.max())
            idle = barrier - arrive
            wall = barrier + comm + update0
            iter_times[it] = wall
            busy += arrive + comm + update0
            total += wall
            if it == iterations - 1:
                timelines = [
                    RankTimeline(
                        rank=r,
                        sample=float(phases[r, 0]),
                        measure=float(phases[r, 1]),
                        backward=float(phases[r, 2]),
                        idle=float(idle[r]),
                        comm=comm,
                        update=update0,
                    )
                    for r in range(self.ranks)
                ]
        return SimulationResult(
            iteration_times=iter_times,
            timelines=timelines,
            utilization=busy / total,
            extras={"barrier_comm": comm},
        )
