"""Per-iteration time models for MADE+AUTO and RBM+MCMC training.

Both models follow the paper's §4 accounting. One VQMC iteration is:

  sampling  →  local-energy measurement  →  backward  →  allreduce  →  update

and each network forward pass costs a fixed *kernel/dispatch overhead*
``t₀`` plus ``flops / effective_rate``. These two scalars are the only free
constants; :func:`calibrate_to_table1` fits them to the paper's measured
single-GPU times (Table 1), after which the model reproduces the *shape* of
every scaling table:

- Table 1 / Table 5-style: time linear in n for MADE (n sequential
  sampling passes), affine in the chain length for MCMC.
- Fig. 3 / Table 7: normalised weak-scaling times ≈ 1 across GPU
  configurations, because the only L-dependent term (hierarchical
  allreduce of d = 2hn + h + n floats) is microseconds against
  hundreds of milliseconds of sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.comm_model import hierarchical_allreduce_time
from repro.cluster.device import DGX_NODE, ClusterSpec, DeviceSpec, V100
from repro.models.made import default_hidden_size

__all__ = [
    "MadeAutoCostModel",
    "RbmMcmcCostModel",
    "calibrate_to_table1",
    "TABLE1_MADE_SECONDS",
    "TABLE1_RBM_SECONDS",
]

#: Paper Table 1 — training time (s) for 300 iterations, one GPU, bs = 1024.
TABLE1_MADE_SECONDS = {20: 2.85, 50: 5.74, 100: 10.63, 200: 20.45, 500: 49.62}
TABLE1_RBM_SECONDS = {20: 135.64, 50: 154.25, 100: 189.91, 200: 249.40, 500: 456.68}


def _forward_flops(n: int, h: int, batch: int) -> float:
    """One forward pass: two (batch×n)(n×h)-shaped GEMMs ≈ 4 h n flops/sample."""
    return 4.0 * h * n * batch


@dataclass(frozen=True)
class MadeAutoCostModel:
    """Iteration-time model for MADE + exact autoregressive sampling."""

    device: DeviceSpec = V100
    cluster: ClusterSpec = ClusterSpec(node=DGX_NODE)

    # -- component times (single device) ----------------------------------------

    def sampling_time(self, n: int, mbs: int, hidden: int | None = None) -> float:
        """Algorithm 1: n sequential forward passes over the local batch."""
        h = hidden if hidden is not None else default_hidden_size(n)
        per_pass = self.device.kernel_overhead_s + _forward_flops(
            n, h, mbs
        ) / self.device.effective_flops
        return n * per_pass

    def measurement_time(self, n: int, mbs: int, hidden: int | None = None) -> float:
        """Local energies: one batched forward over all (n+1)·mbs neighbours."""
        h = hidden if hidden is not None else default_hidden_size(n)
        flops = _forward_flops(n, h, mbs * (n + 1))
        return 4 * self.device.kernel_overhead_s + flops / self.device.effective_flops

    def backward_time(self, n: int, mbs: int, hidden: int | None = None) -> float:
        """Backprop ≈ 2× one forward over the local batch."""
        h = hidden if hidden is not None else default_hidden_size(n)
        return (
            4 * self.device.kernel_overhead_s
            + 2.0 * _forward_flops(n, h, mbs) / self.device.effective_flops
        )

    def allreduce_time(self, n: int, n_nodes: int, gpus_per_node: int,
                       hidden: int | None = None) -> float:
        h = hidden if hidden is not None else default_hidden_size(n)
        d = 2 * h * n + h + n  # paper §4's gradient length
        return hierarchical_allreduce_time(d, n_nodes, gpus_per_node, self.cluster)

    # -- aggregates ------------------------------------------------------------------

    def iteration_time(
        self,
        n: int,
        mbs: int,
        n_nodes: int = 1,
        gpus_per_node: int = 1,
        hidden: int | None = None,
    ) -> float:
        return (
            self.sampling_time(n, mbs, hidden)
            + self.measurement_time(n, mbs, hidden)
            + self.backward_time(n, mbs, hidden)
            + self.allreduce_time(n, n_nodes, gpus_per_node, hidden)
        )

    def training_time(
        self,
        n: int,
        mbs: int,
        iterations: int = 300,
        n_nodes: int = 1,
        gpus_per_node: int = 1,
        hidden: int | None = None,
    ) -> float:
        return iterations * self.iteration_time(n, mbs, n_nodes, gpus_per_node, hidden)

    def weak_scaling_table(
        self,
        dims: tuple[int, ...],
        mbs_by_dim: dict[int, int],
        configs: list[tuple[int, int]],
        iterations: int = 300,
    ) -> dict[int, dict[tuple[int, int], float]]:
        """Training time for each (dimension, GPU configuration) pair —
        the raw data behind Fig. 3 / Table 7."""
        out: dict[int, dict[tuple[int, int], float]] = {}
        for n in dims:
            out[n] = {
                cfg: self.training_time(
                    n, mbs_by_dim[n], iterations, n_nodes=cfg[0], gpus_per_node=cfg[1]
                )
                for cfg in configs
            }
        return out


@dataclass(frozen=True)
class RbmMcmcCostModel:
    """Iteration-time model for RBM + random-walk Metropolis–Hastings."""

    device: DeviceSpec = V100
    cluster: ClusterSpec = ClusterSpec(node=DGX_NODE)
    chains: int = 2

    def chain_steps(self, n: int, batch: int, burn_in: int | None = None,
                    thin: int = 1) -> int:
        """Fig. 1's k + thin·bs/c sequential MH steps."""
        k = burn_in if burn_in is not None else 3 * n + 100
        return k + thin * int(np.ceil(batch / self.chains))

    def sampling_time(
        self, n: int, batch: int, hidden: int | None = None,
        burn_in: int | None = None, thin: int = 1,
    ) -> float:
        """Each MH step is one forward over the c chains — overhead-bound
        (the c×n activations are microscopic next to the launch cost)."""
        h = hidden if hidden is not None else n
        steps = self.chain_steps(n, batch, burn_in, thin)
        per_step = self.device.kernel_overhead_s + _forward_flops(
            n, h, self.chains
        ) / self.device.effective_flops
        return steps * per_step

    def measurement_time(self, n: int, batch: int, hidden: int | None = None) -> float:
        h = hidden if hidden is not None else n
        flops = _forward_flops(n, h, batch * (n + 1))
        return 4 * self.device.kernel_overhead_s + flops / self.device.effective_flops

    def backward_time(self, n: int, batch: int, hidden: int | None = None) -> float:
        h = hidden if hidden is not None else n
        return (
            4 * self.device.kernel_overhead_s
            + 2.0 * _forward_flops(n, h, batch) / self.device.effective_flops
        )

    def iteration_time(
        self, n: int, batch: int, hidden: int | None = None,
        burn_in: int | None = None, thin: int = 1,
    ) -> float:
        return (
            self.sampling_time(n, batch, hidden, burn_in, thin)
            + self.measurement_time(n, batch, hidden)
            + self.backward_time(n, batch, hidden)
        )

    def training_time(
        self, n: int, batch: int, iterations: int = 300,
        hidden: int | None = None, burn_in: int | None = None, thin: int = 1,
    ) -> float:
        return iterations * self.iteration_time(n, batch, hidden, burn_in, thin)


def calibrate_to_table1(
    batch: int = 1024, iterations: int = 300
) -> tuple[MadeAutoCostModel, RbmMcmcCostModel]:
    """Fit (kernel overhead, achieved FLOP fraction) to the paper's Table 1.

    A coarse grid + refinement least-squares in log-space over the five
    measured dimensions, independently for the MADE and RBM rows. Returns
    models whose devices carry the calibrated constants.
    """

    def fit(times: dict[int, float], make_model) -> DeviceSpec:
        dims = sorted(times)
        target = np.log([times[n] for n in dims])

        def loss(overhead: float, frac: float) -> float:
            dev = replace(V100, kernel_overhead_s=overhead, achieved_fraction=frac)
            model = make_model(dev)
            pred = np.log(
                [model.training_time(n, batch, iterations) for n in dims]
            )
            return float(((pred - target) ** 2).sum())

        best = (np.inf, None)
        for overhead in np.geomspace(1e-5, 2e-3, 40):
            for frac in np.geomspace(0.01, 1.0, 30):
                l = loss(overhead, frac)
                if l < best[0]:
                    best = (l, (overhead, frac))
        overhead, frac = best[1]
        return replace(V100, kernel_overhead_s=overhead, achieved_fraction=frac)

    made_dev = fit(TABLE1_MADE_SECONDS, lambda dev: MadeAutoCostModel(device=dev))
    rbm_dev = fit(TABLE1_RBM_SECONDS, lambda dev: RbmMcmcCostModel(device=dev))
    return MadeAutoCostModel(device=made_dev), RbmMcmcCostModel(device=rbm_dev)
