"""Parallelism planner: choose a data/model-parallel split from cost models.

Given a problem (n, hidden), a cluster, and a *global* batch requirement,
enumerate the feasible (data_ranks × model_shards) grids over the cluster's
GPUs and score each with the calibrated cost models:

- per-iteration compute: MADE forward/backward flops over the local batch
  and local shard;
- data-parallel communication: one hierarchical allreduce of the (sharded)
  gradient per step;
- model-parallel communication: one (batch × n) logit allreduce per forward
  pass — n passes for sampling plus the measurement/backward passes — over
  the shard group;
- memory feasibility: the per-device share of model + batch must fit.

The planner's qualitative outputs reproduce the practitioner rules the
paper implies: pure data parallelism until the model (or its activations)
stops fitting; shard only as much as memory requires, because
model-parallel traffic scales with the batch while data-parallel traffic
does not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.comm_model import allreduce_time, hierarchical_allreduce_time
from repro.cluster.device import DGX_NODE, ClusterSpec
from repro.cluster.memory import MemoryModel
from repro.cluster.perfmodel import MadeAutoCostModel
from repro.models.made import default_hidden_size

__all__ = ["ParallelPlan", "plan_parallelism"]


@dataclass(frozen=True)
class ParallelPlan:
    """One candidate execution grid with its predicted per-iteration time."""

    data_ranks: int
    model_shards: int
    mini_batch: int  # per data-rank batch
    iteration_time: float
    compute_time: float
    dp_comm_time: float
    mp_comm_time: float
    memory_ok: bool

    @property
    def total_gpus(self) -> int:
        return self.data_ranks * self.model_shards

    def __str__(self) -> str:
        return (
            f"{self.data_ranks}×DP · {self.model_shards}×MP "
            f"(mbs={self.mini_batch}): {self.iteration_time*1e3:.2f} ms/iter "
            f"[compute {self.compute_time*1e3:.2f}, DP comm "
            f"{self.dp_comm_time*1e3:.3f}, MP comm {self.mp_comm_time*1e3:.3f}]"
        )


def _divisors(x: int) -> list[int]:
    return [d for d in range(1, x + 1) if x % d == 0]


def plan_parallelism(
    n: int,
    global_batch: int,
    hidden: int | None = None,
    cluster: ClusterSpec | None = None,
    cost_model: MadeAutoCostModel | None = None,
    memory_model: MemoryModel | None = None,
) -> list[ParallelPlan]:
    """Enumerate and rank execution plans (best first).

    Only feasible plans (batch divisible, memory fits) are returned; if
    *no* plan fits memory, the infeasible ones are returned with
    ``memory_ok=False`` so the caller can see by how much.
    """
    if n < 1 or global_batch < 1:
        raise ValueError("n and global_batch must be positive")
    cluster = cluster or ClusterSpec(node=DGX_NODE)
    cost = cost_model or MadeAutoCostModel(device=cluster.node.device,
                                           cluster=cluster)
    mem = memory_model or MemoryModel(device=cluster.node.device)
    h = hidden if hidden is not None else default_hidden_size(n)
    total_gpus = cluster.total_gpus

    plans: list[ParallelPlan] = []
    for shards in _divisors(cluster.node.gpus):  # shard within a node (NVLink)
        for data_ranks in range(1, total_gpus // shards + 1):
            if global_batch % data_ranks:
                continue
            mbs = global_batch // data_ranks
            h_local = int(np.ceil(h / shards))

            # Memory: each device holds 1/shards of the weights but the full
            # per-rank batch activations.
            model_bytes = mem.model_bytes(n, h) / shards
            batch_bytes = mbs * mem.bytes_per_sample(n, h_local)
            memory_ok = model_bytes + batch_bytes <= mem.device.mem_bytes

            # Compute over the local shard & local batch.
            compute = (
                cost.sampling_time(n, mbs, hidden=h_local)
                + cost.measurement_time(n, mbs, hidden=h_local)
                + cost.backward_time(n, mbs, hidden=h_local)
            )
            # DP allreduce of the local-shard gradient across data ranks.
            d_local = (2 * h_local * n + h_local + n)
            n_nodes = max(1, int(np.ceil(data_ranks * shards / cluster.node.gpus)))
            gpn = min(data_ranks * shards, cluster.node.gpus) // shards or 1
            dp_comm = hierarchical_allreduce_time(d_local, n_nodes, gpn, cluster)
            # MP allreduce of (mbs × n) logits once per forward pass:
            # n sampling passes + 1 measurement + 2 backward-ish passes.
            if shards > 1:
                per_pass = allreduce_time(
                    mbs * n, shards,
                    cluster.node.intra_bw_bytes, cluster.node.intra_latency_s,
                )
                mp_comm = (n + 3) * per_pass
            else:
                mp_comm = 0.0

            plans.append(
                ParallelPlan(
                    data_ranks=data_ranks,
                    model_shards=shards,
                    mini_batch=mbs,
                    iteration_time=compute + dp_comm + mp_comm,
                    compute_time=compute,
                    dp_comm_time=dp_comm,
                    mp_comm_time=mp_comm,
                    memory_ok=memory_ok,
                )
            )

    feasible = [p for p in plans if p.memory_ok]
    pool = feasible if feasible else plans
    return sorted(pool, key=lambda p: (p.iteration_time, p.total_gpus))
