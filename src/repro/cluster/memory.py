"""Device-memory model → memory-saturating mini-batch sizes (Table 7 row).

The dominant per-sample allocation in a training iteration is the
local-energy measurement: every sample expands into its ``n`` single-flip
neighbours, giving an ``(mbs, n+1, n)`` configuration tensor plus the
``(mbs·(n+1), h)`` hidden activations of the batched forward pass — i.e.
**quadratic in n per sample**, which is why the feasible mini-batch drops
from 2¹⁹ at n = 20 to 2² at n = 10 000 (Table 7) while the model itself
(``2hn + h + n`` parameters) stays tiny.

``bytes_per_sample = overhead · 4 · (c_sq n² + n h)``; the framework
``overhead`` factor (autograd buffers, fragmentation, CUDA context) is
calibrated so the predicted ladder matches the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.device import DeviceSpec, V100
from repro.models.made import default_hidden_size

__all__ = ["MemoryModel", "PAPER_MBS_LADDER"]

#: the paper's Table 7 mini-batch sizes, keyed by problem dimension
PAPER_MBS_LADDER: dict[int, int] = {
    20: 2**19,
    50: 2**17,
    100: 2**15,
    200: 2**13,
    500: 2**11,
    1000: 2**9,
    2000: 2**7,
    5000: 2**4,
    10000: 2**2,
}


@dataclass(frozen=True)
class MemoryModel:
    """Predicts the largest power-of-two mini-batch a device can hold."""

    device: DeviceSpec = V100
    overhead: float = 9.5  # framework multiplier (calibrated to Table 7)
    bytes_per_float: float = 4.0

    def bytes_per_sample(self, n: int, hidden: int | None = None) -> float:
        h = hidden if hidden is not None else default_hidden_size(n)
        raw = self.bytes_per_float * (n * n + n * h)
        return self.overhead * raw

    def model_bytes(self, n: int, hidden: int | None = None) -> float:
        h = hidden if hidden is not None else default_hidden_size(n)
        return self.bytes_per_float * (2 * h * n + h + n)

    def max_mini_batch(self, n: int, hidden: int | None = None) -> int:
        """Largest power-of-two mbs with model + batch memory ≤ capacity."""
        budget = self.device.mem_bytes - self.model_bytes(n, hidden)
        if budget <= 0:
            raise ValueError(f"model with n={n} does not fit on {self.device.name}")
        mbs = budget / self.bytes_per_sample(n, hidden)
        if mbs < 1:
            raise ValueError(
                f"not even one sample fits for n={n} on {self.device.name}"
            )
        return 2 ** int(math.floor(math.log2(mbs)))

    def ladder(self, dims: tuple[int, ...] = tuple(PAPER_MBS_LADDER)) -> dict[int, int]:
        """Predicted mbs ladder over the paper's problem sizes."""
        return {n: self.max_mini_batch(n) for n in dims}
