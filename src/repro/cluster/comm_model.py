"""Allreduce cost model (α–β model over the cluster topology).

Ring allreduce of a ``d``-float payload over ``L`` endpoints with link
bandwidth β and per-step latency α costs

    t = 2 (L − 1) α + 2 (L − 1)/L · d·4 / β

(reduce-scatter + allgather, 4-byte floats). For multi-node jobs we model
NCCL's hierarchical schedule: ring within each node over NVLink, ring
across nodes over InfiniBand, then intra-node broadcast.
"""

from __future__ import annotations

from repro.cluster.device import ClusterSpec

__all__ = ["allreduce_time", "hierarchical_allreduce_time"]

_BYTES = 4.0  # fp32


def allreduce_time(
    d: int, endpoints: int, bandwidth: float, latency: float
) -> float:
    """Flat ring allreduce time for ``d`` floats over ``endpoints`` links."""
    if endpoints <= 1:
        return 0.0
    steps = 2 * (endpoints - 1)
    payload = 2.0 * (endpoints - 1) / endpoints * d * _BYTES
    return steps * latency + payload / bandwidth


def hierarchical_allreduce_time(
    d: int, n_nodes: int, gpus_per_node: int, cluster: ClusterSpec
) -> float:
    """Hierarchical allreduce: intra-node reduce, inter-node ring,
    intra-node broadcast."""
    if n_nodes * gpus_per_node <= 1:
        return 0.0
    t = 0.0
    node = cluster.node
    if gpus_per_node > 1:
        # reduce + (later) broadcast within the node ≈ one full ring allreduce
        t += allreduce_time(d, gpus_per_node, node.intra_bw_bytes, node.intra_latency_s)
    if n_nodes > 1:
        t += allreduce_time(d, n_nodes, cluster.inter_bw_bytes, cluster.inter_latency_s)
    return t
