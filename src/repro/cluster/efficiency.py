"""Closed-form parallel-efficiency expressions from the paper (§4).

Eq. 14 (MCMC): constructing ``n_samples`` on each of L units, with burn-in
``k`` and thinning stride ``j``, the speedup over one unit producing the
same total is

    speedup(L) = (k + (n·L − 1) j + 1) / (k + (n − 1) j + 1) = a + b·L

with ``b = n j / (k + (n−1) j + 1)`` decaying towards 0 as the burn-in k
grows — burning in is sequential work every unit repeats.

Eq. 15 (AUTO): the per-iteration work is O(h n² · mbs) compute plus an
O(h n) allreduce, so

    efficiency(L) = O(hn²·L·mbs) / (O(hn²·mbs) + O(hn)) ≈ L

whenever n or mbs is large.
"""

from __future__ import annotations

__all__ = [
    "mcmc_parallel_efficiency",
    "mcmc_slope",
    "auto_parallel_efficiency",
]


def mcmc_parallel_efficiency(
    L: int, samples_per_unit: int, burn_in: int, thin: int = 1
) -> float:
    """Eq. 14: speedup of L units over one unit for the same total samples."""
    if L < 1 or samples_per_unit < 1 or burn_in < 0 or thin < 1:
        raise ValueError("invalid MCMC efficiency parameters")
    n, k, j = samples_per_unit, burn_in, thin
    return (k + (n * L - 1) * j + 1) / (k + (n - 1) * j + 1)


def mcmc_slope(samples_per_unit: int, burn_in: int, thin: int = 1) -> float:
    """The ``b`` in speedup = a + bL; b → 0 as burn-in dominates."""
    n, k, j = samples_per_unit, burn_in, thin
    return n * j / (k + (n - 1) * j + 1)


def auto_parallel_efficiency(
    L: int, n: int, hidden: int, mini_batch: int, comm_flops_equiv: float | None = None
) -> float:
    """Eq. 15 evaluated: effective speedup of L units for AUTO sampling.

    ``comm_flops_equiv`` is the allreduce cost expressed in flop-equivalents
    (defaults to the paper's O(hn) with unit constant).
    """
    if L < 1:
        raise ValueError(f"L must be >= 1, got {L}")
    compute = hidden * n * n * mini_batch
    comm = comm_flops_equiv if comm_flops_equiv is not None else float(hidden * n)
    return L * compute / (compute + comm)
