"""Analytic model of a multi-GPU cluster (the paper's testbed substitute).

The weak-scaling experiments (Fig. 3, Tables 6–7) ran on up to 6 nodes × 4
NVIDIA V100s. Offline and CPU-only, we reproduce them with a calibrated
cost model rather than silicon:

- :mod:`repro.cluster.device` — device/node/cluster specs (V100 defaults).
- :mod:`repro.cluster.perfmodel` — per-iteration time for MADE+AUTO and
  RBM+MCMC built from the paper's own §4 complexity analysis
  (n forward passes of O(hn) each; k + bs/c chain steps for MCMC), with two
  scalar constants (per-kernel launch overhead, achieved FLOP rate)
  calibrated against the paper's measured Table 1 row.
- :mod:`repro.cluster.memory` — activation-memory model → the
  memory-saturating mini-batch ladder of Table 7.
- :mod:`repro.cluster.comm_model` — hierarchical (NVLink ring + InfiniBand
  ring) allreduce time.
- :mod:`repro.cluster.efficiency` — the paper's closed-form parallel
  efficiencies: Eq. 14 (MCMC, a + bL) and Eq. 15 (AUTO, ≈ L).

The model's qualitative predictions (normalised weak-scaling times ≈ 1,
time linear in n, MCMC efficiency slope decaying with burn-in) are
cross-validated against real multiprocess runs in the test suite.
"""

from repro.cluster.device import DeviceSpec, NodeSpec, ClusterSpec, V100, DGX_NODE
from repro.cluster.perfmodel import (
    MadeAutoCostModel,
    RbmMcmcCostModel,
    calibrate_to_table1,
)
from repro.cluster.memory import MemoryModel
from repro.cluster.comm_model import allreduce_time, hierarchical_allreduce_time
from repro.cluster.efficiency import mcmc_parallel_efficiency, auto_parallel_efficiency
from repro.cluster.planner import ParallelPlan, plan_parallelism
from repro.cluster.report import scaling_report
from repro.cluster.simulator import (
    DataParallelSimulator,
    RankTimeline,
    SimulationResult,
)

__all__ = [
    "ParallelPlan",
    "plan_parallelism",
    "scaling_report",
    "DataParallelSimulator",
    "RankTimeline",
    "SimulationResult",
    "DeviceSpec",
    "NodeSpec",
    "ClusterSpec",
    "V100",
    "DGX_NODE",
    "MadeAutoCostModel",
    "RbmMcmcCostModel",
    "calibrate_to_table1",
    "MemoryModel",
    "allreduce_time",
    "hierarchical_allreduce_time",
    "mcmc_parallel_efficiency",
    "auto_parallel_efficiency",
]
