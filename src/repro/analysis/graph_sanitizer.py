"""Runtime autograd sanitizer: in-place-mutation and NaN/Inf origin checks.

The tensor engine's backward closures alias the buffers they saw at record
time (closure-based tape, see :mod:`repro.tensor.tensor`). Two bug classes
exploit that silently:

1. **In-place mutation between forward and backward** — an optimizer step,
   a parameter load, or a stray ``arr[...] = ...`` on a tensor that still
   sits in a live graph. The gradients come out wrong; nothing raises.
2. **Non-finite values** — a NaN born in one op surfaces thousands of ops
   later as a diverged loss, with the origin long gone.

:class:`GraphSanitizer` is the dynamic counterpart of the static
``ag-tensor-mutation`` lint rule. While active (a context manager,
per-thread — each rank of the threaded backend opts in independently), the
engine calls back into it:

- at every op it snapshots ``(tensor, version, buffer fingerprint)`` for
  the op's inputs *and* output, and checks the output for fresh NaN/Inf;
- at ``backward`` it re-fingerprints before running each closure and
  raises :class:`~repro.tensor.tensor.InPlaceMutationError` naming the op's
  call site, distinguishing *tracked* mutation (version counter bumped by a
  whitelisted mutator while the graph was live) from *untracked* mutation
  (buffer bytes changed behind the counter's back).

Fingerprints sample ``sample`` evenly strided elements plus the buffer's
size — O(1) per op, so the sanitizer stays usable inside real training
loops; raise ``sample`` (or pass ``sample=0`` for full-buffer hashing) when
hunting a mutation that touches only a few elements.

Usage::

    from repro.analysis import GraphSanitizer

    with GraphSanitizer() as sanitizer:
        loss = model.log_prob(batch).sum()
        loss.backward()          # raises on mutation / fresh NaN
    sanitizer.nonfinite_origins  # [] — or the recorded origins, if
                                 # constructed with nonfinite="record"
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

import numpy as np

from repro.tensor import tensor as _tensor_mod
from repro.tensor.tensor import InPlaceMutationError, NonFiniteError, Tensor

__all__ = [
    "GraphSanitizer",
    "InPlaceMutationError",
    "NonFiniteError",
    "NonFiniteOrigin",
]

_ENGINE_FILES = (_tensor_mod.__file__, __file__)


def _call_site() -> str:
    frame = sys._getframe(2)
    while frame is not None and frame.f_code.co_filename in _ENGINE_FILES:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    path = frame.f_code.co_filename
    tail = "/".join(path.replace("\\", "/").split("/")[-3:])
    return f"{tail}:{frame.f_lineno}"


@dataclass(frozen=True)
class NonFiniteOrigin:
    """First op that turned all-finite inputs into a non-finite output."""

    site: str
    shape: tuple[int, ...]
    n_nan: int
    n_inf: int

    def describe(self) -> str:
        return (
            f"{self.n_nan} NaN / {self.n_inf} Inf first produced in an op "
            f"with output shape {self.shape} at {self.site}"
        )


class GraphSanitizer:
    """Context manager enabling the tensor engine's sanitizer mode.

    Parameters
    ----------
    check_mutation:
        Snapshot-and-verify buffers of every recorded op (default True).
    check_finite:
        Track the first origin of NaN/Inf outputs (default True).
    nonfinite:
        ``"raise"`` (default) raises :class:`NonFiniteError` at the origin;
        ``"record"`` appends a :class:`NonFiniteOrigin` to
        :attr:`nonfinite_origins` and lets the run continue.
    sample:
        Elements per buffer fingerprint (evenly strided); ``0`` hashes the
        full buffer (exhaustive, O(n) per op).
    """

    def __init__(
        self,
        check_mutation: bool = True,
        check_finite: bool = True,
        nonfinite: str = "raise",
        sample: int = 16,
    ):
        if nonfinite not in ("raise", "record"):
            raise ValueError(f"nonfinite must be 'raise' or 'record', got {nonfinite!r}")
        if sample < 0:
            raise ValueError(f"sample must be >= 0, got {sample}")
        self.check_mutation = bool(check_mutation)
        self.check_finite = bool(check_finite)
        self.nonfinite = nonfinite
        self.sample = int(sample)
        self.nonfinite_origins: list[NonFiniteOrigin] = []
        self.nodes_recorded = 0
        self.nodes_verified = 0
        self.mutations_detected = 0

    # -- lifecycle ------------------------------------------------------------

    def __enter__(self) -> "GraphSanitizer":
        if _tensor_mod.graph_sanitizer_state() is not None:
            raise RuntimeError("a GraphSanitizer is already active on this thread")
        _tensor_mod.set_graph_sanitizer(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _tensor_mod.set_graph_sanitizer(None)

    # -- engine callbacks -----------------------------------------------------

    def on_node(self, out: Tensor, parents, recorded: bool) -> None:
        """Called by ``Tensor._make`` for every op output."""
        if self.check_finite:
            finite = np.isfinite(out.data)
            if not finite.all() and all(
                np.isfinite(p.data).all() for p in parents
            ):
                n_bad = int(finite.size - np.count_nonzero(finite))
                n_nan = int(np.count_nonzero(np.isnan(out.data)))
                origin = NonFiniteOrigin(
                    site=_call_site(),
                    shape=tuple(out.shape),
                    n_nan=n_nan,
                    n_inf=n_bad - n_nan,
                )
                self.nonfinite_origins.append(origin)
                if self.nonfinite == "raise":
                    raise NonFiniteError(origin.describe())
        if recorded and self.check_mutation:
            self.nodes_recorded += 1
            out._sanitize = (
                _call_site(),
                tuple(
                    (t, t._version, self._fingerprint(t.data))
                    for t in (*parents, out)
                ),
            )

    def verify(self, node: Tensor) -> None:
        """Called by ``Tensor.backward`` before running a node's closure."""
        saved = node._sanitize
        if saved is None:
            return
        self.nodes_verified += 1
        site, snapshots = saved
        for t, version, fingerprint in snapshots:
            label = f"tensor {t.name!r}" if t.name else f"tensor of shape {t.shape}"
            if t._version != version:
                self.mutations_detected += 1
                raise InPlaceMutationError(
                    f"{label} was mutated in place (tracked: buffer version "
                    f"{version} -> {t._version}) after being recorded by the "
                    f"op at {site}; backward closures alias the recorded "
                    "buffer, so its gradients are now corrupt — finish "
                    "backward before mutating, or detach first"
                )
            if self._fingerprint(t.data) != fingerprint:
                self.mutations_detected += 1
                raise InPlaceMutationError(
                    f"{label} was mutated in place (untracked: buffer "
                    "contents changed with no bump_version()) after being "
                    f"recorded by the op at {site}; backward closures alias "
                    "the recorded buffer, so its gradients are now corrupt"
                )

    # -- fingerprinting -------------------------------------------------------

    def _fingerprint(self, data: np.ndarray) -> tuple:
        flat = np.ravel(data)
        n = flat.size
        if n == 0:
            return (0, b"")
        if self.sample and n > self.sample:
            idx = np.linspace(0, n - 1, num=self.sample).astype(np.intp)
            flat = flat[idx]
        return (n, flat.tobytes())
