"""Interprocedural dataflow over the :class:`~repro.analysis.callgraph.Project`.

Two analyses feed the whole-program distributed rules:

**Rank taint.** A value is *rank-tainted* when it derives from the
calling rank — ``comm.rank``, a bare ``rank`` name, any expression built
from one, a parameter that receives a tainted argument at some resolved
call site, or the return value of a function that returns taint. Taint
is what makes a branch *rank-divergent*: different ranks take different
arms, so any collective inside only one arm deadlocks the world.

**Collective summaries.** For every function, the ordered tuple of
collective operations (``allreduce`` … ``split``) it issues
*transitively* — its own protocol events plus, inlined in call order,
those of every resolved callee. Two branch arms are *congruent* when
their summaries are equal; the supervisor's ``if rank == leader`` blocks
that broadcast on both arms stay clean, while ``if rank == 0:
comm.allreduce(x)`` does not.

Both analyses are fixpoints over the call graph, bounded and
under-approximate in the same way resolution is: an unresolved call
contributes nothing, so the rules built on top miss exotic dispatch
rather than inventing findings.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import (
    COLLECTIVES,
    FunctionNode,
    Project,
    body_nodes,
    ordered_calls,
)

__all__ = ["DataflowAnalysis", "CollectiveSite"]

#: cap on summary length; protocol sequences longer than this compare
#: by their first 64 events, which is ample for congruence checking.
_MAX_SUMMARY = 64

#: names whose values are rank-derived at the source level
_RANK_NAMES = frozenset({"rank"})
_RANK_ATTRS = frozenset({"rank"})


class CollectiveSite:
    """One protocol event inside a branch arm: either a direct collective
    call or a resolved call whose transitive summary issues collectives."""

    __slots__ = ("node", "fn", "chain")

    def __init__(self, node: ast.Call, fn: FunctionNode, chain: tuple[str, ...]):
        self.node = node
        self.fn = fn
        #: human-readable witness path, e.g. ``("helper", "sync", ".allreduce")``
        self.chain = chain

    @property
    def label(self) -> str:
        return " -> ".join(self.chain)


class DataflowAnalysis:
    """Rank-taint + collective-summary fixpoints for one project."""

    def __init__(self, project: Project):
        self.project = project
        #: qualname -> set of tainted parameter names
        self.param_taint: dict[str, set[str]] = {}
        #: qualname -> does the function return a rank-tainted value
        self.returns_taint: dict[str, bool] = {}
        #: qualname -> set of locally tainted names (incl. tainted params)
        self.tainted_names: dict[str, set[str]] = {}
        #: qualname -> transitive ordered collective summary
        self.summaries: dict[str, tuple[str, ...]] = {}
        self._chain_cache: dict[str, tuple[str, ...] | None] = {}
        self._run_taint_fixpoint()
        self._run_summary_fixpoint()

    # -- taint ------------------------------------------------------------

    def _run_taint_fixpoint(self) -> None:
        fns = list(self.project.iter_functions())
        for fn in fns:
            self.param_taint[fn.qualname] = set()
            self.returns_taint[fn.qualname] = False
            self.tainted_names[fn.qualname] = set()
        # Bounded: each pass can only grow param_taint/returns_taint, both
        # finite; len(fns)+2 passes dominates any call-chain depth.
        for _ in range(len(fns) + 2):
            changed = False
            for fn in fns:
                changed |= self._taint_one(fn)
            if not changed:
                break

    def _taint_one(self, fn: FunctionNode) -> bool:
        tainted = set(self.param_taint[fn.qualname])
        # Local fixpoint: assignments propagate taint between names.
        for _ in range(32):
            grew = False
            for node in body_nodes(fn.node):
                for target_name, value in _assignments(node):
                    if value is not None and self._expr_tainted_set(
                        fn, value, tainted
                    ):
                        if target_name not in tainted:
                            tainted.add(target_name)
                            grew = True
            if not grew:
                break
        changed = tainted != self.tainted_names[fn.qualname]
        self.tainted_names[fn.qualname] = tainted

        # Returns.
        if not self.returns_taint[fn.qualname]:
            for node in body_nodes(fn.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    if self._expr_tainted_set(fn, node.value, tainted):
                        self.returns_taint[fn.qualname] = True
                        changed = True
                        break

        # Push taint into callee parameters at resolved call sites.
        for site in self.project.call_sites(fn):
            for target in site.targets:
                params = list(target.params)
                if target.class_name is not None and params[:1] in (
                    ["self"],
                    ["cls"],
                ):
                    params = params[1:]
                callee_taint = self.param_taint[target.qualname]
                for i, arg in enumerate(site.call.args):
                    if isinstance(arg, ast.Starred) or i >= len(params):
                        break
                    if self._expr_tainted_set(fn, arg, tainted):
                        if params[i] not in callee_taint:
                            callee_taint.add(params[i])
                            changed = True
                for kw in site.call.keywords:
                    if kw.arg is None or kw.arg not in target.params:
                        continue
                    if self._expr_tainted_set(fn, kw.value, tainted):
                        if kw.arg not in callee_taint:
                            callee_taint.add(kw.arg)
                            changed = True
        return changed

    def _expr_tainted_set(
        self, fn: FunctionNode, expr: ast.AST, tainted: set[str]
    ) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and (
                node.id in tainted or node.id in _RANK_NAMES
            ):
                return True
            if isinstance(node, ast.Attribute) and node.attr in _RANK_ATTRS:
                return True
            if isinstance(node, ast.Call):
                for target in self.project.resolve_call(fn, node):
                    if self.returns_taint.get(target.qualname):
                        return True
        return False

    def expr_tainted(self, fn: FunctionNode, expr: ast.AST) -> bool:
        """Is ``expr`` rank-tainted in ``fn``'s scope (post-fixpoint)?"""
        return self._expr_tainted_set(
            fn, expr, self.tainted_names.get(fn.qualname, set())
        )

    # -- collective summaries ---------------------------------------------

    def _run_summary_fixpoint(self) -> None:
        fns = list(self.project.iter_functions())
        for fn in fns:
            self.summaries[fn.qualname] = ()
        for _ in range(len(fns) + 2):
            changed = False
            for fn in fns:
                seq = self._stmt_summary(fn, getattr(fn.node, "body", []))
                if seq != self.summaries[fn.qualname]:
                    self.summaries[fn.qualname] = seq
                    changed = True
            if not changed:
                break

    def _stmt_summary(
        self, fn: FunctionNode, stmts: list[ast.stmt]
    ) -> tuple[str, ...]:
        """Transitive collective sequence of a statement list, in source
        order; branch arms are concatenated (the summary is a congruence
        *fingerprint*, not an execution trace)."""
        out: list[str] = []
        holder = ast.Module(body=list(stmts), type_ignores=[])
        for call in ordered_calls(holder):
            if len(out) >= _MAX_SUMMARY:
                break
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr in COLLECTIVES:
                out.append(func.attr)
                continue
            for target in self.project.resolve_call(fn, call):
                out.extend(self.summaries[target.qualname])
        return tuple(out[:_MAX_SUMMARY])

    def arm_summary(
        self, fn: FunctionNode, stmts: list[ast.stmt]
    ) -> tuple[str, ...]:
        """Public wrapper: transitive collective sequence of a branch arm."""
        return self._stmt_summary(fn, stmts)

    def collective_sites(
        self, fn: FunctionNode, stmts: list[ast.stmt]
    ) -> Iterator[CollectiveSite]:
        """Protocol events anchored in ``stmts``: direct collectives plus
        resolved calls whose summaries are non-empty, each with a witness
        chain to its first collective."""
        holder = ast.Module(body=list(stmts), type_ignores=[])
        for call in ordered_calls(holder):
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr in COLLECTIVES:
                yield CollectiveSite(call, fn, (f".{func.attr}()",))
                continue
            for target in self.project.resolve_call(fn, call):
                if self.summaries[target.qualname]:
                    chain = self._chain_to_collective(target)
                    if chain is not None:
                        yield CollectiveSite(call, fn, (target.name,) + chain)
                    break

    def _chain_to_collective(
        self, fn: FunctionNode, depth: int = 0
    ) -> tuple[str, ...] | None:
        """Shortest-ish witness: names of callees leading to the first
        direct collective issued under ``fn``."""
        cached = self._chain_cache.get(fn.qualname, "miss")
        if cached != "miss":
            return cached
        if depth > 16:
            return None
        self._chain_cache[fn.qualname] = None  # cycle guard
        result: tuple[str, ...] | None = None
        for site in self.project.call_sites(fn):
            func = site.call.func
            if isinstance(func, ast.Attribute) and func.attr in COLLECTIVES:
                result = (f".{func.attr}()",)
                break
            for target in site.targets:
                if self.summaries[target.qualname]:
                    sub = self._chain_to_collective(target, depth + 1)
                    if sub is not None:
                        result = (target.name,) + sub
                        break
            if result is not None:
                break
        self._chain_cache[fn.qualname] = result
        return result


def _assignments(
    node: ast.AST,
) -> Iterator[tuple[str, ast.AST | None]]:
    """Yield ``(target_name, value_expr)`` pairs for simple assignments.

    Attribute targets are skipped (taint does not survive storage on an
    object — matching the lexical rule's semantics); tuple targets taint
    every name element; ``for`` loop variables over a tainted iterable
    taint the loop name (``for peer in range(rank)``).
    """
    if isinstance(node, ast.Assign):
        for target in node.targets:
            yield from _target_names(target, node.value)
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        yield from _target_names(node.target, node.value)
    elif isinstance(node, ast.AugAssign):
        yield from _target_names(node.target, node.value)
    elif isinstance(node, ast.NamedExpr):
        yield from _target_names(node.target, node.value)
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        yield from _target_names(node.target, node.iter)
    elif isinstance(node, ast.withitem) and node.optional_vars is not None:
        yield from _target_names(node.optional_vars, node.context_expr)


def _target_names(
    target: ast.AST, value: ast.AST
) -> Iterator[tuple[str, ast.AST]]:
    if isinstance(target, ast.Name):
        yield target.id, value
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt, value)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value, value)
    elif isinstance(target, ast.Subscript):
        # x[i] = tainted -> x becomes tainted (container carries taint)
        yield from _target_names(target.value, value)
