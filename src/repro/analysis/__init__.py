"""Correctness tooling: static analysis, runtime sanitizers, schedule exploration.

The paper's scalability claims rest on invariants the runtime must never
silently break: exact, reproducible sampling (seeded RNG streams,
bit-identical fast paths) and congruent collectives across ranks (every
rank issues the same allreduce/broadcast sequence, or the world deadlocks).
jVMC leans on JAX's tracer to catch such misuse at trace time and the MPI
world has MUST for collective matching; this package is our equivalent,
three-pronged:

- **Static** — :mod:`repro.analysis.lint`: an AST lint engine with a
  pluggable rule registry (:mod:`repro.analysis.rules`: determinism,
  autograd and distributed hygiene), an interprocedural pass
  (:mod:`repro.analysis.callgraph` + :mod:`repro.analysis.dataflow`:
  project call graph, rank-taint and collective-summary fixpoints),
  inline suppressions, and a CLI (``python tools/lint.py src``) that
  gates CI.
- **Dynamic** — :class:`CommSanitizer` cross-validates a fingerprint of
  every collective across ranks, turning would-be deadlocks into immediate
  :class:`CollectiveMismatchError` diagnostics naming both call sites; and
  :class:`GraphSanitizer` arms the tensor engine with buffer
  version-counter/fingerprint checks (in-place mutation of graph tensors)
  and NaN/Inf first-origin tracking.
- **Schedules** — :mod:`repro.analysis.explore`: a deterministic
  interleaving explorer for the threads backend that parks every rank at
  its communication commit points, searches conflicting schedules
  DPOR-style, reports deadlock/livelock with waits-for diagnostics, and
  replays any failing schedule bit-identically from a recorded trace
  (``python tools/lint.py explore``). Protocol programs live in
  :mod:`repro.analysis.scenarios`.

See ``docs/static_analysis.md`` for the rule catalogue and usage.
"""

from repro.analysis.comm_sanitizer import (
    CollectiveMismatchError,
    CollectiveRecord,
    CommSanitizer,
)
from repro.analysis.graph_sanitizer import (
    GraphSanitizer,
    InPlaceMutationError,
    NonFiniteError,
    NonFiniteOrigin,
)
from repro.analysis.lint import (
    Finding,
    LintReport,
    ProjectRule,
    Rule,
    get_rule,
    iter_rules,
    lint_file,
    lint_paths,
    register,
    rule_ids,
)

from repro.analysis import explore, scenarios

__all__ = [
    "CollectiveMismatchError",
    "CollectiveRecord",
    "CommSanitizer",
    "GraphSanitizer",
    "InPlaceMutationError",
    "NonFiniteError",
    "NonFiniteOrigin",
    "Finding",
    "LintReport",
    "ProjectRule",
    "Rule",
    "register",
    "get_rule",
    "iter_rules",
    "rule_ids",
    "lint_file",
    "lint_paths",
    "explore",
    "scenarios",
]
