"""Project-wide call graph for interprocedural lint rules.

The per-file rules in :mod:`repro.analysis.rules` see one tree at a time,
so a collective hidden two calls deep behind a rank-dependent branch is
invisible to them. This module builds the *whole-program* view:
:class:`Project` collects every function/method (plus a synthetic
``<module>`` node per file for top-level statements) from the linted
:class:`~repro.analysis.lint.LintContext`\\ s and resolves call sites to
their targets.

Resolution is deliberately **under-approximate** — a call resolves only
when the target is unambiguous:

- a bare name defined in the same module (or imported via
  ``from mod import name``), falling back to a *unique* project-wide
  match;
- ``self.method()`` / ``cls.method()`` against the enclosing class,
  walking resolvable base classes;
- ``alias.func()`` where ``alias`` names an imported project module
  (``import repro.distributed.elastic as elastic``).

Anything else (duck-typed receivers, higher-order calls, builtins) stays
unresolved, which keeps interprocedural rules free of false positives at
the cost of missing exotic dispatch. Communicator collectives
(``allreduce`` … ``split``) and point-to-point primitives are *never*
resolved into, even though their implementations live in this repo: rules
treat them as atomic protocol events, not user code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.analysis.lint import LintContext

__all__ = [
    "COLLECTIVES",
    "P2P_PRIMITIVES",
    "FunctionNode",
    "CallSite",
    "Project",
    "body_nodes",
    "ordered_calls",
]

#: collective operations every rank must issue congruently (mirrors
#: ``rules.distributed._COLLECTIVES``); call sites with these attribute
#: names are protocol events and are never resolved into user code.
COLLECTIVES = frozenset(
    {"allreduce", "broadcast", "allgather", "reduce", "barrier", "split"}
)

#: point-to-point / control primitives, likewise treated as atomic.
P2P_PRIMITIVES = frozenset(
    {"send", "recv", "poll", "send_ctrl", "recv_ctrl", "sendrecv"}
)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass
class FunctionNode:
    """One function, method, or synthetic per-file ``<module>`` scope."""

    qualname: str
    name: str
    module: str
    path: str
    node: ast.AST
    #: enclosing class name for methods, else ``None``
    class_name: str | None = None
    #: positional-or-keyword + keyword-only parameter names, in order
    #: (including ``self``/``cls`` for methods); empty for ``<module>``.
    params: tuple[str, ...] = ()

    @property
    def is_module_scope(self) -> bool:
        return self.name == "<module>"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FunctionNode({self.qualname})"


@dataclass
class CallSite:
    """One call expression inside a function, with its resolved targets."""

    caller: FunctionNode
    call: ast.Call
    #: resolved target functions; empty when the callee is unknown or an
    #: atomic primitive (collective / p2p).
    targets: tuple[FunctionNode, ...] = ()

    @property
    def callee_name(self) -> str | None:
        func = self.call.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None


def body_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a function (or module) body without descending into nested
    function/class definitions — those are their own :class:`FunctionNode`\\ s
    and their statements execute on *their* call, not here."""
    stmts = getattr(scope, "body", [])
    stack: list[ast.AST] = [s for s in stmts if not isinstance(s, _SCOPE_NODES)]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)


def ordered_calls(scope: ast.AST) -> Iterator[ast.Call]:
    """Yield :class:`ast.Call` nodes of a scope in source/execution order
    (arguments before the enclosing call), skipping nested definitions."""

    def visit(node: ast.AST) -> Iterator[ast.Call]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            yield from visit(child)
        if isinstance(node, ast.Call):
            yield node

    for stmt in getattr(scope, "body", []):
        if isinstance(stmt, _SCOPE_NODES):
            continue
        yield from visit(stmt)


@dataclass
class _ModuleInfo:
    """Per-file name tables used during call resolution."""

    #: ``from mod import f as g`` -> {"g": ("mod", "f")}
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: ``import repro.x.y as z`` / ``from repro.x import y`` (module y)
    #: -> {"z": "repro.x.y"}
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: class name -> base-class expressions (for self.method resolution)
    class_bases: dict[str, list[ast.expr]] = field(default_factory=dict)


class Project:
    """Call graph over a set of linted files.

    Parameters
    ----------
    contexts:
        the parsed files; one :class:`FunctionNode` is created per
        function/method plus a ``<module>`` node per file.
    """

    def __init__(self, contexts: Sequence[LintContext]):
        self.contexts = list(contexts)
        #: qualname -> node, insertion-ordered (file order, then lexical)
        self.functions: dict[str, FunctionNode] = {}
        self._by_name: dict[str, list[FunctionNode]] = {}
        self._modules: dict[str, _ModuleInfo] = {}
        self._ctx_module: dict[str, str] = {}
        for ctx in self.contexts:
            self._index_file(ctx)
        self._call_cache: dict[str, tuple[CallSite, ...]] = {}
        self._callers: dict[str, list[CallSite]] | None = None

    # -- indexing ---------------------------------------------------------

    def _module_key(self, ctx: LintContext) -> str:
        if ctx.module:
            return ctx.module
        # Files outside a repro package (tools/, benchmarks/) get a
        # path-derived pseudo-module so qualnames stay unique.
        return ctx.path.rsplit("/", 1)[-1].removesuffix(".py")

    def _index_file(self, ctx: LintContext) -> None:
        module = self._module_key(ctx)
        self._ctx_module[ctx.path] = module
        info = self._modules.setdefault(module, _ModuleInfo())

        def add(fn: FunctionNode) -> None:
            self.functions[fn.qualname] = fn
            if not fn.is_module_scope:
                self._by_name.setdefault(fn.name, []).append(fn)

        add(
            FunctionNode(
                qualname=f"{module}.<module>",
                name="<module>",
                module=module,
                path=ctx.path,
                node=ctx.tree,
            )
        )

        def walk(node: ast.AST, prefix: str, class_name: str | None) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}.{child.name}"
                    add(
                        FunctionNode(
                            qualname=qual,
                            name=child.name,
                            module=module,
                            path=ctx.path,
                            node=child,
                            class_name=class_name,
                            params=_param_names(child),
                        )
                    )
                    walk(child, qual, None)
                elif isinstance(child, ast.ClassDef):
                    info.class_bases[child.name] = list(child.bases)
                    walk(child, f"{prefix}.{child.name}", child.name)
                else:
                    walk(child, prefix, class_name)

        walk(ctx.tree, module, None)
        self._collect_imports(ctx.tree, info)

    def _collect_imports(self, tree: ast.AST, info: _ModuleInfo) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else name
                    info.module_aliases[name] = target
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    info.from_imports[bound] = (node.module, alias.name)

    # -- lookup -----------------------------------------------------------

    def module_of(self, ctx_or_path: LintContext | str) -> str:
        path = (
            ctx_or_path.path
            if isinstance(ctx_or_path, LintContext)
            else ctx_or_path
        )
        return self._ctx_module[path]

    def lookup(self, qualname: str) -> FunctionNode | None:
        return self.functions.get(qualname)

    def _module_function(self, module: str, name: str) -> FunctionNode | None:
        return self.functions.get(f"{module}.{name}")

    def _resolve_class_method(
        self, module: str, class_name: str, method: str, depth: int = 0
    ) -> FunctionNode | None:
        if depth > 5:
            return None
        fn = self.functions.get(f"{module}.{class_name}.{method}")
        if fn is not None:
            return fn
        info = self._modules.get(module)
        if info is None:
            return None
        for base in info.class_bases.get(class_name, []):
            base_mod, base_name = self._resolve_class_expr(module, base)
            if base_name is None:
                continue
            fn = self._resolve_class_method(
                base_mod or module, base_name, method, depth + 1
            )
            if fn is not None:
                return fn
        return None

    def _resolve_class_expr(
        self, module: str, expr: ast.expr
    ) -> tuple[str | None, str | None]:
        """Resolve a base-class expression to (module, class name)."""
        info = self._modules.get(module)
        if isinstance(expr, ast.Name):
            if info and expr.id in info.from_imports:
                src_mod, src_name = info.from_imports[expr.id]
                return src_mod, src_name
            return module, expr.id
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if info and expr.value.id in info.module_aliases:
                return info.module_aliases[expr.value.id], expr.attr
        return None, None

    # -- call resolution --------------------------------------------------

    def resolve_call(
        self, caller: FunctionNode, call: ast.Call
    ) -> tuple[FunctionNode, ...]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name_call(caller, func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attr_call(caller, func)
        return ()

    def _resolve_name_call(
        self, caller: FunctionNode, name: str
    ) -> tuple[FunctionNode, ...]:
        # 1. function defined in the caller's module (module level)
        fn = self._module_function(caller.module, name)
        if fn is not None and fn.class_name is None:
            return (fn,)
        # 2. explicit `from mod import name`
        info = self._modules.get(caller.module)
        if info and name in info.from_imports:
            src_mod, src_name = info.from_imports[name]
            fn = self._module_function(src_mod, src_name)
            if fn is not None:
                return (fn,)
            return ()
        # 3. unique project-wide match on a module-level function
        candidates = [
            f for f in self._by_name.get(name, []) if f.class_name is None
        ]
        if len(candidates) == 1:
            return (candidates[0],)
        return ()

    def _resolve_attr_call(
        self, caller: FunctionNode, func: ast.Attribute
    ) -> tuple[FunctionNode, ...]:
        method = func.attr
        if method in COLLECTIVES or method in P2P_PRIMITIVES:
            return ()  # atomic protocol events
        recv = func.value
        if isinstance(recv, ast.Name):
            if recv.id in ("self", "cls") and caller.class_name:
                fn = self._resolve_class_method(
                    caller.module, caller.class_name, method
                )
                if fn is not None:
                    return (fn,)
                return ()
            info = self._modules.get(caller.module)
            if info and recv.id in info.module_aliases:
                fn = self._module_function(info.module_aliases[recv.id], method)
                if fn is not None:
                    return (fn,)
        return ()

    # -- traversal --------------------------------------------------------

    def call_sites(self, fn: FunctionNode) -> tuple[CallSite, ...]:
        """All call expressions in ``fn``'s body (nested defs excluded),
        in execution order, with resolved targets."""
        cached = self._call_cache.get(fn.qualname)
        if cached is not None:
            return cached
        sites = tuple(
            CallSite(caller=fn, call=call, targets=self.resolve_call(fn, call))
            for call in ordered_calls(fn.node)
        )
        self._call_cache[fn.qualname] = sites
        return sites

    def callers_of(self, qualname: str) -> list[CallSite]:
        """All resolved call sites targeting ``qualname``."""
        if self._callers is None:
            self._callers = {}
            for fn in list(self.functions.values()):
                for site in self.call_sites(fn):
                    for target in site.targets:
                        self._callers.setdefault(target.qualname, []).append(site)
        return self._callers.get(qualname, [])

    def iter_functions(self) -> Iterable[FunctionNode]:
        return self.functions.values()


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return tuple(names)
