"""AST-based lint engine with a pluggable rule registry.

The repo's correctness story rests on invariants no general-purpose linter
knows about: seeded RNG streams everywhere (bit-identical replays), an
autograd engine whose buffers must not be mutated behind the tape's back,
and collectives that every rank must issue congruently or the world
deadlocks. This module is the *static* half of :mod:`repro.analysis` — it
parses source files once, hands the tree to every registered
:class:`Rule`, and reports :class:`Finding`\\ s with precise
``path:line:col rule-id message`` locations.

Rules
-----
A rule is a subclass of :class:`Rule` with a unique ``id``, a ``category``
(``determinism`` / ``autograd`` / ``distributed`` / ...), and a ``check``
method yielding findings. Registration is declarative::

    @register
    class MyRule(Rule):
        id = "my-rule"
        category = "determinism"
        description = "what it catches and why it matters"

        def check(self, ctx):
            for node in ast.walk(ctx.tree):
                ...
                yield self.finding(ctx, node, "message")

The built-in catalogue lives in :mod:`repro.analysis.rules` and is loaded
on first use; external code can register more rules before calling
:func:`lint_paths`.

Suppressions
------------
Two comment forms, both requiring an explicit rule list (or ``all``), with
an optional ``--`` justification that reviewers can audit:

- per-line (trailing comment on the offending line)::

    t = time.time()  # repro-lint: disable=det-wall-clock -- log timestamp

- per-file (a comment on a line of its own, anywhere in the file)::

    # repro-lint: file-disable=dist-recv-timeout -- caller owns the deadline

Suppressed findings are not dropped silently: :class:`LintReport` carries
them in ``suppressed`` and the CLI prints the count.
"""

from __future__ import annotations

import ast
import io
import json
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintContext",
    "LintReport",
    "Rule",
    "register",
    "iter_rules",
    "get_rule",
    "rule_ids",
    "lint_file",
    "lint_paths",
]

#: marker introducing a suppression comment
_MARKER = "repro-lint:"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule_id} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Suppressions:
    """Parsed ``repro-lint:`` comments of one file."""

    def __init__(self, file_rules: set[str], line_rules: dict[int, set[str]]):
        self.file_rules = file_rules
        self.line_rules = line_rules

    def covers(self, finding: Finding) -> bool:
        for rules in (self.file_rules, self.line_rules.get(finding.line, ())):
            if "all" in rules or finding.rule_id in rules:
                return True
        return False

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        file_rules: set[str] = set()
        line_rules: dict[int, set[str]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return cls(set(), {})
        for line, comment in comments:
            body = comment.lstrip("#").strip()
            if not body.startswith(_MARKER):
                continue
            directive = body[len(_MARKER):].strip()
            # Strip the justification; it is for humans, not the engine.
            directive = directive.split("--", 1)[0].strip()
            if directive.startswith("file-disable="):
                file_rules.update(_split_rules(directive[len("file-disable="):]))
            elif directive.startswith("disable="):
                line_rules.setdefault(line, set()).update(
                    _split_rules(directive[len("disable="):])
                )
        return cls(file_rules, line_rules)


def _split_rules(spec: str) -> set[str]:
    return {part.strip() for part in spec.split(",") if part.strip()}


@dataclass
class LintContext:
    """Everything a rule may look at for one file."""

    path: str
    source: str
    tree: ast.AST
    #: dotted module name when the file lives under a ``repro`` package
    #: directory (``src/repro/optim/sgd.py`` -> ``repro.optim.sgd``), else
    #: ``None``; rules use it for module-scoped whitelists.
    module: str | None

    def in_module(self, prefixes: Sequence[str]) -> bool:
        if self.module is None:
            return False
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )


class Rule:
    """Base class for lint rules. Subclass, set metadata, implement check."""

    id: str = ""
    category: str = ""
    description: str = ""

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add to the global registry."""
    rule = rule_cls()
    if not rule.id or not rule.category or not rule.description:
        raise ValueError(f"{rule_cls.__name__} must set id, category, description")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def _load_builtin_rules() -> None:
    # Imported for the registration side effect; deferred so that
    # `import repro.analysis.lint` alone cannot recurse into rule modules.
    from repro.analysis import rules  # noqa: F401


def iter_rules() -> list[Rule]:
    _load_builtin_rules()
    return [_REGISTRY[i] for i in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    _load_builtin_rules()
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    _load_builtin_rules()
    return _REGISTRY[rule_id]


@dataclass
class LintReport:
    """Outcome of one lint run: active findings plus audit trail."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_scanned += other.files_scanned

    def sort(self) -> None:
        key = lambda f: (f.path, f.line, f.col, f.rule_id)  # noqa: E731
        self.findings.sort(key=key)
        self.suppressed.sort(key=key)

    def to_dict(self) -> dict:
        return {
            "files_scanned": self.files_scanned,
            "finding_count": len(self.findings),
            "suppressed_count": len(self.suppressed),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


def _module_name(path: Path) -> str | None:
    parts = list(path.with_suffix("").parts)
    try:
        i = parts.index("repro")
    except ValueError:
        return None
    mod = parts[i:]
    if mod[-1] == "__init__":
        mod = mod[:-1]
    return ".".join(mod)


def lint_file(
    path: str | Path,
    rules: Sequence[Rule] | None = None,
    source: str | None = None,
) -> LintReport:
    """Lint one file; a syntax error becomes a ``lint-parse`` finding."""
    path = Path(path)
    if source is None:
        source = path.read_text()
    report = LintReport(files_scanned=1)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                rule_id="lint-parse",
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return report
    ctx = LintContext(
        path=str(path), source=source, tree=tree, module=_module_name(path)
    )
    suppressions = Suppressions.parse(source)
    for rule in (iter_rules() if rules is None else rules):
        for finding in rule.check(ctx):
            if suppressions.covers(finding):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    report.sort()
    return report


def _iter_python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for path in sorted(root.rglob("*.py")):
        if any(part.startswith(".") or part == "__pycache__" for part in path.parts):
            continue
        yield path


def lint_paths(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
) -> LintReport:
    """Lint every ``*.py`` under ``paths``; restrict rules with ``select``."""
    if select is None:
        rules: Sequence[Rule] | None = None
    else:
        rules = [get_rule(rule_id) for rule_id in select]
    report = LintReport()
    for root in paths:
        for path in _iter_python_files(Path(root)):
            report.merge(lint_file(path, rules=rules))
    report.sort()
    return report
