"""AST-based lint engine with a pluggable rule registry.

The repo's correctness story rests on invariants no general-purpose linter
knows about: seeded RNG streams everywhere (bit-identical replays), an
autograd engine whose buffers must not be mutated behind the tape's back,
and collectives that every rank must issue congruently or the world
deadlocks. This module is the *static* half of :mod:`repro.analysis` — it
parses source files once, hands the tree to every registered
:class:`Rule`, and reports :class:`Finding`\\ s with precise
``path:line:col rule-id message`` locations.

Rules
-----
A rule is a subclass of :class:`Rule` with a unique ``id``, a ``category``
(``determinism`` / ``autograd`` / ``distributed`` / ...), and a ``check``
method yielding findings. Registration is declarative::

    @register
    class MyRule(Rule):
        id = "my-rule"
        category = "determinism"
        description = "what it catches and why it matters"

        def check(self, ctx):
            for node in ast.walk(ctx.tree):
                ...
                yield self.finding(ctx, node, "message")

Rules that need to see the *whole program* — call graphs, rank-taint
flow, cross-function collective sequences — subclass :class:`ProjectRule`
instead and implement ``check_project(project)``, receiving a
:class:`repro.analysis.callgraph.Project` built over every linted file in
one pass. ``lint_file`` runs project rules over a single-file project, so
per-rule fixtures exercise them exactly like per-file rules.

The built-in catalogue lives in :mod:`repro.analysis.rules` and is loaded
on first use; external code can register more rules before calling
:func:`lint_paths`.

Suppressions
------------
Two comment forms, both requiring an explicit rule list (or ``all``), with
an optional ``--`` justification that reviewers can audit:

- per-line (trailing comment on the offending line)::

    t = time.time()  # repro-lint: disable=det-wall-clock -- log timestamp

  A trailing disable on *any* physical line of a multi-line statement
  covers findings anchored anywhere in that statement's
  ``lineno..end_lineno`` range — rules anchor findings at the statement
  head or at an inner call, and the suppression comment necessarily sits
  on one physical line of the same statement.

- per-file (a comment on a line of its own, anywhere in the file)::

    # repro-lint: file-disable=dist-recv-timeout -- caller owns the deadline

Suppressed findings are not dropped silently: :class:`LintReport` carries
them in ``suppressed`` and the CLI prints the count.
"""

from __future__ import annotations

import ast
import io
import json
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintContext",
    "LintReport",
    "Rule",
    "ProjectRule",
    "register",
    "iter_rules",
    "get_rule",
    "rule_ids",
    "lint_file",
    "lint_paths",
]

#: marker introducing a suppression comment
_MARKER = "repro-lint:"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule_id} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Suppressions:
    """Parsed ``repro-lint:`` comments of one file."""

    def __init__(self, file_rules: set[str], line_rules: dict[int, set[str]]):
        self.file_rules = file_rules
        self.line_rules = line_rules

    def covers(self, finding: Finding) -> bool:
        for rules in (self.file_rules, self.line_rules.get(finding.line, ())):
            if "all" in rules or finding.rule_id in rules:
                return True
        return False

    @classmethod
    def parse(cls, source: str, tree: ast.AST | None = None) -> "Suppressions":
        file_rules: set[str] = set()
        line_rules: dict[int, set[str]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return cls(set(), {})
        for line, comment in comments:
            body = comment.lstrip("#").strip()
            if not body.startswith(_MARKER):
                continue
            directive = body[len(_MARKER):].strip()
            # Strip the justification; it is for humans, not the engine.
            directive = directive.split("--", 1)[0].strip()
            if directive.startswith("file-disable="):
                file_rules.update(_split_rules(directive[len("file-disable="):]))
            elif directive.startswith("disable="):
                line_rules.setdefault(line, set()).update(
                    _split_rules(directive[len("disable="):])
                )
        if tree is not None and line_rules:
            _expand_to_statements(line_rules, tree)
        return cls(file_rules, line_rules)


def _expand_to_statements(line_rules: dict[int, set[str]], tree: ast.AST) -> None:
    """Widen each line suppression to its whole enclosing statement.

    A rule may anchor a finding at a multi-line statement's head (or at an
    inner call on another physical line), while the suppression comment can
    only trail *one* physical line of that statement. The smallest
    statement whose ``lineno..end_lineno`` range contains the comment line
    is the statement the author pointed at; every line of that range gets
    the same rule set.
    """
    statements = [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.stmt) and getattr(node, "end_lineno", None)
    ]
    for line, rules in list(line_rules.items()):
        best: ast.stmt | None = None
        for stmt in statements:
            if stmt.lineno <= line <= stmt.end_lineno:
                if best is None or (stmt.end_lineno - stmt.lineno) < (
                    best.end_lineno - best.lineno
                ):
                    best = stmt
        if best is None or best.end_lineno == best.lineno:
            continue
        for covered in range(best.lineno, best.end_lineno + 1):
            line_rules.setdefault(covered, set()).update(rules)


def _split_rules(spec: str) -> set[str]:
    return {part.strip() for part in spec.split(",") if part.strip()}


@dataclass
class LintContext:
    """Everything a rule may look at for one file."""

    path: str
    source: str
    tree: ast.AST
    #: dotted module name when the file lives under a ``repro`` package
    #: directory (``src/repro/optim/sgd.py`` -> ``repro.optim.sgd``), else
    #: ``None``; rules use it for module-scoped whitelists.
    module: str | None

    def in_module(self, prefixes: Sequence[str]) -> bool:
        if self.module is None:
            return False
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )


class Rule:
    """Base class for lint rules. Subclass, set metadata, implement check."""

    id: str = ""
    category: str = ""
    description: str = ""

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule(Rule):
    """A rule that analyses the whole linted tree at once.

    ``check_project`` receives a :class:`repro.analysis.callgraph.Project`
    built from every file of the run (``lint_file`` builds a single-file
    project, so fixtures work unchanged) and yields findings anchored in
    any of the project's files; suppressions are applied per file exactly
    as for per-file rules.
    """

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return ()  # project rules only run via check_project

    def check_project(self, project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding_at(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add to the global registry."""
    rule = rule_cls()
    if not rule.id or not rule.category or not rule.description:
        raise ValueError(f"{rule_cls.__name__} must set id, category, description")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def _load_builtin_rules() -> None:
    # Imported for the registration side effect; deferred so that
    # `import repro.analysis.lint` alone cannot recurse into rule modules.
    from repro.analysis import rules  # noqa: F401


def iter_rules() -> list[Rule]:
    _load_builtin_rules()
    return [_REGISTRY[i] for i in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    _load_builtin_rules()
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    _load_builtin_rules()
    return _REGISTRY[rule_id]


@dataclass
class LintReport:
    """Outcome of one lint run: active findings plus audit trail."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_scanned += other.files_scanned

    def sort(self) -> None:
        key = lambda f: (f.path, f.line, f.col, f.rule_id)  # noqa: E731
        self.findings.sort(key=key)
        self.suppressed.sort(key=key)

    def to_dict(self) -> dict:
        return {
            "files_scanned": self.files_scanned,
            "finding_count": len(self.findings),
            "suppressed_count": len(self.suppressed),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


def _module_name(path: Path) -> str | None:
    parts = list(path.with_suffix("").parts)
    try:
        i = parts.index("repro")
    except ValueError:
        return None
    mod = parts[i:]
    if mod[-1] == "__init__":
        mod = mod[:-1]
    return ".".join(mod)


def _parse_one(
    path: Path, source: str | None = None
) -> tuple[LintContext | None, Suppressions | None, Finding | None]:
    """Parse one file into a context (or a ``lint-parse`` finding)."""
    if source is None:
        source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, None, Finding(
            rule_id="lint-parse",
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
        )
    ctx = LintContext(
        path=str(path), source=source, tree=tree, module=_module_name(path)
    )
    return ctx, Suppressions.parse(source, tree), None


def _run_rules(
    contexts: Sequence[tuple[LintContext, Suppressions]],
    rules: Sequence[Rule],
    report: LintReport,
) -> None:
    """Run per-file rules file by file, then project rules over the whole
    set; route every finding through its file's suppressions."""
    by_path = {ctx.path: sup for ctx, sup in contexts}

    def deliver(finding: Finding, sup: Suppressions | None) -> None:
        if sup is not None and sup.covers(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)

    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    for ctx, sup in contexts:
        for rule in file_rules:
            for finding in rule.check(ctx):
                deliver(finding, sup)
    if project_rules:
        from repro.analysis.callgraph import Project

        project = Project([ctx for ctx, _ in contexts])
        for rule in project_rules:
            for finding in rule.check_project(project):
                deliver(finding, by_path.get(finding.path))


def lint_file(
    path: str | Path,
    rules: Sequence[Rule] | None = None,
    source: str | None = None,
) -> LintReport:
    """Lint one file; a syntax error becomes a ``lint-parse`` finding.

    Project rules see a single-file project, so intra-file instances of
    interprocedural patterns (helper chains within one module) are still
    caught — only cross-file edges need :func:`lint_paths`.
    """
    path = Path(path)
    report = LintReport(files_scanned=1)
    ctx, suppressions, parse_error = _parse_one(path, source)
    if parse_error is not None:
        report.findings.append(parse_error)
        return report
    assert ctx is not None and suppressions is not None
    _run_rules(
        [(ctx, suppressions)],
        iter_rules() if rules is None else rules,
        report,
    )
    report.sort()
    return report


def _iter_python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for path in sorted(root.rglob("*.py")):
        if any(part.startswith(".") or part == "__pycache__" for part in path.parts):
            continue
        yield path


def lint_paths(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
) -> LintReport:
    """Lint every ``*.py`` under ``paths``; restrict rules with ``select``.

    All files are parsed before any project rule runs, so interprocedural
    rules see call edges that cross file boundaries.
    """
    if select is None:
        rules: Sequence[Rule] = iter_rules()
    else:
        rules = [get_rule(rule_id) for rule_id in select]
    report = LintReport()
    contexts: list[tuple[LintContext, Suppressions]] = []
    for root in paths:
        for path in _iter_python_files(Path(root)):
            report.files_scanned += 1
            ctx, sup, parse_error = _parse_one(path)
            if parse_error is not None:
                report.findings.append(parse_error)
                continue
            assert ctx is not None and sup is not None
            contexts.append((ctx, sup))
    _run_rules(contexts, rules, report)
    report.sort()
    return report
