"""Protocol scenarios for the schedule explorer.

Each :class:`Scenario` is a small multi-rank program over the real
distributed stack (``ThreadCommunicator`` → ``ResilientCommunicator`` →
elastic handshakes), written so a *correct* protocol completes cleanly
under every schedule, while a seeded fault hook re-introduces one of the
historical elastic bugs:

- ``recv-livelock`` flips :data:`repro.distributed.resilient
  ._DISCARD_DEADLINE` off, disabling the overall escalation deadline in
  ``_recv_loop`` — a peer flooding discardable JOIN re-announcements then
  keeps the receive alive forever (the explorer reports *livelock*).
- ``grow-double-sync`` flips :data:`repro.distributed.supervisor
  ._SKIP_SYNC_AFTER_JOIN` off — the joiner, admitted inside the
  survivors' sync boundary, runs the sync allgather the survivors are
  already past, interleaving mismatched collectives on the grown group
  (the explorer reports crossed payloads or a deadlock).

The ``allreduce`` and ``shrink`` scenarios carry no bug; they are the
regression surface proving the *fixed* protocol is schedule-clean, and
the CI gate runs them (plus the two seeded scenarios un-seeded) under a
bounded exploration budget.
"""

from __future__ import annotations

import importlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["Scenario", "SCENARIOS", "get_scenario", "scenario_names"]


@dataclass(frozen=True)
class Scenario:
    """One explorable protocol program."""

    name: str
    description: str
    world_size: int
    fn: Callable  # fn(comm, rank, shared_dict) -> None
    #: human name of the historical bug the fault hooks re-introduce
    bug: str | None = None
    #: (module, attribute, seeded value) triples applied while seeded
    fault_hooks: tuple = ()
    #: exception reprs (prefix match) that a clean run may legitimately
    #: surface from a rank
    tolerated_errors: tuple = ()
    #: event budget suited to the scenario's message volume
    default_max_steps: int = 4000

    @contextmanager
    def seeded(self, on: bool):
        """Apply the fault hooks for the duration of one run."""
        if not on or not self.fault_hooks:
            yield
            return
        saved = []
        try:
            for mod_name, attr, value in self.fault_hooks:
                mod = importlib.import_module(mod_name)
                saved.append((mod, attr, getattr(mod, attr)))
                setattr(mod, attr, value)
            yield
        finally:
            for mod, attr, old in reversed(saved):
                setattr(mod, attr, old)


# -- scenario programs ------------------------------------------------------


def _sc_allreduce(comm, rank: int, shared: dict) -> None:
    """Plain congruent collectives: two allreduces and a barrier."""
    x = np.full(4, float(rank + 1))
    out = comm.allreduce(x)
    assert np.allclose(out, 6.0), f"allreduce sum wrong: {out}"
    out2 = comm.allreduce(out, op="mean")
    assert np.allclose(out2, 6.0), f"allreduce mean wrong: {out2}"
    comm.barrier()


def _sc_shrink(comm, rank: int, shared: dict) -> None:
    """Rank 2 dies before the detection round; 0 and 1 agree on the
    shrunken world and keep training on it."""
    from repro.distributed.elastic import ElasticConfig, shrink_world
    from repro.distributed.resilient import ResilientCommunicator, RetryPolicy

    if rank == 2:
        return  # crashed: never heartbeats, never answers
    policy = RetryPolicy(max_attempts=2, backoff_base=0.01, attempt_timeout=0.2)
    rcomm = ResilientCommunicator(comm, policy)
    cfg = ElasticConfig(heartbeat_timeout=1.0, consensus_timeout=1.0)
    sub = shrink_world(rcomm, [0, 1, 2], epoch=1, config=cfg)
    assert sub.group == [0, 1], f"wrong survivor set: {sub.group}"
    out = sub.allreduce(np.full(2, float(sub.rank + 1)))
    assert np.allclose(out, 3.0), f"post-shrink allreduce wrong: {out}"


def _sc_recv_livelock(comm, rank: int, shared: dict) -> None:
    """A restarted rank floods JOIN re-announcements at a peer blocked in
    a data receive. Discarded frames consume no retry attempt; the overall
    escalation deadline (the fix) is what turns the flood into a bounded
    ``RankFailure`` instead of an eternal receive."""
    from repro.distributed.comm import RankFailure
    from repro.distributed.resilient import (
        JOIN_TAG,
        ResilientCommunicator,
        RetryPolicy,
    )

    policy = RetryPolicy(max_attempts=2, backoff_base=0.05, attempt_timeout=0.25)
    rcomm = ResilientCommunicator(comm, policy)
    if rank == 0:
        try:
            rcomm.recv(1, timeout=0.25)  # expects data; none will ever come
            raise AssertionError("recv returned data from a flooding joiner")
        except RankFailure:
            shared["escalated"] = True  # the fixed behaviour: bounded
        finally:
            shared["stop"] = True
    else:
        import time

        join_epoch = 0.0  # a restarted rank starts from epoch zero
        announce = np.array([JOIN_TAG, 1.0, join_epoch])
        while not shared.get("stop"):  # a joiner re-announces until invited
            rcomm.send_ctrl(0, announce)
            time.sleep(0.1)


def _sc_double_sync(comm, rank: int, shared: dict) -> None:
    """The grow handshake's step boundary, distilled: survivors admit a
    joiner *inside* their sync boundary, then head into the step's
    allreduce on the grown group. The joiner must skip its own sync — the
    handshake stood in for it (``_SKIP_SYNC_AFTER_JOIN``); running it
    anyway interleaves an allgather with the survivors' allreduce."""
    from repro.distributed import supervisor
    from repro.distributed.comm import SubCommunicator

    # The rank-divergent collectives below are the scenario's *subject*:
    # each role (survivor / joiner) issues the handshake's congruent
    # sequence on its side, which is exactly what the explorer verifies.
    step_vec = np.array([1.0, 2.0])
    if rank in (0, 1):
        survivors = SubCommunicator(comm, [0, 1])
        gathered = survivors.allgather(  # repro-lint: disable=dist-rank-collective -- survivors' sync boundary: congruent within the [0, 1] group, the joiner is not a member yet
            np.array([float(rank), 1.0])
        )
        assert len(gathered) == 2
        if rank == 0:  # leader invites the joiner inside the boundary
            comm.send(2, np.array([7.0, 1.0, 0.0]))
        grown = SubCommunicator(comm, [0, 1, 2])
        out = grown.allreduce(step_vec)  # repro-lint: disable=dist-rank-collective -- step collective on the grown group: every member of [0, 1, 2] issues it on both role paths
        assert np.allclose(out, 3.0 * step_vec), f"crossed payloads: {out}"
    else:
        invite = comm.recv(0, timeout=2.0)
        assert invite[0] == 7.0, f"not an invite: {invite}"
        grown = SubCommunicator(comm, [0, 1, 2])
        if not supervisor._SKIP_SYNC_AFTER_JOIN:
            # The historical bug: the joiner's own sync boundary, run
            # after the survivors already passed theirs.
            grown.allgather(np.array([2.0, 1.0]))  # repro-lint: disable=dist-rank-collective -- the seeded double-sync bug itself; only runs when the fault hook is flipped
        out = grown.allreduce(step_vec)  # repro-lint: disable=dist-rank-collective -- step collective on the grown group: every member of [0, 1, 2] issues it on both role paths
        assert np.allclose(out, 3.0 * step_vec), f"crossed payloads: {out}"


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in [
        Scenario(
            name="allreduce",
            description="two congruent allreduces + barrier on 3 ranks",
            world_size=3,
            fn=_sc_allreduce,
        ),
        Scenario(
            name="shrink",
            description="rank 2 dies; 0 and 1 run the heartbeat/consensus "
            "shrink handshake and allreduce on the survivor world",
            world_size=3,
            fn=_sc_shrink,
        ),
        Scenario(
            name="recv-livelock",
            description="a flooding JOIN re-announcer vs a blocked data "
            "recv; the escalation deadline bounds it (seeded: livelock)",
            world_size=2,
            fn=_sc_recv_livelock,
            bug="recv livelock (discarded frames reset the retry window)",
            fault_hooks=(
                ("repro.distributed.resilient", "_DISCARD_DEADLINE", False),
            ),
            default_max_steps=1500,
        ),
        Scenario(
            name="grow-double-sync",
            description="joiner admitted inside the survivors' sync "
            "boundary; skipping its own sync keeps the grown group "
            "congruent (seeded: double sync boundary)",
            world_size=3,
            fn=_sc_double_sync,
            bug="double sync boundary after JOIN admission",
            fault_hooks=(
                ("repro.distributed.supervisor", "_SKIP_SYNC_AFTER_JOIN", False),
            ),
        ),
    ]
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)
