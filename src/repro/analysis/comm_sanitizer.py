"""Collective-congruence sanitizer: MUST-style runtime checking.

A mismatched collective — rank 0 in ``allreduce`` while rank 2 entered
``broadcast``, or one rank skipping a step's gradient average — does not
fail; it *deadlocks*, and after the timeout every rank reports an equally
useless "no message from peer". :class:`CommSanitizer` wraps any
:class:`~repro.distributed.comm.Communicator` and fingerprints every
collective call — kind, reduce-op/root, shape, dtype, sequence number and
call site — over the same point-to-point channels. Incongruent calls are
raised as :class:`CollectiveMismatchError` naming both ranks and both call
sites instead of wedging the world.

Protocol
--------
At the entry of its ``k``-th collective, each rank eagerly sends a
fixed-size magic-tagged fingerprint frame to its *left* ring neighbour,
then runs the collective. Congruence is an equivalence relation, so
pairwise agreement around the ring implies global agreement — checking one
neighbour per rank is exact, not a sampling shortcut. Verification of the
right neighbour's frames is *deferred*: frames sit in the channel until

- the non-blocking entry drain of a later collective picks them up
  (:meth:`Communicator.poll` probe — never stalls), or
- the collective itself fails (hop timeout / shape error), in which case a
  *blocking* drain of the right neighbour's frame converts the wedge into
  a precise diagnosis, or
- a frame arrives interleaved with payload on a shared channel (world
  size 2, tree collectives), where the sanitizer's own ``recv`` filters it
  out transparently — sanitized collectives run through the base-class
  algorithms on the wrapper itself so every hop passes this filter.

Deferral is what makes the sanitizer affordable: any *blocking* frame
exchange before the collective couples neighbours into lockstep, and on
an oversubscribed host every blocking round costs a scheduling quantum
per rank per collective (measured: an eager bidirectional exchange is
~25% on paper-scale 2M-float64 allreduces; recording alone is ~1%). The
deferred drain only ever reads frames that already arrived, so the
steady-state cost is the frame send plus a poll — see
``benchmarks/bench_sanitizer_overhead.py`` for current numbers.

Collectives whose progress does not imply world-wide entry (``broadcast``,
``reduce`` — a tree root completes before leaves even start) and
``barrier`` (backends may use native primitives that cannot time out)
validate *eagerly* instead: frame sent, then a blocking wait for the right
neighbour's frame before touching the collective. Divergence there is
detected before any payload moves. The same eager path is the fallback
when the wrapped backend cannot ``poll`` or uses a non-ring algorithm.

Ordering correctness rests on two backend guarantees (see CONTRIBUTING):
sends are eager (so frame sends never deadlock) and per-pair channels are
FIFO (a rank's frame for collective ``k`` precedes any payload it sends
during collective ``k``, so a drain that stops after frame ``k`` never
eats payload).

Scope: route *all* traffic of the wrapped communicator through the wrapper
(fingerprint frames share the underlying channels; raw point-to-point
interleaved from outside would mis-slot them). When stacking with fault
injection, put the sanitizer *below* the injector (so injected divergence
is visible) and *above* the resilience layer (so frames are checksummed
and retransmitted like any payload — an unprotected dropped frame would
desynchronise the fingerprint stream).
"""

from __future__ import annotations

import sys
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.distributed.comm import (
    Communicator,
    CommTimeoutError,
    DEFAULT_TIMEOUT,
    RankFailure,
)

__all__ = ["CollectiveMismatchError", "CollectiveRecord", "CommSanitizer"]

_KIND_IDS = {
    "allreduce": 1.0,
    "broadcast": 2.0,
    "allgather": 3.0,
    "reduce": 4.0,
    "barrier": 5.0,
}
_KIND_NAMES = {v: k for k, v in _KIND_IDS.items()}
_OP_IDS = {"": 0.0, "sum": 1.0, "mean": 2.0, "max": 3.0, "min": 4.0, "prod": 5.0}
_OP_NAMES = {v: k for k, v in _OP_IDS.items()}

#: fingerprint frame layout (float64 slots):
#: [magic, seq, kind, op, root, dtype_hash, ndim, dim0..dim5, site bytes...]
_MAX_DIMS = 6
_SITE_BYTES = 120
_HEADER = 7 + _MAX_DIMS
_FRAME_LEN = _HEADER + _SITE_BYTES
#: magic tag distinguishing fingerprint frames from payload sharing a
#: channel; an arbitrary but fixed normal float64 (the bytes "REPROSAN").
_FRAME_MAGIC = float(np.frombuffer(b"REPROSAN", dtype=np.float64)[0])

#: collectives safe for deferred validation: ring traffic flows strictly
#: rank -> rank+1, so completion implies every rank entered, and the
#: right-neighbour frame channel (rank -> rank-1) carries only frames.
_DEFERRED_KINDS = frozenset({"allreduce", "allgather"})


def _is_frame(array: np.ndarray) -> bool:
    return (
        getattr(array, "ndim", -1) == 1
        and array.shape[0] == _FRAME_LEN
        and array.dtype == np.float64
        and array[0] == _FRAME_MAGIC
    )


class CollectiveMismatchError(RuntimeError):
    """Two ranks issued incongruent collectives (or one issued none).

    Carries ``rank`` / ``peer`` (communicator-local numbering) and the
    decoded :class:`CollectiveRecord` of each side where available.
    """

    def __init__(
        self,
        message: str,
        rank: int,
        peer: int,
        mine: "CollectiveRecord | None" = None,
        theirs: "CollectiveRecord | None" = None,
    ):
        super().__init__(message)
        self.rank = rank
        self.peer = peer
        self.mine = mine
        self.theirs = theirs


@dataclass(frozen=True)
class CollectiveRecord:
    """One fingerprinted collective call."""

    seq: int
    kind: str
    op: str
    root: int
    shape: tuple[int, ...]
    dtype: str
    site: str

    def describe(self) -> str:
        detail = []
        if self.kind in ("allreduce", "reduce"):
            detail.append(f"op={self.op}")
        if self.kind in ("broadcast", "reduce"):
            detail.append(f"root={self.root}")
        if self.kind != "barrier":
            detail.append(f"shape={self.shape}")
            detail.append(f"dtype={self.dtype}")
        inner = ", ".join(detail)
        return f"{self.kind}({inner}) at {self.site}"

    def congruent_with(self, other: "CollectiveRecord") -> bool:
        return (
            self.seq == other.seq
            and self.kind == other.kind
            and self.op == other.op
            and self.root == other.root
            and self.shape == other.shape
            and self.dtype == other.dtype
        )

    # -- wire format ----------------------------------------------------------

    def encode(self) -> np.ndarray:
        frame = np.zeros(_FRAME_LEN)
        frame[0] = _FRAME_MAGIC
        frame[1] = float(self.seq)
        frame[2] = _KIND_IDS[self.kind]
        frame[3] = _OP_IDS.get(self.op, -1.0)
        frame[4] = float(self.root)
        frame[5] = float(_stable_hash(self.dtype))
        frame[6] = float(len(self.shape))
        for i, dim in enumerate(self.shape[:_MAX_DIMS]):
            frame[7 + i] = float(dim)
        site = self.site[-_SITE_BYTES:].encode("utf-8", "replace")[:_SITE_BYTES]
        frame[_HEADER : _HEADER + len(site)] = np.frombuffer(site, dtype=np.uint8)
        return frame

    @classmethod
    def decode(cls, frame: np.ndarray, dtype_names: dict[int, str]) -> "CollectiveRecord":
        frame = np.asarray(frame).reshape(-1)
        ndim = int(frame[6])
        site_bytes = frame[_HEADER:].astype(np.uint8).tobytes().rstrip(b"\0")
        return cls(
            seq=int(frame[1]),
            kind=_KIND_NAMES.get(frame[2], f"unknown<{frame[2]:.0f}>"),
            op=_OP_NAMES.get(frame[3], "?"),
            root=int(frame[4]),
            shape=tuple(int(d) for d in frame[7 : 7 + min(ndim, _MAX_DIMS)]),
            dtype=dtype_names.get(int(frame[5]), f"hash<{int(frame[5])}>"),
            site=site_bytes.decode("utf-8", "replace"),
        )


def _stable_hash(text: str) -> int:
    # FNV-1a over utf-8, folded to 32 bits: stable across processes (unlike
    # hash()), exactly representable in a float64 slot.
    acc = 2166136261
    for byte in text.encode("utf-8"):
        acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
    return acc


def _call_site(skip_file: str) -> str:
    # Prefer the first frame outside the distributed runtime itself, so a
    # collective routed through wrapper layers (fault injectors, resilient
    # framing, Communicator.split's internal allgather) is attributed to
    # the user code that issued it; fall back to the innermost non-sanitizer
    # frame when everything is runtime-internal.
    import repro.distributed as _dist

    runtime_dir = _dist.__path__[0]
    frame = sys._getframe(2)
    fallback = None
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename != skip_file:
            if fallback is None:
                fallback = frame
            if not filename.startswith(runtime_dir):
                break
        frame = frame.f_back
    frame = frame or fallback
    if frame is None:
        return "<unknown>"
    path = frame.f_code.co_filename
    tail = "/".join(path.replace("\\", "/").split("/")[-3:])
    return f"{tail}:{frame.f_lineno}"


class CommSanitizer(Communicator):
    """Wrap a communicator; cross-validate every collective it runs.

    Parameters
    ----------
    inner:
        The communicator to wrap (any backend, or a fault-injection stack —
        put the sanitizer *below* the injector so injected divergence is
        seen, and *above* the resilience layer so fingerprint frames are
        checksummed like any payload).
    timeout:
        Progress deadline: bounds both the wait for a peer's fingerprint
        (a peer that issued *no* collective within it is reported as a
        named divergence, not a generic ``CommTimeoutError``) and each
        hop of a sanitized collective, so a diverged world fails within
        roughly this long instead of the backend's default.
    history:
        Keep the last ``history`` :class:`CollectiveRecord`\\ s in
        :attr:`records` for post-mortem inspection.
    """

    def __init__(
        self,
        inner: Communicator,
        timeout: float = DEFAULT_TIMEOUT,
        history: int = 256,
    ):
        self.inner = inner
        self.timeout = float(timeout)
        self.algorithm = inner.algorithm
        self.seq = 0
        self.records: list[CollectiveRecord] = []
        self._history = int(history)
        self._dtype_names: dict[int, str] = {}
        size = inner.size
        self._left = (inner.rank - 1) % size
        self._right = (inner.rank + 1) % size
        #: pending own records awaiting the right neighbour's frame, by seq
        self._unverified: dict[int, CollectiveRecord] = {}
        #: number of fingerprint frames consumed from the right neighbour;
        #: frames arrive in order, so the j-th one pairs with our record j
        self._frames_seen = 0
        #: non-frame messages consumed while hunting frames on the right
        #: channel; re-served (FIFO) by :meth:`recv` before fresh traffic
        self._deferred: deque = deque()
        self._in_collective = False
        #: deferred validation requires ring traffic patterns and a backend
        #: that can probe; degrades (permanently) to eager on the first
        #: NotImplementedError from ``inner.poll``
        self._can_defer = inner.algorithm == "ring"

    # -- delegation -----------------------------------------------------------

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def stats(self):
        return self.inner.stats

    def send(self, dest: int, array: np.ndarray) -> None:
        self.inner.send(dest, array)

    def recv(self, source: int, timeout: float = DEFAULT_TIMEOUT) -> np.ndarray:
        if self._in_collective:
            # Sanitized collective hops honour the sanitizer's progress
            # deadline, so a diverged world fails in ~timeout seconds
            # instead of the backend default.
            timeout = min(timeout, self.timeout)
        if source == self._right and self._deferred:
            return self._deferred.popleft()
        while True:
            out = self.inner.recv(source, timeout=timeout)
            if source == self._right and _is_frame(out):
                # A fingerprint frame interleaved with payload (world
                # size 2, tree collectives): verify and keep reading.
                self._ingest_frame(out)
                continue
            return out

    def poll(self, source: int, timeout: float = 0.0) -> bool:
        if source == self._right and self._deferred:
            return True
        return self.inner.poll(source, timeout=timeout)

    # -- fingerprinting -------------------------------------------------------

    def _record(
        self, kind: str, array: np.ndarray | None, op: str = "", root: int = -1
    ) -> CollectiveRecord:
        if array is None:
            shape: tuple[int, ...] = ()
            dtype = ""
        else:
            arr = np.asarray(array)
            shape = arr.shape
            dtype = arr.dtype.name
        self._dtype_names[_stable_hash(dtype)] = dtype
        record = CollectiveRecord(
            seq=self.seq,
            kind=kind,
            op=op,
            root=root,
            shape=shape,
            dtype=dtype,
            site=_call_site(__file__),
        )
        self.seq += 1
        self.records.append(record)
        del self.records[: -self._history]
        if self.size > 1:
            self._unverified[record.seq] = record
        return record

    def _ingest_frame(self, raw: np.ndarray) -> None:
        """Pair the next frame from the right neighbour with our own record
        of the same position and raise on incongruence."""
        j = self._frames_seen
        self._frames_seen += 1
        theirs = CollectiveRecord.decode(raw, self._dtype_names)
        mine = self._unverified.pop(j, None)
        if mine is not None and not mine.congruent_with(theirs):
            raise CollectiveMismatchError(
                f"collective #{mine.seq} diverged: rank {self.rank} called "
                f"{mine.describe()}; rank {self._right} called "
                f"{theirs.describe()}",
                rank=self.rank,
                peer=self._right,
                mine=mine,
                theirs=theirs,
            )

    def _drain_available(self, record: CollectiveRecord) -> bool:
        """Verify right-neighbour frames that already arrived, never
        blocking. Returns False if the backend cannot probe."""
        try:
            while (
                self._frames_seen <= record.seq
                and self.inner.poll(self._right, timeout=0.0)
            ):
                raw = self.inner.recv(self._right, timeout=self.timeout)
                if _is_frame(raw):
                    self._ingest_frame(raw)
                else:
                    self._deferred.append(raw)
        except NotImplementedError:
            return False
        return True

    def _await_frame(self, record: CollectiveRecord) -> None:
        """Blocking drain until the right neighbour's frame for this
        collective is verified (the eager validation path)."""
        while self._frames_seen <= record.seq:
            try:
                raw = self.inner.recv(self._right, timeout=self.timeout)
            except CommTimeoutError as exc:
                raise CollectiveMismatchError(
                    f"collective #{record.seq} diverged: rank {self.rank} "
                    f"called {record.describe()}, but rank {self._right} "
                    f"issued no collective within {self.timeout}s (diverged "
                    "or dead peer)",
                    rank=self.rank,
                    peer=self._right,
                    mine=record,
                ) from exc
            if _is_frame(raw):
                self._ingest_frame(raw)
            else:
                self._deferred.append(raw)

    def _validate(self, record: CollectiveRecord) -> None:
        """Send our fingerprint; verify the right neighbour's — deferred
        (non-blocking) where the traffic pattern allows, eager otherwise."""
        self.inner.send(self._left, record.encode())
        if self._can_defer and record.kind in _DEFERRED_KINDS:
            if self._drain_available(record):
                return
            self._can_defer = False  # backend cannot poll: stay eager
        self._await_frame(record)

    def _diagnose(self, record: CollectiveRecord, exc: Exception) -> None:
        """A sanitized collective failed mid-flight: pull the right
        neighbour's outstanding frames to name the divergence. Returns
        normally when the right boundary is congruent (divergence is
        elsewhere in the ring — that rank raises the precise error)."""
        while self._frames_seen <= record.seq:
            try:
                raw = self.inner.recv(self._right, timeout=self.timeout)
            except (CommTimeoutError, RankFailure) as drain_exc:
                if isinstance(exc, CommTimeoutError):
                    raise CollectiveMismatchError(
                        f"collective #{record.seq} diverged: rank {self.rank} "
                        f"called {record.describe()}, but rank {self._right} "
                        f"issued no collective within {self.timeout}s "
                        "(diverged or dead peer)",
                        rank=self.rank,
                        peer=self._right,
                        mine=record,
                    ) from drain_exc
                return  # RankFailure / non-comm failure: re-raise undisturbed
            if _is_frame(raw):
                self._ingest_frame(raw)  # raises on incongruence
            else:
                self._deferred.append(raw)

    # -- sanitized collectives ------------------------------------------------

    def _run(self, record: CollectiveRecord, call):
        if self.size == 1:
            return call()
        self._validate(record)
        self._in_collective = True
        try:
            return call()
        except (CommTimeoutError, RankFailure, ValueError) as exc:
            # RankFailure: a resilient layer below escalates wedged hops to
            # "peer dead" — which a diverged peer looks identical to. The
            # diagnosis upgrades it to a named mismatch only when the right
            # neighbour's frame proves divergence; a genuinely dead peer
            # re-raises RankFailure so elastic shrink flows are untouched.
            self._diagnose(record, exc)
            raise
        finally:
            self._in_collective = False

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        record = self._record("allreduce", array, op=op)
        # Run the collective algorithm *on the sanitizer* so every hop goes
        # through the frame-filtering recv above.
        return self._run(record, lambda: Communicator.allreduce(self, array, op=op))

    def broadcast(self, array: np.ndarray, root: int = 0) -> np.ndarray:
        record = self._record("broadcast", array, root=root)
        return self._run(
            record, lambda: Communicator.broadcast(self, array, root=root)
        )

    def allgather(self, array: np.ndarray) -> list[np.ndarray]:
        record = self._record("allgather", array)
        return self._run(record, lambda: Communicator.allgather(self, array))

    def reduce(
        self, array: np.ndarray, root: int = 0, op: str = "sum"
    ) -> np.ndarray | None:
        record = self._record("reduce", array, op=op, root=root)
        return self._run(
            record, lambda: Communicator.reduce(self, array, root=root, op=op)
        )

    def barrier(self) -> None:
        record = self._record("barrier", None)
        if self.size == 1:
            return
        # Validation is eager here (barrier is not a deferred kind):
        # backends may implement barrier natively (e.g. a threading.Barrier)
        # with no timeout to convert — divergence must be caught before
        # entering it.
        self._validate(record)
        self.inner.barrier()
