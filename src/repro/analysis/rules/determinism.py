"""Determinism-hygiene rules.

Every stochastic routine in this repo takes an explicit
``numpy.random.Generator`` (see CONTRIBUTING: "RNG discipline"), because the
paper's claims are verified by bit-identical replays — fast path vs naive
path, checkpoint restore, cross-backend collectives. Any draw from global
or wall-clock-seeded state silently voids those guarantees, so the linter
bans the whole API family rather than trusting review to catch each use.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint import Finding, LintContext, Rule, register

#: members of ``numpy.random`` that are *not* hidden global state: the
#: Generator construction surface and bit generators.
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "MT19937",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
}

#: wall-clock reads that can leak into numerics or seeds. Duration clocks
#: (``perf_counter``, ``monotonic``, ``process_time``) are allowed: they
#: measure elapsed intervals for reporting, not state.
_WALL_CLOCK_ATTRS = {"time", "time_ns"}
_DATETIME_ATTRS = {"now", "utcnow", "today"}


def _attr_chain(node: ast.AST) -> list[str]:
    """``np.random.default_rng`` -> ["np", "random", "default_rng"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        return []
    return parts[::-1]


@register
class GlobalNumpyRandom(Rule):
    id = "det-global-rng"
    category = "determinism"
    description = (
        "legacy numpy.random.* global-state API (seed/rand/choice/...); "
        "draws from hidden process-wide state break bit-identical replays — "
        "thread a seeded np.random.default_rng(seed) Generator instead"
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
                if (
                    len(chain) >= 3
                    and chain[-3] in ("np", "numpy")
                    and chain[-2] == "random"
                    and chain[-1] not in _NP_RANDOM_OK
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"numpy.random.{chain[-1]} uses hidden global RNG "
                        "state; use an explicitly seeded "
                        "np.random.default_rng(seed)",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _NP_RANDOM_OK:
                            yield self.finding(
                                ctx,
                                node,
                                f"from numpy.random import {alias.name} pulls "
                                "in global-state API; import a Generator "
                                "constructor instead",
                            )


@register
class StdlibRandom(Rule):
    id = "det-stdlib-random"
    category = "determinism"
    description = (
        "the stdlib random module is process-global and unseedable per call "
        "site; use np.random.default_rng(seed)"
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib random draws from process-global state; "
                            "use np.random.default_rng(seed)",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.finding(
                    ctx,
                    node,
                    "stdlib random draws from process-global state; "
                    "use np.random.default_rng(seed)",
                )


@register
class UnseededDefaultRng(Rule):
    id = "det-unseeded-rng"
    category = "determinism"
    description = (
        "np.random.default_rng() without a seed argument draws OS entropy; "
        "every Generator construction must name its seed so runs replay"
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if not chain or chain[-1] != "default_rng":
                continue
            if len(chain) >= 2 and chain[-2] != "random":
                continue  # some_obj.default_rng — not numpy's
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "default_rng() without a seed is entropy-seeded and "
                    "unreproducible; pass an explicit seed (or a spawned "
                    "SeedSequence)",
                )


@register
class WallClock(Rule):
    id = "det-wall-clock"
    category = "determinism"
    description = (
        "wall-clock reads (time.time, datetime.now, ...) in numerics code "
        "make behaviour machine/run dependent; duration clocks "
        "(perf_counter/monotonic) are allowed for reporting"
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) < 2:
                continue
            if chain[-2] == "time" and chain[-1] in _WALL_CLOCK_ATTRS:
                yield self.finding(
                    ctx,
                    node,
                    f"time.{chain[-1]}() reads the wall clock; derive "
                    "behaviour from seeds/counters, and use perf_counter "
                    "for durations",
                )
            elif chain[-1] in _DATETIME_ATTRS and chain[-2] in (
                "datetime",
                "date",
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{chain[-2]}.{chain[-1]}() reads the wall clock; "
                    "timestamps belong in logging sinks, not numerics",
                )
