"""Tape-safety rules for the step compiler.

:mod:`repro.jit` records ONE straight-line execution of ``forward`` /
``log_psi`` and replays it for every later batch with a matching guard key
(shape, dtype, parameter structure). Python-level control flow that branches
on the *values* flowing through the model is invisible to that guard: the
replay silently follows whichever branch the traced batch happened to take.
These rules flag the lexically obvious cases before a model ever reaches
``VQMC.step(compile='on')``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint import Finding, LintContext, Rule, register

#: methods the compiler traces (directly, or transitively from ``log_psi``);
#: branches anywhere on this surface end up recorded as straight-line code.
_TRACED_METHODS = ("forward", "log_psi", "log_prob", "logits")


def _arg_names(fn: ast.FunctionDef) -> set[str]:
    args = fn.args
    names = [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.append(extra.arg)
    return {n for n in names if n not in ("self", "cls")}


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _tainted_names(fn: ast.FunctionDef) -> set[str]:
    """Function arguments plus every name (transitively) assigned from one.

    A deliberately coarse lexical taint: precision is not the point — a
    branch on anything derived from the batch is a re-trace hazard.
    """
    tainted = _arg_names(fn)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = node.value
                if value is None or not (_names_in(value) & tainted):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    for name in _names_in(target):
                        if name not in tainted:
                            tainted.add(name)
                            changed = True
    return tainted


@register
class TapeUnsafeControlFlow(Rule):
    id = "jit-tape-unsafe"
    category = "jit"
    description = (
        "data-dependent control flow on the traced forward surface "
        "(forward/log_psi/log_prob/logits branching on a function "
        "argument); the step compiler records one straight-line path, so "
        "the replay silently follows the traced branch for every batch"
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for fn in cls.body:
                if (
                    not isinstance(fn, ast.FunctionDef)
                    or fn.name not in _TRACED_METHODS
                ):
                    continue
                tainted = _tainted_names(fn)
                for node in ast.walk(fn):
                    if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                        hot = sorted(_names_in(node.test) & tainted)
                        if hot:
                            kind = type(node).__name__.lower()
                            yield self.finding(
                                ctx,
                                node,
                                f"{kind} branches on {', '.join(hot)} inside "
                                f"{cls.name}.{fn.name}; the compiled tape "
                                "replays only the traced branch — hoist the "
                                "branch out of the traced surface or run "
                                "this model with compile='off'",
                            )
