"""Distributed-hygiene rules.

Collectives are a *congruence* contract: every rank of a communicator must
issue the same sequence of collective calls with compatible arguments, or
the world deadlocks — the failure mode the fault-injection layer (PR 2) can
observe but not diagnose. The dynamic
:class:`~repro.analysis.comm_sanitizer.CommSanitizer` verifies congruence
at runtime; these rules flag the two lexical patterns that cause most
divergences before a single rank is spawned.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint import Finding, LintContext, Rule, register

#: Communicator methods that are collective (every rank must participate)
_COLLECTIVES = {"allreduce", "broadcast", "allgather", "reduce", "barrier", "split"}


def _mentions_rank(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "rank":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "rank":
            return True
    return False


class _RankBranchVisitor(ast.NodeVisitor):
    """Record collective calls lexically inside rank-dependent branches."""

    def __init__(self) -> None:
        self.rank_depth = 0
        self.hits: list[tuple[ast.Call, str]] = []

    def _visit_branching(self, node: ast.If | ast.While) -> None:
        dependent = _mentions_rank(node.test)
        if dependent:
            self.rank_depth += 1
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        if dependent:
            self.rank_depth -= 1

    visit_If = _visit_branching
    visit_While = _visit_branching

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self.rank_depth > 0
            and isinstance(func, ast.Attribute)
            and func.attr in _COLLECTIVES
        ):
            self.hits.append((node, func.attr))
        self.generic_visit(node)


@register
class RankDependentCollective(Rule):
    id = "dist-rank-collective"
    category = "distributed"
    description = (
        "collective call lexically nested under a rank-dependent branch; "
        "unless every rank takes a congruent path this deadlocks the world "
        "— hoist the collective out of the branch (reduce/broadcast already "
        "handle root-vs-rest asymmetry internally)"
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        visitor = _RankBranchVisitor()
        visitor.visit(ctx.tree)
        for node, name in visitor.hits:
            yield self.finding(
                ctx,
                node,
                f".{name}() inside a rank-dependent branch; every rank must "
                "issue the same collective sequence — hoist it out (or "
                "suppress with the congruence argument spelled out)",
            )


def _mentions_epoch(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "epoch" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "epoch" in sub.attr.lower():
            return True
        if isinstance(sub, ast.keyword) and sub.arg and "epoch" in sub.arg.lower():
            return True
    return False


def _payload_carries_epoch(call: ast.Call, scope: ast.AST) -> bool:
    """Does a ``send_ctrl`` call's payload mention an epoch?

    Either directly in the argument expressions, or — when the payload is a
    bare name — in any assignment to that name within the enclosing scope
    (the idiom: ``heartbeat = np.array([HB, float(epoch), ...])`` then
    ``comm.send_ctrl(peer, heartbeat)``).
    """
    args = list(call.args) + [kw.value for kw in call.keywords]
    if any(_mentions_epoch(arg) for arg in args):
        return True
    names = {arg.id for arg in args if isinstance(arg, ast.Name)}
    if not names:
        return False
    for sub in ast.walk(scope):
        if isinstance(sub, ast.Assign):
            targets = [
                t.id for t in sub.targets if isinstance(t, ast.Name)
            ]
            if set(targets) & names and _mentions_epoch(sub.value):
                return True
        elif isinstance(sub, ast.AnnAssign):
            if (
                isinstance(sub.target, ast.Name)
                and sub.target.id in names
                and sub.value is not None
                and _mentions_epoch(sub.value)
            ):
                return True
    return False


@register
class CtrlFrameWithoutEpoch(Rule):
    id = "dist-epoch-tag"
    category = "distributed"
    description = (
        "control-frame send without an epoch tag; an untagged frame cannot "
        "be discarded as stale by a later detection/join round, which is "
        "exactly the stale-membership bug class the elastic epoch exists to "
        "kill — put the epoch in the payload (or in the expression that "
        "builds it)"
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        # Map each send_ctrl call to its innermost enclosing function so
        # bare-name payloads can be resolved against local assignments.
        scopes: list[ast.AST] = [ctx.tree]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        seen: set[int] = set()
        for scope in reversed(scopes):  # inner functions before the module
            for node in ast.walk(scope):
                if id(node) in seen or not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (isinstance(func, ast.Attribute) and func.attr == "send_ctrl"):
                    continue
                seen.add(id(node))
                if _payload_carries_epoch(node, scope):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    ".send_ctrl() payload carries no epoch tag; receivers "
                    "cannot tell this frame from a stale round's — build "
                    "the payload from the current epoch",
                )


@register
class RecvWithoutTimeout(Rule):
    id = "dist-recv-timeout"
    category = "distributed"
    description = (
        "point-to-point recv without an explicit timeout; a silent peer "
        "then wedges the rank for the global default instead of the "
        "caller's deadline — pass timeout= (DEFAULT_TIMEOUT if the default "
        "really is intended)"
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "recv"):
                continue
            # Zero-arg recv is a different API (multiprocessing.Connection);
            # Communicator.recv always names its source peer.
            if not node.args:
                continue
            if len(node.args) >= 2:
                continue  # positional timeout
            if any(kw.arg == "timeout" for kw in node.keywords):
                continue
            yield self.finding(
                ctx,
                node,
                ".recv(source) without an explicit timeout; name the "
                "deadline (timeout=...) so a dead peer surfaces as "
                "CommTimeoutError on *this* call site's terms",
            )
