"""Distributed-hygiene rules.

Collectives are a *congruence* contract: every rank of a communicator must
issue the same sequence of collective calls with compatible arguments, or
the world deadlocks — the failure mode the fault-injection layer (PR 2) can
observe but not diagnose. The dynamic
:class:`~repro.analysis.comm_sanitizer.CommSanitizer` verifies congruence
at runtime; these rules flag the two lexical patterns that cause most
divergences before a single rank is spawned.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint import Finding, LintContext, ProjectRule, Rule, register

#: Communicator methods that are collective (every rank must participate)
_COLLECTIVES = {"allreduce", "broadcast", "allgather", "reduce", "barrier", "split"}


def _mentions_rank(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "rank":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "rank":
            return True
    return False


class _RankBranchVisitor(ast.NodeVisitor):
    """Record collective calls lexically inside rank-dependent branches."""

    def __init__(self) -> None:
        self.rank_depth = 0
        self.hits: list[tuple[ast.Call, str]] = []

    def _visit_branching(self, node: ast.If | ast.While) -> None:
        dependent = _mentions_rank(node.test)
        if dependent:
            self.rank_depth += 1
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        if dependent:
            self.rank_depth -= 1

    visit_If = _visit_branching
    visit_While = _visit_branching

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self.rank_depth > 0
            and isinstance(func, ast.Attribute)
            and func.attr in _COLLECTIVES
        ):
            self.hits.append((node, func.attr))
        self.generic_visit(node)


@register
class RankDependentCollective(Rule):
    id = "dist-rank-collective"
    category = "distributed"
    description = (
        "collective call lexically nested under a rank-dependent branch; "
        "unless every rank takes a congruent path this deadlocks the world "
        "— hoist the collective out of the branch (reduce/broadcast already "
        "handle root-vs-rest asymmetry internally)"
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        visitor = _RankBranchVisitor()
        visitor.visit(ctx.tree)
        for node, name in visitor.hits:
            yield self.finding(
                ctx,
                node,
                f".{name}() inside a rank-dependent branch; every rank must "
                "issue the same collective sequence — hoist it out (or "
                "suppress with the congruence argument spelled out)",
            )


def _mentions_epoch(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "epoch" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "epoch" in sub.attr.lower():
            return True
        if isinstance(sub, ast.keyword) and sub.arg and "epoch" in sub.arg.lower():
            return True
    return False


def _names_assigned_from_epoch(names: set[str], scope: ast.AST) -> bool:
    """Is any of ``names`` assigned from an epoch-mentioning expression
    within ``scope``? (the heartbeat idiom: payload built once, sent in a
    loop)."""
    if not names:
        return False
    for sub in ast.walk(scope):
        if isinstance(sub, ast.Assign):
            targets = [t.id for t in sub.targets if isinstance(t, ast.Name)]
            if set(targets) & names and _mentions_epoch(sub.value):
                return True
        elif isinstance(sub, ast.AnnAssign):
            if (
                isinstance(sub.target, ast.Name)
                and sub.target.id in names
                and sub.value is not None
                and _mentions_epoch(sub.value)
            ):
                return True
    return False


def _expr_carries_epoch(expr: ast.AST, scope: ast.AST) -> bool:
    if _mentions_epoch(expr):
        return True
    names = {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}
    return _names_assigned_from_epoch(names, scope)


def _payload_exprs(call: ast.Call) -> list[ast.AST]:
    """The payload arguments of a ``send_ctrl`` call: everything after the
    positional destination rank."""
    return list(call.args[1:]) + [kw.value for kw in call.keywords]


def _payload_carries_epoch(call: ast.Call, scope: ast.AST) -> bool:
    """Does a ``send_ctrl`` call's payload mention an epoch?

    Either directly in the argument expressions, or — when the payload is a
    bare name — in any assignment to that name within the enclosing scope
    (the idiom: ``heartbeat = np.array([HB, float(epoch), ...])`` then
    ``comm.send_ctrl(peer, heartbeat)``).
    """
    args = list(call.args) + [kw.value for kw in call.keywords]
    if any(_mentions_epoch(arg) for arg in args):
        return True
    names = {arg.id for arg in args if isinstance(arg, ast.Name)}
    return _names_assigned_from_epoch(names, scope)


def _params_feeding_expr(expr: ast.AST, fn) -> set[str]:
    """Parameters of ``fn`` that the expression's value derives from:
    mentioned directly, or feeding a bare name through one level of local
    assignment. Used to defer epoch judgement to the call sites."""
    params = set(fn.params)
    mentioned = {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}
    out = mentioned & params
    locals_ = mentioned - params
    if locals_:
        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Assign):
                targets = {
                    t.id for t in sub.targets if isinstance(t, ast.Name)
                }
                if targets & locals_:
                    value_names = {
                        n.id
                        for n in ast.walk(sub.value)
                        if isinstance(n, ast.Name)
                    }
                    out |= value_names & params
    return out


def _arg_for_param(site, target, param: str) -> ast.AST | None:
    """The argument expression bound to ``param`` at a resolved call site,
    or ``None`` when it cannot be mapped (starred args, missing)."""
    for kw in site.call.keywords:
        if kw.arg == param:
            return kw.value
    params = list(target.params)
    if target.class_name is not None and params[:1] in (["self"], ["cls"]):
        decorators = {
            d.id
            for d in getattr(target.node, "decorator_list", [])
            if isinstance(d, ast.Name)
        }
        if "staticmethod" not in decorators:
            params = params[1:]
    try:
        index = params.index(param)
    except ValueError:
        return None
    if index < len(site.call.args):
        arg = site.call.args[index]
        if isinstance(arg, ast.Starred):
            return None
        return arg
    return None


_UNTAGGED_MSG = (
    ".send_ctrl() payload carries no epoch tag; receivers "
    "cannot tell this frame from a stale round's — build "
    "the payload from the current epoch"
)


@register
class CtrlFrameWithoutEpoch(ProjectRule):
    id = "dist-epoch-tag"
    category = "distributed"
    description = (
        "control-frame send without an epoch tag, tracked through call "
        "chains; an untagged frame cannot be discarded as stale by a later "
        "detection/join round, which is exactly the stale-membership bug "
        "class the elastic epoch exists to kill — put the epoch in the "
        "payload (or in the expression that builds it, at whatever call "
        "depth the payload originates)"
    )

    def check_project(self, project) -> Iterable[Finding]:
        from repro.analysis.callgraph import ordered_calls

        # Pass 1: every send_ctrl site. Payloads that locally carry an
        # epoch are clean; payloads derived from a parameter defer the
        # judgement to the function's (resolved) call sites; anything else
        # is flagged where it stands.
        pending: list[tuple[object, str, tuple[str, ...]]] = []
        for fn in project.iter_functions():
            for call in ordered_calls(fn.node):
                func = call.func
                if not (
                    isinstance(func, ast.Attribute) and func.attr == "send_ctrl"
                ):
                    continue
                if _payload_carries_epoch(call, fn.node):
                    continue
                params: set[str] = set()
                for expr in _payload_exprs(call):
                    params |= _params_feeding_expr(expr, fn)
                if params and not fn.is_module_scope:
                    for param in sorted(params):
                        pending.append((fn, param, (fn.name,)))
                else:
                    yield self.finding_at(fn.path, call, _UNTAGGED_MSG)

        # Pass 2: walk deferred requirements up the call graph. A caller
        # satisfying the requirement with an epoch-built argument is clean;
        # a caller forwarding its own parameter defers again; a caller
        # passing an epoch-free payload is the bug's origin and gets the
        # finding. Unresolved/uncalled functions stay silent — resolution
        # is under-approximate and a missing caller is not evidence.
        visited: set[tuple[str, str]] = set()
        while pending:
            fn, param, chain = pending.pop()
            if (fn.qualname, param) in visited:
                continue
            visited.add((fn.qualname, param))
            for site in project.callers_of(fn.qualname):
                arg = _arg_for_param(site, fn, param)
                if arg is None:
                    continue
                caller = site.caller
                if _expr_carries_epoch(arg, caller.node):
                    continue
                caller_params = _params_feeding_expr(arg, caller)
                if caller_params and not caller.is_module_scope:
                    for cparam in sorted(caller_params):
                        pending.append((caller, cparam, (caller.name,) + chain))
                else:
                    path = " -> ".join((caller.name,) + chain)
                    yield self.finding_at(
                        caller.path,
                        site.call,
                        f"payload reaches .send_ctrl() via {path} without an "
                        "epoch tag; receivers cannot tell the frame from a "
                        "stale round's — build it from the current epoch at "
                        "this call site",
                    )


@register
class RecvWithoutTimeout(Rule):
    id = "dist-recv-timeout"
    category = "distributed"
    description = (
        "point-to-point recv without an explicit timeout; a silent peer "
        "then wedges the rank for the global default instead of the "
        "caller's deadline — pass timeout= (DEFAULT_TIMEOUT if the default "
        "really is intended)"
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "recv"):
                continue
            # Zero-arg recv is a different API (multiprocessing.Connection);
            # Communicator.recv always names its source peer.
            if not node.args:
                continue
            if len(node.args) >= 2:
                continue  # positional timeout
            if any(kw.arg == "timeout" for kw in node.keywords):
                continue
            yield self.finding(
                ctx,
                node,
                ".recv(source) without an explicit timeout; name the "
                "deadline (timeout=...) so a dead peer surfaces as "
                "CommTimeoutError on *this* call site's terms",
            )
