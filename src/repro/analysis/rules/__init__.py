"""Built-in rule catalogue; importing this package registers every rule.

Split by invariant family:

- :mod:`repro.analysis.rules.determinism` — seeded-RNG / wall-clock hygiene
  (bit-identical replays are a correctness contract, not a nicety).
- :mod:`repro.analysis.rules.autograd` — tape-safety of the tensor engine
  (no in-place mutation behind the graph's back, no float equality on
  computed results).
- :mod:`repro.analysis.rules.distributed` — collective congruence and
  deadlock guards (the failure modes the fault layer can observe but not
  diagnose).
- :mod:`repro.analysis.rules.interprocedural` — whole-program versions of
  the distributed guards: rank taint and collective sequences tracked
  through the project call graph (:mod:`repro.analysis.callgraph` +
  :mod:`repro.analysis.dataflow`).
- :mod:`repro.analysis.rules.observability` — span hygiene for
  :mod:`repro.obs` (a leaked ``begin`` silently corrupts trace totals).
- :mod:`repro.analysis.rules.jit` — tape safety for the step compiler
  (data-dependent control flow on the traced forward surface).
"""

from repro.analysis.rules import (  # noqa: F401
    autograd,
    determinism,
    distributed,
    interprocedural,
    jit,
    observability,
)
