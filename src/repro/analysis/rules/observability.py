"""Observability-hygiene rules.

Spans are accounting: a :meth:`repro.obs.Tracer.begin` that is never
:meth:`~repro.obs.Tracer.end`-ed does not crash anything — it silently
leaves the nesting stack deep, mis-parents every later span, and drops
that interval from the totals ``tools/trace.py`` reports. The ``with
tracer.span(...)`` form closes on every exit path by construction; manual
``begin`` is only legitimate when the matching ``end`` sits in a
``finally`` block.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint import Finding, LintContext, Rule, register

#: the tracer implementation itself (and its tests' fixtures) may pair
#: begin/end through internal machinery the heuristic cannot follow
_OBS_WHITELIST = ("repro.obs",)


def _tracerish(node: ast.AST) -> bool:
    """Does ``node`` lexically look like a tracer object? (``tracer``,
    ``self.tracer``, ``self._tracer``, ``vqmc.tracer``, ...)"""
    if isinstance(node, ast.Name):
        return "tracer" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "tracer" in node.attr.lower()
    return False


def _is_tracer_call(node: ast.AST, method: str) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == method
        and _tracerish(node.func.value)
    )


_TRY_TYPES = (ast.Try, ast.TryStar) if hasattr(ast, "TryStar") else (ast.Try,)


def _ends_in_finally(node: ast.AST) -> bool:
    return isinstance(node, _TRY_TYPES) and any(
        _is_tracer_call(sub, "end")
        for stmt in node.finalbody
        for sub in ast.walk(stmt)
    )


class _BeginVisitor(ast.NodeVisitor):
    """Collect ``tracer.begin`` calls not protected by a finally'd end.

    A begin is *protected* in either closing-on-every-path shape:

    - lexically inside a ``try`` whose ``finally`` contains a
      ``tracer.end`` call, or
    - in the statement *immediately before* such a ``try`` (the canonical
      manual pairing — begin sits outside so a failed begin is not
      double-closed).
    """

    def __init__(self) -> None:
        self.protected_depth = 0
        self.leaks: list[ast.Call] = []
        self._shielded: set[int] = set()  # ids of begin calls paired by adjacency

    def _visit_stmts(self, stmts: list) -> None:
        for i, stmt in enumerate(stmts):
            nxt = stmts[i + 1] if i + 1 < len(stmts) else None
            if _ends_in_finally(nxt):
                for sub in ast.walk(stmt):
                    if _is_tracer_call(sub, "begin"):
                        self._shielded.add(id(sub))
            self.visit(stmt)

    def generic_visit(self, node: ast.AST) -> None:
        for _field, value in ast.iter_fields(node):
            if isinstance(value, list):
                if value and isinstance(value[0], ast.stmt):
                    self._visit_stmts(value)
                else:
                    for item in value:
                        if isinstance(item, ast.AST):
                            self.visit(item)
            elif isinstance(value, ast.AST):
                self.visit(value)

    def visit_Try(self, node: ast.Try) -> None:
        protects = _ends_in_finally(node)
        if protects:
            self.protected_depth += 1
        self._visit_stmts(node.body)
        self._visit_stmts(node.orelse)
        for handler in node.handlers:
            self.visit(handler)
        if protects:
            self.protected_depth -= 1
        self._visit_stmts(node.finalbody)

    visit_TryStar = visit_Try

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self.protected_depth == 0
            and id(node) not in self._shielded
            and _is_tracer_call(node, "begin")
        ):
            self.leaks.append(node)
        self.generic_visit(node)


@register
class SpanLeak(Rule):
    id = "obs-span-leak"
    category = "observability"
    description = (
        "Tracer.begin() without an end() guaranteed by a finally block; an "
        "exception in between leaks the span, corrupting nesting depth and "
        "dropping the interval from trace totals — use `with tracer.span(...)`"
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if ctx.in_module(_OBS_WHITELIST):
            return
        visitor = _BeginVisitor()
        visitor.visit(ctx.tree)
        for node in visitor.leaks:
            yield self.finding(
                ctx,
                node,
                ".begin() outside a try/finally-paired .end(); an exception "
                "leaks the open span — prefer `with tracer.span(...)`, or "
                "close in a finally block",
            )
