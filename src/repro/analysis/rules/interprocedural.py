"""Whole-program distributed rules built on the dataflow engine.

The lexical :mod:`~repro.analysis.rules.distributed` rules stop at
function boundaries: ``if rank == 0: comm.allreduce(x)`` is caught, but
``if rank == 0: checkpoint()`` where ``checkpoint`` allreduces two calls
deeper is not — and neither is ``leader = rank == 0`` feeding a branch
three statements later. These rules run over the
:class:`~repro.analysis.callgraph.Project` with
:class:`~repro.analysis.dataflow.DataflowAnalysis`:

- ``dist-rank-divergent-collective`` — a collective reachable on only one
  arm of a rank-tainted branch (through any call chain, or via
  dataflow-only taint lexically). The classic world-deadlock.
- ``dist-collective-order`` — both arms of a rank-tainted branch issue
  collectives, but in *different orders*; ranks taking different arms
  then match ``allreduce`` against ``broadcast`` and the payloads cross.

Congruent branches — both arms issuing the *same* collective sequence,
the supervisor's leader/follower broadcast idiom — stay clean by
construction, which is what keeps these rules quiet on ``src/``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.dataflow import DataflowAnalysis
from repro.analysis.callgraph import FunctionNode, Project
from repro.analysis.lint import Finding, ProjectRule, register
from repro.analysis.rules.distributed import _COLLECTIVES, _mentions_rank


def _tainted_branches(
    df: DataflowAnalysis, fn: FunctionNode
) -> Iterator[ast.If | ast.While]:
    from repro.analysis.callgraph import body_nodes

    for node in body_nodes(fn.node):
        if isinstance(node, (ast.If, ast.While)) and df.expr_tainted(
            fn, node.test
        ):
            yield node


def _is_lexical_direct(site, branch: ast.If | ast.While) -> bool:
    """True when the site is a *direct* collective call under a branch whose
    test lexically mentions ``rank`` — exactly what the per-file
    ``dist-rank-collective`` rule already reports; re-flagging it here
    would double-count every existing finding and suppression."""
    return len(site.chain) == 1 and _mentions_rank(branch.test)


@register
class RankDivergentCollective(ProjectRule):
    id = "dist-rank-divergent-collective"
    category = "distributed"
    description = (
        "collective reachable on only one arm of a rank-dependent branch, "
        "tracked through calls and rank-tainted values; ranks taking the "
        "other arm never enter the collective and the world deadlocks — "
        "hoist the call chain out of the branch or make both arms issue "
        "the same collective sequence"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        df = DataflowAnalysis(project)
        reported: set[int] = set()
        for fn in project.iter_functions():
            for branch in _tainted_branches(df, fn):
                body_seq = df.arm_summary(fn, branch.body)
                else_seq = df.arm_summary(fn, branch.orelse)
                if isinstance(branch, ast.While):
                    # A rank-dependent iteration count diverges even when
                    # the body is "congruent": ranks run it different
                    # numbers of times.
                    divergent_arms = [branch.body] if body_seq else []
                elif bool(body_seq) == bool(else_seq):
                    continue  # both empty, or both non-empty (-> order rule)
                else:
                    divergent_arms = [branch.body if body_seq else branch.orelse]
                for arm in divergent_arms:
                    for site in df.collective_sites(fn, arm):
                        if id(site.node) in reported:
                            continue
                        if _is_lexical_direct(site, branch):
                            continue  # dist-rank-collective's finding
                        reported.add(id(site.node))
                        yield self.finding_at(
                            fn.path,
                            site.node,
                            f"collective reached via {site.label} only under "
                            f"a rank-dependent branch (line {branch.lineno}); "
                            "ranks on the other arm never issue it — the "
                            "world deadlocks at the next collective",
                        )


@register
class CollectiveOrderDivergence(ProjectRule):
    id = "dist-collective-order"
    category = "distributed"
    description = (
        "the two arms of a rank-dependent branch issue collectives in "
        "different orders (tracked through calls); ranks taking different "
        "arms match mismatched collectives and exchange crossed payloads — "
        "reorder the arms into one congruent sequence"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        df = DataflowAnalysis(project)
        for fn in project.iter_functions():
            for branch in _tainted_branches(df, fn):
                if isinstance(branch, ast.While):
                    continue  # divergence rule owns rank-dependent loops
                body_seq = df.arm_summary(fn, branch.body)
                else_seq = df.arm_summary(fn, branch.orelse)
                if not body_seq or not else_seq or body_seq == else_seq:
                    continue
                yield self.finding_at(
                    fn.path,
                    branch,
                    "rank-dependent branch arms issue different collective "
                    f"sequences: [{', '.join(body_seq)}] vs "
                    f"[{', '.join(else_seq)}]; ranks taking different arms "
                    "pair mismatched collectives — make the sequences "
                    "congruent",
                )


# re-exported so the catalogue table can introspect the primitive set
COLLECTIVE_OPS = frozenset(_COLLECTIVES)
