"""Autograd-hygiene rules.

The tensor engine records closures over the *buffers* of op inputs and
outputs (see :mod:`repro.tensor.tensor`). Mutating ``Tensor.data`` or
``.grad`` in place between forward and backward therefore silently corrupts
gradients — the exact bug class the dynamic
:class:`~repro.analysis.graph_sanitizer.GraphSanitizer` catches at runtime;
these rules catch the lexically obvious cases before the code ever runs.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint import Finding, LintContext, Rule, register

#: modules allowed to mutate Tensor buffers in place: the engine itself,
#: the optimizers (parameter updates happen between graphs, by contract),
#: and the perf kernels (audited for tape safety).
_MUTATION_WHITELIST = ("repro.tensor", "repro.optim", "repro.perf")

#: ndarray methods that mutate the receiver
_MUTATING_METHODS = {"fill", "sort", "put", "partition", "resize", "itemset"}

_TENSOR_BUFFERS = {"data", "grad"}


def _buffer_attr(node: ast.AST) -> str | None:
    """Return 'data'/'grad' when ``node`` is ``<expr>.data`` / ``<expr>.grad``."""
    if isinstance(node, ast.Attribute) and node.attr in _TENSOR_BUFFERS:
        return node.attr
    return None


@register
class TensorBufferMutation(Rule):
    id = "ag-tensor-mutation"
    category = "autograd"
    description = (
        "in-place mutation of Tensor.data/.grad outside the whitelisted "
        "engine/optimizer/perf modules; recorded backward closures alias "
        "these buffers, so mutation corrupts gradients silently"
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if ctx.in_module(_MUTATION_WHITELIST):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AugAssign):
                target = node.target
                buf = _buffer_attr(target)
                if buf is None and isinstance(target, ast.Subscript):
                    buf = _buffer_attr(target.value)
                if buf is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"augmented assignment mutates .{buf} in place; "
                        "backward closures alias this buffer — rebind the "
                        "tensor or route through a whitelisted kernel",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        buf = _buffer_attr(target.value)
                        if buf is not None:
                            yield self.finding(
                                ctx,
                                target,
                                f"subscript assignment mutates .{buf} in "
                                "place; backward closures alias this buffer",
                            )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                    and _buffer_attr(func.value) is not None
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f".{func.value.attr}.{func.attr}() mutates the "
                        "buffer in place; backward closures alias it",
                    )


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_computed(node: ast.AST) -> bool:
    """Arithmetic results: the values float equality is unreliable on."""
    if _is_float_literal(node):
        return False
    return isinstance(node, (ast.BinOp, ast.Call))


@register
class FloatEquality(Rule):
    id = "ag-float-eq"
    category = "autograd"
    description = (
        "== / != between a float literal and a computed (call/arithmetic) "
        "result; floating-point results are approximate — compare stored "
        "sentinels exactly, computed values with a tolerance"
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if (_is_float_literal(left) and _is_computed(right)) or (
                    _is_computed(left) and _is_float_literal(right)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "exact float comparison against a computed result; "
                        "use np.isclose/np.allclose (or restructure to a "
                        "count/truthiness test)",
                    )
