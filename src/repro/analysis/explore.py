"""Deterministic schedule explorer for the threads backend.

The static half of :mod:`repro.analysis` proves properties of the *code*;
this module checks the *protocol*: it takes a multi-rank scenario, runs it
on :func:`repro.distributed.threads.make_thread_group` with a
:class:`ScheduleController` attached, and systematically permutes the
order in which ranks commit their communication operations — message
enqueue/dequeue, polls, barrier arrivals, and (virtualised) sleeps. The
two elastic-protocol bugs this repo fixed by chaos testing (the discarded
-frame recv livelock and the double sync boundary after a JOIN) are both
*schedule* bugs: they need a particular interleaving to fire, and the
explorer finds that interleaving deterministically instead of by luck.

Mechanics
---------
Every controlled thread is resumed one at a time: it runs until its next
*commit point*, parks, and the controller picks which parked thread runs
next. An operation is **enabled** when it can complete now — sends
always, receives/polls when their queue is non-empty or their (virtual)
deadline has passed, barrier arrivals when every party is parked at the
barrier, sleeps when the virtual clock has reached their wake time. The
virtual clock only advances at quiescence (no thread enabled), jumping to
the earliest pending deadline; real ``time.monotonic``/``time.sleep`` are
patched thread-selectively for the duration of a run, so retry backoffs
and heartbeat timeouts cost nothing and remain exactly reproducible.

- **Deadlock**: no thread enabled and every pending deadline is beyond
  ``deadlock_horizon`` (only last-resort guards like ``DEFAULT_TIMEOUT``
  remain) — reported with the waits-for map.
- **Livelock**: the event budget (``max_steps``) is exhausted — reported
  with each rank's last operation (the recv-livelock signature: one rank
  forever re-parking on the same receive while a peer floods it).
- **Error**: a rank raised (assertion, crossed payloads, escalation the
  scenario did not expect).

Exploration is a stateless DFS over *choice points* — steps where ≥ 2
enabled operations conflict (touch the same mailbox channel with at least
one writer; independent operations never branch, the sleep-set-style
reduction that keeps the tree tractable). Each run is summarised by a
SHA-256 fingerprint over its full event log; a trace (choices +
fingerprint) replays bit-identically via ``tools/lint.py explore
--replay``.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

__all__ = [
    "ScheduleController",
    "RunResult",
    "ExploreReport",
    "ReplayDivergence",
    "run_schedule",
    "explore",
    "replay_trace",
    "load_trace",
]

# Captured before any patching so the controller itself always has real
# time available (wall guards, perf accounting).
_REAL_MONOTONIC = time.monotonic
_REAL_SLEEP = time.sleep

_RUNNING, _PARKED, _DONE = "running", "parked", "done"


class ExplorerInternalError(RuntimeError):
    """The explorer itself wedged (a thread failed to park) — a bug in the
    controller or a scenario doing unmediated blocking, not a protocol
    finding."""


class ReplayDivergence(RuntimeError):
    """A forced schedule could not be followed — the program under test or
    the trace changed since the schedule was recorded."""


class _Aborted(BaseException):
    """Raised inside controlled threads to unwind them when a run ends
    early (deadlock/livelock verdict reached). BaseException so broad
    ``except Exception`` recovery paths in protocol code cannot eat it."""


class _Slot:
    """Scheduler-side state of one controlled thread."""

    __slots__ = (
        "rank", "state", "op", "resume", "abort", "error", "tb", "thread"
    )

    def __init__(self, rank: int):
        self.rank = rank
        self.state = _RUNNING
        self.op: tuple | None = None
        self.resume = threading.Event()
        self.abort = False
        self.error: BaseException | None = None
        self.tb: str | None = None
        self.thread: threading.Thread | None = None


def _digest(array) -> str:
    data = array.tobytes() if hasattr(array, "tobytes") else bytes(array)
    return hashlib.sha256(data).hexdigest()[:12]


@dataclass
class RunResult:
    """One fully-scheduled execution of a scenario."""

    status: str  # "ok" | "deadlock" | "livelock" | "error"
    steps: int
    events: list[dict]
    #: choice points: {"step", "chosen", "candidates"}
    choices: list[dict]
    fingerprint: str
    virtual_seconds: float
    waits_for: dict[int, str] = field(default_factory=dict)
    errors: dict[int, str] = field(default_factory=dict)
    detail: str | None = None

    @property
    def failed(self) -> bool:
        return self.status != "ok"

    def to_trace(self, scenario: str, seed_bug: bool) -> dict:
        return {
            "schema": "repro.explore.trace/v1",
            "scenario": scenario,
            "seed_bug": seed_bug,
            "status": self.status,
            "steps": self.steps,
            "virtual_seconds": self.virtual_seconds,
            "choices": self.choices,
            "schedule": [c["chosen"] for c in self.choices],
            "fingerprint": self.fingerprint,
            "waits_for": {str(k): v for k, v in self.waits_for.items()},
            "errors": {str(k): v for k, v in self.errors.items()},
            "events": self.events,
        }


class ScheduleController:
    """Serialises a thread group's commit points under one schedule.

    Commit-point methods (``send_commit`` …) are called by
    :class:`~repro.distributed.threads.ThreadCommunicator` from the rank
    threads; :meth:`run` drives the schedule from the caller's thread.
    """

    def __init__(
        self,
        world_size: int,
        forced: Sequence[int] | None = None,
        max_steps: int = 4000,
        deadlock_horizon: float = 5.0,
        wall_guard: float = 60.0,
    ):
        self.world_size = world_size
        self.forced = list(forced or [])
        self.max_steps = max_steps
        self.deadlock_horizon = deadlock_horizon
        self.wall_guard = wall_guard
        self.now = 0.0  # virtual clock
        self.slots = [_Slot(r) for r in range(world_size)]
        self.events: list[dict] = []
        self.choices: list[dict] = []
        self.failure: dict | None = None
        self._forced_i = 0
        self._idents: dict[int, _Slot] = {}

    # -- thread side (commit points) --------------------------------------

    def _park(self, slot: _Slot, op: tuple) -> None:
        slot.op = op
        slot.state = _PARKED
        slot.resume.wait()
        slot.resume.clear()
        if slot.abort:
            raise _Aborted()

    def send_commit(self, rank: int, dest: int, array) -> None:
        self._park(self.slots[rank], ("send", (dest, rank), _digest(array)))

    def recv_commit(self, rank: int, source: int, q: queue.Queue, timeout: float):
        slot = self.slots[rank]
        deadline = self.now + max(timeout, 0.0)
        while True:
            self._park(slot, ("recv", (rank, source), deadline))
            if not q.empty():
                return q.get_nowait()
            if self.now >= deadline - 1e-12:
                raise queue.Empty
            # Spurious grant (should not happen: grants imply enabledness);
            # re-park rather than busy-wait.

    def poll_commit(
        self, rank: int, source: int, q: queue.Queue, timeout: float
    ) -> bool:
        deadline = self.now + max(timeout, 0.0)
        self._park(self.slots[rank], ("poll", (rank, source), deadline))
        return not q.empty()

    def barrier_commit(self, rank: int, parties: int) -> None:
        self._park(self.slots[rank], ("barrier", parties))

    # -- virtual time ------------------------------------------------------

    def _virtual_monotonic(self) -> float:
        if threading.get_ident() in self._idents:
            return self.now
        return _REAL_MONOTONIC()

    def _virtual_sleep(self, seconds: float) -> None:
        slot = self._idents.get(threading.get_ident())
        if slot is None:
            _REAL_SLEEP(seconds)
            return
        self._park(slot, ("sleep", self.now + max(seconds, 0.0)))

    # -- scheduler side ----------------------------------------------------

    def run(self, fns: Sequence[Callable[[], Any]]) -> None:
        """Execute one schedule of ``fns`` (one callable per rank)."""
        if len(fns) != self.world_size:
            raise ValueError("one callable per rank required")

        def runner(slot: _Slot, fn: Callable[[], Any]) -> None:
            self._idents[threading.get_ident()] = slot
            try:
                # Park immediately so even pre-communication code runs
                # under the schedule (one thread at a time, from step 0).
                self._park(slot, ("start",))
                fn()
            except _Aborted:
                pass
            except BaseException as exc:  # noqa: BLE001 — recorded as verdict
                slot.error = exc
                slot.tb = traceback.format_exc()
            finally:
                slot.state = _DONE

        threads = []
        for slot, fn in zip(self.slots, fns):
            t = threading.Thread(
                target=runner, args=(slot, fn), daemon=True,
                name=f"explore-rank{slot.rank}",
            )
            slot.thread = t
            threads.append(t)

        patched = time.monotonic is _REAL_MONOTONIC
        if patched:
            time.monotonic = self._virtual_monotonic
            time.sleep = self._virtual_sleep
        try:
            for t in threads:
                t.start()
            self._schedule()
        finally:
            self._abort_remaining()
            for t in threads:
                t.join(timeout=5.0)
            if patched:
                time.monotonic = _REAL_MONOTONIC
                time.sleep = _REAL_SLEEP

    def _await_quiescence(self) -> None:
        guard = _REAL_MONOTONIC() + self.wall_guard
        while any(s.state == _RUNNING for s in self.slots):
            _REAL_SLEEP(0.0002)
            if _REAL_MONOTONIC() > guard:
                stuck = [s.rank for s in self.slots if s.state == _RUNNING]
                raise ExplorerInternalError(
                    f"ranks {stuck} did not reach a commit point within "
                    f"{self.wall_guard}s of real time — unmediated blocking "
                    "call in the scenario?"
                )

    def _enabled(self, slot: _Slot) -> bool:
        op = slot.op
        kind = op[0]
        if kind in ("start", "send"):
            return True
        if kind in ("recv", "poll"):
            dest, source = op[1]
            q = self._queue_of(dest, source)
            if q is not None and not q.empty():
                return True
            return self.now >= op[2] - 1e-12
        if kind == "sleep":
            return self.now >= op[1] - 1e-12
        if kind == "barrier":
            parties = op[1]
            arrived = sum(
                1
                for s in self.slots
                if s.state == _PARKED and s.op and s.op[0] == "barrier"
            )
            return arrived >= parties
        return False

    def _queue_of(self, dest: int, source: int) -> queue.Queue | None:
        # The mailbox queue is reachable through any slot's communicator;
        # the runner threads close over it, the controller only needs
        # emptiness. Scenarios register it via attach_mailboxes().
        if self._mailboxes is None:
            return None
        return self._mailboxes[dest][source]

    _mailboxes: list[list[queue.Queue]] | None = None

    def attach_mailboxes(self, mailboxes: list[list[queue.Queue]]) -> None:
        self._mailboxes = mailboxes

    @staticmethod
    def _channel(op: tuple) -> tuple[int, int] | None:
        if op[0] in ("send", "recv", "poll"):
            return op[1]
        return None

    @classmethod
    def _conflicts(cls, a: tuple, b: tuple) -> bool:
        """Two enabled ops conflict when they touch the same mailbox
        channel and at least one writes it (send vs recv/poll). Everything
        else commutes: distinct channels, barrier arrivals, sleeps."""
        ca, cb = cls._channel(a), cls._channel(b)
        if ca is None or cb is None or ca != cb:
            return False
        return (a[0] == "send") != (b[0] == "send")

    def _grant(self, slot: _Slot, step: int) -> None:
        op = slot.op
        event = {"step": step, "rank": slot.rank, "op": op[0]}
        if op[0] in ("send", "recv", "poll"):
            event["channel"] = list(op[1])
            if op[0] == "send":
                event["digest"] = op[2]
        if op[0] == "sleep":
            event["until"] = round(op[1], 9)
        event["now"] = round(self.now, 9)
        self.events.append(event)
        slot.state = _RUNNING
        slot.resume.set()

    def _schedule(self) -> None:
        step = 0
        while True:
            self._await_quiescence()
            parked = [s for s in self.slots if s.state == _PARKED]
            if not parked:
                break  # every rank finished
            enabled = [s for s in parked if self._enabled(s)]
            if not enabled:
                deadlines = [
                    s.op[2] if s.op[0] in ("recv", "poll") else s.op[1]
                    for s in parked
                    if s.op[0] in ("recv", "poll", "sleep")
                ]
                if deadlines:
                    horizon = min(deadlines)
                    if horizon - self.now <= self.deadlock_horizon + 1e-9:
                        self.now = max(self.now, horizon)
                        continue
                self.failure = {
                    "kind": "deadlock",
                    "waits_for": self._waits_for(parked),
                }
                return
            # Barriers release atomically: grant every waiter in rank
            # order as consecutive events (arrivals commute, no branching).
            waiters = sorted(
                (s for s in enabled if s.op[0] == "barrier"),
                key=lambda s: s.rank,
            )
            if waiters:
                for w in waiters:
                    self._grant(w, step)
                    step += 1
                    self._await_quiescence()
                if step > self.max_steps:
                    self._livelock(
                        [s for s in self.slots if s.state == _PARKED]
                    )
                    return
                continue
            chosen = self._choose(enabled, step)
            if chosen is None:
                return  # replay divergence recorded as failure
            self._grant(chosen, step)
            step += 1
            if step > self.max_steps:
                self._await_quiescence()
                self._livelock([s for s in self.slots if s.state == _PARKED])
                return

    def _choose(self, enabled: list[_Slot], step: int) -> _Slot | None:
        enabled = sorted(enabled, key=lambda s: s.rank)
        default = enabled[0]
        rivals = [
            s
            for s in enabled[1:]
            if self._conflicts(default.op, s.op)
        ]
        if not rivals:
            return default
        candidates = [default.rank] + [s.rank for s in rivals]
        if self._forced_i < len(self.forced):
            want = self.forced[self._forced_i]
            self._forced_i += 1
            by_rank = {s.rank: s for s in enabled}
            if want not in candidates or want not in by_rank:
                self.failure = {
                    "kind": "replay-divergence",
                    "detail": (
                        f"forced choice #{self._forced_i - 1} wants rank "
                        f"{want}, but step {step} offers {candidates}"
                    ),
                }
                return None
            chosen = by_rank[want]
        else:
            chosen = default
        self.choices.append(
            {"step": step, "chosen": chosen.rank, "candidates": candidates}
        )
        return chosen

    def _livelock(self, parked: list[_Slot]) -> None:
        self.failure = {
            "kind": "livelock",
            "waits_for": self._waits_for(parked),
        }

    @staticmethod
    def _waits_for(parked: list[_Slot]) -> dict[int, str]:
        out = {}
        for s in parked:
            op = s.op
            if op[0] in ("recv", "poll"):
                dest, source = op[1]
                out[s.rank] = (
                    f"{op[0]} from rank {source} "
                    f"(deadline t+{op[2]:.3f}s virtual)"
                )
            elif op[0] == "barrier":
                out[s.rank] = f"barrier ({op[1]} parties)"
            elif op[0] == "sleep":
                out[s.rank] = f"sleep until t+{op[1]:.3f}s virtual"
            else:
                out[s.rank] = op[0]
        return out

    def _abort_remaining(self) -> None:
        for s in self.slots:
            if s.state != _DONE:
                s.abort = True
                s.resume.set()

    # -- result ------------------------------------------------------------

    def result(self) -> RunResult:
        errors = {
            s.rank: f"{type(s.error).__name__}: {s.error}"
            for s in self.slots
            if s.error is not None
        }
        detail = None
        if self.failure is not None:
            status = self.failure["kind"]
            waits = self.failure.get("waits_for", {})
            detail = self.failure.get("detail")
        elif errors:
            status, waits = "error", {}
        else:
            status, waits = "ok", {}
        blob = json.dumps(self.events, sort_keys=True).encode()
        return RunResult(
            status=status,
            steps=len(self.events),
            events=self.events,
            choices=self.choices,
            fingerprint=hashlib.sha256(blob).hexdigest(),
            virtual_seconds=self.now,
            waits_for=waits,
            errors=errors,
            detail=detail,
        )


# -- driving scenarios ------------------------------------------------------


def run_schedule(
    scenario,
    forced: Sequence[int] | None = None,
    seed_bug: bool = False,
    max_steps: int | None = None,
) -> RunResult:
    """Run one schedule of ``scenario`` (a :class:`~repro.analysis
    .scenarios.Scenario`), optionally with its fault hook seeded."""
    from repro.distributed.threads import make_thread_group

    controller = ScheduleController(
        scenario.world_size,
        forced=forced,
        max_steps=max_steps or scenario.default_max_steps,
    )
    comms = make_thread_group(scenario.world_size, controller)
    controller.attach_mailboxes(comms[0]._mailboxes)
    shared: dict = {}
    fns = [
        (lambda comm=comms[r], rank=r: scenario.fn(comm, rank, shared))
        for r in range(scenario.world_size)
    ]
    with scenario.seeded(seed_bug):
        controller.run(fns)
    result = controller.result()
    if result.status == "error" and scenario.tolerated_errors:
        tolerated = tuple(scenario.tolerated_errors)
        if all(e.startswith(tolerated) for e in result.errors.values()):
            result.status = "ok"
    return result


@dataclass
class ExploreReport:
    """Outcome of a bounded exploration of one scenario."""

    scenario: str
    seed_bug: bool
    schedules: int
    events_total: int
    wall_seconds: float
    failure: RunResult | None
    failure_schedule: int | None  # 1-based index of the failing schedule

    @property
    def found_bug(self) -> bool:
        return self.failure is not None

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed_bug": self.seed_bug,
            "schedules": self.schedules,
            "events_total": self.events_total,
            "wall_seconds": round(self.wall_seconds, 6),
            "interleavings_per_second": round(
                self.schedules / self.wall_seconds, 3
            )
            if self.wall_seconds > 0
            else None,
            "failure_schedule": self.failure_schedule,
            "failure": (
                {
                    "status": self.failure.status,
                    "fingerprint": self.failure.fingerprint,
                    "waits_for": {
                        str(k): v for k, v in self.failure.waits_for.items()
                    },
                    "errors": {
                        str(k): v for k, v in self.failure.errors.items()
                    },
                }
                if self.failure
                else None
            ),
        }


def explore(
    scenario,
    seed_bug: bool = False,
    max_schedules: int = 25,
    max_steps: int | None = None,
    stop_on_failure: bool = True,
) -> ExploreReport:
    """Bounded DFS over the scenario's schedule space.

    Starts from the default schedule (lowest enabled rank at every choice
    point) and branches on conflicting alternatives, sleep-set style: a
    prefix already executed is never re-queued, and independent operations
    never create branches.
    """
    t0 = _REAL_MONOTONIC()
    frontier: list[tuple[int, ...]] = [()]
    seen: set[tuple[int, ...]] = {()}
    schedules = 0
    events_total = 0
    failure: RunResult | None = None
    failure_at: int | None = None
    while frontier and schedules < max_schedules:
        prefix = frontier.pop()
        result = run_schedule(
            scenario, forced=list(prefix), seed_bug=seed_bug, max_steps=max_steps
        )
        schedules += 1
        events_total += result.steps
        if result.failed:
            failure, failure_at = result, schedules
            if stop_on_failure:
                break
        taken = [c["chosen"] for c in result.choices]
        for i in range(len(prefix), len(result.choices)):
            for alt in result.choices[i]["candidates"]:
                if alt == result.choices[i]["chosen"]:
                    continue
                cand = tuple(taken[:i]) + (alt,)
                if cand not in seen:
                    seen.add(cand)
                    frontier.append(cand)
    return ExploreReport(
        scenario=scenario.name,
        seed_bug=seed_bug,
        schedules=schedules,
        events_total=events_total,
        wall_seconds=_REAL_MONOTONIC() - t0,
        failure=failure,
        failure_schedule=failure_at,
    )


# -- traces -----------------------------------------------------------------


def load_trace(path: str | Path) -> dict:
    trace = json.loads(Path(path).read_text())
    if trace.get("schema") != "repro.explore.trace/v1":
        raise ValueError(f"{path}: not a repro.explore trace")
    return trace


def replay_trace(trace: dict, max_steps: int | None = None) -> RunResult:
    """Re-execute a recorded schedule and verify it reproduces bit-identically.

    Forces the trace's choice sequence and compares the SHA-256 event-log
    fingerprint; a mismatch (or an unfollowable choice) raises
    :class:`ReplayDivergence`.
    """
    from repro.analysis.scenarios import get_scenario

    scenario = get_scenario(trace["scenario"])
    result = run_schedule(
        scenario,
        forced=trace["schedule"],
        seed_bug=bool(trace.get("seed_bug")),
        max_steps=max_steps,
    )
    if result.status == "replay-divergence":
        raise ReplayDivergence(result.detail or "schedule could not be followed")
    if result.fingerprint != trace["fingerprint"]:
        raise ReplayDivergence(
            f"schedule replayed but event log diverged: "
            f"{result.fingerprint} != recorded {trace['fingerprint']}"
        )
    return result
