"""Lanczos eigensolver with full reorthogonalisation.

A from-scratch implementation of the iterative method behind ``eigsh``:
build an orthonormal Krylov basis ``{v, Hv, H²v, …}``, tridiagonalise H in
that basis, and diagonalise the small tridiagonal matrix. Full
reorthogonalisation (modified Gram–Schmidt against all previous vectors)
trades memory for robustness against the classic loss-of-orthogonality
failure mode — fine at validation scale.

Works on anything that offers ``matvec`` (dense arrays, scipy sparse
matrices, LinearOperators), so it can consume
:meth:`repro.hamiltonians.Hamiltonian.to_sparse` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Lanczos", "LanczosResult", "lanczos_ground_state"]


@dataclass(frozen=True)
class LanczosResult:
    energy: float
    vector: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float


class Lanczos:
    """Lanczos iteration for the minimal eigenpair of a symmetric operator.

    Parameters
    ----------
    max_iter:
        Maximum Krylov dimension.
    tol:
        Convergence threshold on the residual ``‖Hx − λx‖ / |λ|``.
    seed:
        Seed for the random start vector.
    """

    def __init__(self, max_iter: int = 200, tol: float = 1e-10, seed: int = 0):
        if max_iter < 2:
            raise ValueError(f"max_iter must be >= 2, got {max_iter}")
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed

    def minimal_eigenpair(self, operator) -> LanczosResult:
        matvec = _as_matvec(operator)
        dim = _dimension(operator)
        rng = np.random.default_rng(self.seed)

        v = rng.normal(size=dim)
        v /= np.linalg.norm(v)
        basis = [v]
        alphas: list[float] = []
        betas: list[float] = []

        best: tuple[float, np.ndarray] | None = None
        m = min(self.max_iter, dim)
        for it in range(m):
            w = matvec(basis[-1])
            alpha = float(basis[-1] @ w)
            alphas.append(alpha)
            w = w - alpha * basis[-1]
            if len(basis) > 1:
                w = w - betas[-1] * basis[-2]
            # Full reorthogonalisation (twice is enough).
            for _ in range(2):
                for u in basis:
                    w -= (u @ w) * u
            beta = float(np.linalg.norm(w))

            # Check convergence every few steps (and at the end).
            if (it + 1) % 5 == 0 or beta < 1e-14 or it == m - 1:
                theta, y = _tridiag_ground(np.array(alphas), np.array(betas))
                x = np.zeros(dim)
                for coeff, u in zip(y, basis):
                    x += coeff * u
                x /= np.linalg.norm(x)
                res = float(np.linalg.norm(matvec(x) - theta * x))
                best = (theta, x)
                scale = max(abs(theta), 1.0)
                if res / scale < self.tol:
                    return LanczosResult(
                        energy=theta,
                        vector=x,
                        iterations=it + 1,
                        converged=True,
                        residual_norm=res,
                    )
            if beta < 1e-14:
                break  # Krylov space exhausted — eigenpair is exact
            betas.append(beta)
            basis.append(w / beta)

        assert best is not None
        theta, x = best
        res = float(np.linalg.norm(matvec(x) - theta * x))
        return LanczosResult(
            energy=theta,
            vector=x,
            iterations=len(alphas),
            converged=res / max(abs(theta), 1.0) < self.tol,
            residual_norm=res,
        )


def _tridiag_ground(alphas: np.ndarray, betas: np.ndarray) -> tuple[float, np.ndarray]:
    """Minimal eigenpair of the tridiagonal matrix T(alphas, betas)."""
    import scipy.linalg

    if alphas.size == 1:
        return float(alphas[0]), np.ones(1)
    vals, vecs = scipy.linalg.eigh_tridiagonal(alphas, betas[: alphas.size - 1])
    return float(vals[0]), vecs[:, 0]


def _as_matvec(operator):
    if callable(getattr(operator, "matvec", None)):
        return operator.matvec
    if hasattr(operator, "dot"):
        return lambda x: np.asarray(operator.dot(x)).ravel()
    raise TypeError(f"cannot matvec with {type(operator).__name__}")


def _dimension(operator) -> int:
    shape = getattr(operator, "shape", None)
    if shape is None or len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError(f"operator must be square, got shape {shape}")
    return shape[0]


def lanczos_ground_state(hamiltonian, **kwargs) -> LanczosResult:
    """Ground state of a :class:`repro.hamiltonians.Hamiltonian` via our Lanczos."""
    return Lanczos(**kwargs).minimal_eigenpair(hamiltonian.to_sparse())
