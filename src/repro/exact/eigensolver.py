"""Ground-state computation via scipy's sparse Lanczos (``eigsh``)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg

from repro.hamiltonians.base import Hamiltonian

__all__ = ["ExactResult", "ground_state", "spectral_gap"]


@dataclass(frozen=True)
class ExactResult:
    """Minimal eigenpair of a Hamiltonian."""

    energy: float
    vector: np.ndarray  # ground eigenvector in the computational basis

    @property
    def probabilities(self) -> np.ndarray:
        """Born distribution |ψ₀|² of the ground state."""
        return self.vector**2 / (self.vector**2).sum()


def ground_state(hamiltonian: Hamiltonian, k: int = 1) -> ExactResult:
    """Compute the minimal eigenpair exactly (n ≤ 20).

    For very small systems (``2^n ≤ 32``, where Lanczos constraints
    ``k < dim`` bind) falls back to dense ``eigh``.
    """
    dim = 2**hamiltonian.n
    if dim <= 32:
        mat = hamiltonian.to_dense()
        vals, vecs = np.linalg.eigh(mat)
        return ExactResult(energy=float(vals[0]), vector=vecs[:, 0])
    mat = hamiltonian.to_sparse()
    vals, vecs = scipy.sparse.linalg.eigsh(mat, k=k, which="SA")
    order = np.argsort(vals)
    return ExactResult(energy=float(vals[order[0]]), vector=vecs[:, order[0]])


def spectral_gap(hamiltonian: Hamiltonian) -> float:
    """Gap ``E₁ − E₀`` between the two lowest eigenvalues (n ≤ 20).

    The quantity controlling annealing schedules and MCMC mixing at low
    temperature; returns 0.0 for a degenerate ground space (e.g. the two
    symmetric optima of an unbroken Max-Cut instance).
    """
    dim = 2**hamiltonian.n
    if dim <= 32:
        vals = np.linalg.eigvalsh(hamiltonian.to_dense())
        return float(vals[1] - vals[0])
    mat = hamiltonian.to_sparse()
    vals = scipy.sparse.linalg.eigsh(mat, k=2, which="SA",
                                     return_eigenvectors=False)
    vals = np.sort(vals)
    return float(max(vals[1] - vals[0], 0.0))
