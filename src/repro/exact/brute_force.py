"""Exhaustive solvers for small instances (ground truth for tests)."""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.base import Hamiltonian, index_to_bits

__all__ = ["brute_force_max_cut", "brute_force_ground_state"]


def brute_force_max_cut(adjacency: np.ndarray) -> tuple[float, np.ndarray]:
    """Exact maximum cut by enumeration (n ≤ 22). Returns (value, bits)."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    n = adjacency.shape[0]
    if n > 22:
        raise ValueError(f"brute force infeasible for n={n}")
    states = index_to_bits(np.arange(2**n), n)
    z = 1.0 - 2.0 * states
    total = np.triu(adjacency, 1).sum()
    agree = np.einsum("bi,ij,bj->b", z, adjacency, z)
    cuts = 0.5 * (total - 0.5 * agree)
    best = int(np.argmax(cuts))
    return float(cuts[best]), states[best]


def brute_force_ground_state(hamiltonian: Hamiltonian) -> tuple[float, np.ndarray]:
    """Exact minimal *diagonal* entry for purely diagonal Hamiltonians, or
    the dense minimal eigenpair otherwise (n ≤ 14). Returns (energy, bits or
    eigenvector)."""
    n = hamiltonian.n
    nbrs, _ = hamiltonian.connected(np.zeros((1, n)))
    if nbrs.shape[1] == 0:
        if n > 22:
            raise ValueError(f"brute force infeasible for n={n}")
        states = index_to_bits(np.arange(2**n), n)
        diag = hamiltonian.diagonal(states)
        best = int(np.argmin(diag))
        return float(diag[best]), states[best]
    mat = hamiltonian.to_dense()
    vals, vecs = np.linalg.eigh(mat)
    return float(vals[0]), vecs[:, 0]
