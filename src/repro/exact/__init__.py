"""Exact solvers for validation.

VQMC results are only meaningful against ground truth; for ``n ≤ 20`` sites
we can compute exact ground states:

- :func:`ground_state` — scipy ``eigsh`` (Lanczos) on the sparse matrix.
- :class:`Lanczos` / :func:`lanczos_ground_state` — our own Lanczos
  implementation with full reorthogonalisation (no black box in the
  validation chain; the two are cross-checked in the tests).
- :func:`brute_force_max_cut` — exhaustive Max-Cut for small graphs (the
  yardstick for the Goemans–Williamson approximation-ratio tests).
"""

from repro.exact.eigensolver import ground_state, spectral_gap, ExactResult
from repro.exact.lanczos import Lanczos, lanczos_ground_state
from repro.exact.brute_force import brute_force_max_cut, brute_force_ground_state

__all__ = [
    "ground_state",
    "spectral_gap",
    "ExactResult",
    "Lanczos",
    "lanczos_ground_state",
    "brute_force_max_cut",
    "brute_force_ground_state",
]
