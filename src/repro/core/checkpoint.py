"""Checkpointing: crash-safe save/restore of a full training state.

A checkpoint captures everything needed to resume a run bit-exactly:
model parameters, optimizer state (momentum/Adam moments), the sampling
RNG state, and the step counter. Stored as a single ``.npz`` file (numpy's
portable container) with non-array state pickled into a header array.

Crash safety (a rank can die *while* checkpointing):

- Writes go to a temp file in the same directory, fsync'd, then published
  atomically with ``os.replace`` — a reader never observes a
  half-written ``.npz``.
- The header embeds a CRC32 over the pickled header and every parameter
  array; :func:`load_checkpoint` verifies it and raises a typed
  :class:`CheckpointCorruptError` on any mismatch, truncation, or
  unparseable container — instead of failing mid-unpickle.
- :meth:`CheckpointCallback.restore_latest` walks the checkpoint directory
  newest-first and restores the newest checkpoint that *verifies*, so a
  corrupted latest file degrades to the previous one instead of killing
  the resume.

Resume-exactness is tested: train k steps, checkpoint, train k more; vs
restore and train the same k — identical parameters.
"""

from __future__ import annotations

import io
import os
import pickle
import re
import zlib
from pathlib import Path

import numpy as np

from repro.core.vqmc import VQMC
from repro.obs.tracer import NULL_TRACER

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "verify_checkpoint",
    "restore_elastic",
    "CheckpointCallback",
    "CheckpointCorruptError",
]

_FORMAT_VERSION = 2


class CheckpointCorruptError(RuntimeError):
    """The checkpoint file is truncated, unparseable, or fails its CRC32."""

    def __init__(self, path: Path | str, reason: str):
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"corrupt checkpoint {path}: {reason}")


def _payload_crc(header_bytes: bytes, params: dict[str, np.ndarray]) -> int:
    """CRC32 over the pickled header and every parameter array (sorted by
    name, so the digest is independent of dict order)."""
    crc = zlib.crc32(header_bytes)
    for name in sorted(params):
        crc = zlib.crc32(name.encode("utf-8"), crc)
        crc = zlib.crc32(np.ascontiguousarray(params[name]).tobytes(), crc)
    return crc & 0xFFFFFFFF


def save_checkpoint(vqmc: VQMC, path: str | Path) -> None:
    """Write the trainer's full state to ``path`` (.npz), atomically."""
    path = Path(path)
    tracer = getattr(vqmc, "tracer", None) or NULL_TRACER
    with tracer.span("checkpoint.save", step=vqmc.global_step) as span:
        header = {
            "version": _FORMAT_VERSION,
            "global_step": vqmc.global_step,
            "optimizer_state": vqmc.optimizer.state_dict(),
            "rng_state": vqmc.rng.bit_generator.state,
            "model_class": type(vqmc.model).__name__,
        }
        # The evaluation stream is a seeded fork of the training stream
        # (see repro.core.vqmc.derive_eval_rng); it must resume where it
        # left off, or a restored run's interleaved evaluations would
        # replay different draws than the original's. Optional key: v2
        # checkpoints written before the fork existed restore fine.
        eval_rng = getattr(vqmc, "eval_rng", None)
        if eval_rng is not None:
            header["eval_rng_state"] = eval_rng.bit_generator.state
        # A HealthMonitor registers itself as vqmc.health on run begin; its
        # report rides in the header so a restored run knows how healthy its
        # source was. Absent/reportless monitors leave the header unchanged
        # (old checkpoints stay byte-identical in shape).
        health = getattr(vqmc, "health", None)
        if health is not None and hasattr(health, "report"):
            header["health"] = health.report()
        buf = io.BytesIO()
        pickle.dump(header, buf)
        header_bytes = buf.getvalue()
        params = {name: p for name, p in vqmc.model.state_dict().items()}
        arrays = {f"param/{name}": p for name, p in params.items()}
        arrays["__header__"] = np.frombuffer(header_bytes, dtype=np.uint8)
        arrays["__crc32__"] = np.array([_payload_crc(header_bytes, params)], dtype=np.uint32)

        # Temp file in the same directory (os.replace must not cross devices);
        # savez via an open handle so numpy does not append its own suffix.
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        if getattr(span, "attrs", None) is not None:  # real span, not the no-op
            span.attrs["bytes"] = path.stat().st_size


def _read_verified(path: Path) -> tuple[dict, dict[str, np.ndarray]]:
    """Load and CRC-verify ``path``; returns ``(header, params)``.

    Any parse failure — truncated zip, bad pickle, missing members, CRC
    mismatch — raises :class:`CheckpointCorruptError`.
    """
    try:
        with np.load(path) as data:
            if "__header__" not in data.files or "__crc32__" not in data.files:
                raise CheckpointCorruptError(
                    path, "missing header/CRC members (truncated or foreign file)"
                )
            header_bytes = data["__header__"].tobytes()
            stored_crc = int(data["__crc32__"][0])
            params = {
                key[len("param/"):]: data[key]
                for key in data.files
                if key.startswith("param/")
            }
            header = pickle.loads(header_bytes)
    except CheckpointCorruptError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, EOFError, pickle errors, ...
        raise CheckpointCorruptError(path, f"unreadable container: {exc}") from exc
    actual_crc = _payload_crc(header_bytes, params)
    if actual_crc != stored_crc:
        raise CheckpointCorruptError(
            path, f"CRC32 mismatch (stored {stored_crc:#010x}, actual {actual_crc:#010x})"
        )
    return header, params


def verify_checkpoint(path: str | Path) -> dict:
    """Verify ``path`` end to end; returns its header dict.

    Raises :class:`CheckpointCorruptError` if the file does not check out.
    """
    header, _ = _read_verified(Path(path))
    return header


def load_checkpoint(vqmc: VQMC, path: str | Path) -> None:
    """Restore a trainer's state in place from ``path`` (CRC-verified).

    The VQMC object must be constructed with the same model architecture
    and optimizer type; shapes are validated by ``load_state_dict``.
    """
    path = Path(path)
    tracer = getattr(vqmc, "tracer", None) or NULL_TRACER
    with tracer.span("checkpoint.restore", bytes=path.stat().st_size):
        header, params = _read_verified(path)
        if header["version"] != _FORMAT_VERSION:
            raise ValueError(
                f"checkpoint format v{header['version']} "
                f"not supported (expected v{_FORMAT_VERSION})"
            )
        if header["model_class"] != type(vqmc.model).__name__:
            raise TypeError(
                f"checkpoint was written for {header['model_class']}, "
                f"got {type(vqmc.model).__name__}"
            )
        vqmc.model.load_state_dict(params)
        vqmc.optimizer.load_state_dict(header["optimizer_state"])
        vqmc.rng.bit_generator.state = header["rng_state"]
        if "eval_rng_state" in header:
            vqmc.eval_rng.bit_generator.state = header["eval_rng_state"]
        else:
            # Pre-fork checkpoint: re-derive deterministically from the
            # (just restored) training stream, matching a fresh trainer.
            from repro.core.vqmc import derive_eval_rng

            vqmc.eval_rng = derive_eval_rng(vqmc.rng)
        vqmc.global_step = header["global_step"]


_RANKED = re.compile(r"^checkpoint_(\d{8})\.rank(\d{3})\.npz$")


def restore_elastic(
    vqmc: VQMC,
    directory: str | Path,
    *,
    rank: int,
    world_size: int,
    at_step: int | None = None,
    seed: int = 0,
) -> dict:
    """Restore rank ``rank`` of a ``world_size`` world from a checkpoint
    directory possibly written at a *different* world size.

    The elastic restart story: a run checkpointed at world=4 must come back
    at world=2 (survivors) or world=6 (grown). Per-rank files are
    rank-suffixed, so:

    - A rank whose own file exists restores it verbatim — parameters,
      optimizer moments, RNG stream, step — making the unchanged-world (and
      shrink-to-prefix) case *bit-exact*.
    - A new rank (no file of its own) borrows the full state of donor rank
      ``rank % n_available`` — parameters and optimizer moments are
      identical on every rank of a lock-step run, so any donor is correct —
      but must NOT inherit the donor's RNG stream (two ranks sampling the
      same stream would correlate the global batch): it derives a fresh
      deterministic stream from ``(seed, step, rank)``.

    Returns ``{"step", "source_rank", "exact", "path"}``; raises
    :class:`CheckpointCorruptError` if the directory holds no verifiable
    rank-suffixed checkpoint (at ``at_step``, if given).
    """
    if not 0 <= rank < world_size:
        raise ValueError(f"rank {rank} out of range for world size {world_size}")
    directory = Path(directory)
    by_step: dict[int, dict[int, Path]] = {}
    if directory.is_dir():
        for path in directory.iterdir():
            match = _RANKED.match(path.name)
            if match:
                by_step.setdefault(int(match.group(1)), {})[
                    int(match.group(2))
                ] = path
    steps = (
        sorted(by_step, reverse=True)
        if at_step is None
        else ([at_step] if at_step in by_step else [])
    )
    for step in steps:
        sources = by_step[step]
        donors = sorted(sources)
        own = sources.get(rank)
        candidates = [own] if own is not None else []
        # Donor order: start at rank % n for an even spread of borrowers
        # over donors, then rotate — so a corrupt first choice degrades to
        # the next donor instead of failing the restore.
        for i in range(len(donors)):
            path = sources[donors[(rank + i) % len(donors)]]
            if path != own:
                candidates.append(path)
        for path in candidates:
            exact = path == own
            try:
                load_checkpoint(vqmc, path)
            except CheckpointCorruptError:
                continue
            if not exact:
                # vqmc.rng now holds the donor's stream — replace it (see above)
                vqmc.rng = np.random.default_rng(
                    np.random.SeedSequence([seed, vqmc.global_step, rank])
                )
            return {
                "step": step,
                "source_rank": int(_RANKED.match(path.name).group(2)),
                "exact": exact,
                "path": path,
            }
    raise CheckpointCorruptError(
        directory,
        f"no verifiable rank-suffixed checkpoint for rank {rank} "
        f"(world {world_size}, at_step={at_step})",
    )


class CheckpointCallback:
    """Callback writing a checkpoint every ``every`` steps (and at run end).

    With ``rank`` set, filenames carry a rank suffix so all ranks of a
    data-parallel run can share one directory (each rank's RNG state
    differs, so each needs its own file).
    """

    def __init__(
        self,
        directory: str | Path,
        every: int = 50,
        keep_last: int = 3,
        rank: int | None = None,
    ):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every = every
        self.keep_last = keep_last
        self.rank = rank
        self._written: list[Path] = []

    def on_run_begin(self, vqmc) -> None:
        pass

    def on_step(self, step: int, result) -> None:
        if step % self.every == 0:
            self.write(result.vqmc, step)

    def on_run_end(self, vqmc) -> None:
        self.write(vqmc, vqmc.global_step)

    def _path_for(self, step: int) -> Path:
        if self.rank is None:
            return self.directory / f"checkpoint_{step:08d}.npz"
        return self.directory / f"checkpoint_{step:08d}.rank{self.rank:03d}.npz"

    def _pattern(self) -> re.Pattern:
        if self.rank is None:
            return re.compile(r"^checkpoint_(\d{8})\.npz$")
        return re.compile(rf"^checkpoint_(\d{{8}})\.rank{self.rank:03d}\.npz$")

    def write(self, vqmc, step: int) -> Path:
        path = self._path_for(step)
        save_checkpoint(vqmc, path)
        if path not in self._written:
            self._written.append(path)
        while len(self._written) > self.keep_last:
            old = self._written.pop(0)
            old.unlink(missing_ok=True)
        return path

    # back-compat alias (pre-fault-tolerance name)
    _write = write

    def latest(self) -> Path | None:
        return self._written[-1] if self._written else None

    # -- recovery -------------------------------------------------------------

    def candidates(self) -> list[tuple[int, Path]]:
        """All on-disk checkpoints for this (directory, rank), newest first.

        Scans the directory rather than ``self._written`` so a fresh
        process can resume a run it did not start.
        """
        pattern = self._pattern()
        found = []
        for path in self.directory.iterdir():
            match = pattern.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found, reverse=True)

    def newest_verified_step(self) -> int | None:
        """Step of the newest checkpoint that passes verification."""
        for step, path in self.candidates():
            try:
                verify_checkpoint(path)
            except CheckpointCorruptError:
                continue
            return step
        return None

    def restore_latest(self, vqmc, at_step: int | None = None) -> Path | None:
        """Restore the newest checkpoint that verifies (or the one at
        ``at_step``); corrupt files are skipped. Returns the path used, or
        ``None`` if no checkpoint verified."""
        for step, path in self.candidates():
            if at_step is not None and step != at_step:
                continue
            try:
                load_checkpoint(vqmc, path)
            except CheckpointCorruptError:
                continue
            return path
        return None
