"""Checkpointing: save/restore a full training state.

A checkpoint captures everything needed to resume a run bit-exactly:
model parameters, optimizer state (momentum/Adam moments), the sampling
RNG state, and the step counter. Stored as a single ``.npz`` file (numpy's
portable container) with non-array state pickled into a header array.

Resume-exactness is tested: train k steps, checkpoint, train k more; vs
restore and train the same k — identical parameters.
"""

from __future__ import annotations

import io
import pickle
from pathlib import Path

import numpy as np

from repro.core.vqmc import VQMC

__all__ = ["save_checkpoint", "load_checkpoint", "CheckpointCallback"]

_FORMAT_VERSION = 1


def save_checkpoint(vqmc: VQMC, path: str | Path) -> None:
    """Write the trainer's full state to ``path`` (.npz)."""
    path = Path(path)
    header = {
        "version": _FORMAT_VERSION,
        "global_step": vqmc.global_step,
        "optimizer_state": vqmc.optimizer.state_dict(),
        "rng_state": vqmc.rng.bit_generator.state,
        "model_class": type(vqmc.model).__name__,
    }
    buf = io.BytesIO()
    pickle.dump(header, buf)
    arrays = {f"param/{name}": p for name, p in vqmc.model.state_dict().items()}
    arrays["__header__"] = np.frombuffer(buf.getvalue(), dtype=np.uint8)
    np.savez(path, **arrays)


def load_checkpoint(vqmc: VQMC, path: str | Path) -> None:
    """Restore a trainer's state in place from ``path``.

    The VQMC object must be constructed with the same model architecture
    and optimizer type; shapes are validated by ``load_state_dict``.
    """
    path = Path(path)
    with np.load(path) as data:
        header = pickle.loads(data["__header__"].tobytes())
        if header["version"] != _FORMAT_VERSION:
            raise ValueError(
                f"checkpoint format v{header['version']} "
                f"not supported (expected v{_FORMAT_VERSION})"
            )
        if header["model_class"] != type(vqmc.model).__name__:
            raise TypeError(
                f"checkpoint was written for {header['model_class']}, "
                f"got {type(vqmc.model).__name__}"
            )
        state = {
            key[len("param/"):]: data[key]
            for key in data.files
            if key.startswith("param/")
        }
    vqmc.model.load_state_dict(state)
    vqmc.optimizer.load_state_dict(header["optimizer_state"])
    vqmc.rng.bit_generator.state = header["rng_state"]
    vqmc.global_step = header["global_step"]


class CheckpointCallback:
    """Callback writing a checkpoint every ``every`` steps (and at run end)."""

    def __init__(self, directory: str | Path, every: int = 50, keep_last: int = 3):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every = every
        self.keep_last = keep_last
        self._written: list[Path] = []

    def on_run_begin(self, vqmc) -> None:
        pass

    def on_step(self, step: int, result) -> None:
        if step % self.every == 0:
            self._write(result.vqmc, step)

    def on_run_end(self, vqmc) -> None:
        self._write(vqmc, vqmc.global_step)

    def _write(self, vqmc, step: int) -> None:
        path = self.directory / f"checkpoint_{step:08d}.npz"
        save_checkpoint(vqmc, path)
        if path not in self._written:
            self._written.append(path)
        while len(self._written) > self.keep_last:
            old = self._written.pop(0)
            old.unlink(missing_ok=True)

    def latest(self) -> Path | None:
        return self._written[-1] if self._written else None
