"""Local energies (Eq. 3) and Monte-Carlo gradient estimators (Eq. 5).

Local energy::

    l(x) = (Hψ)(x) / ψ(x) = H_xx + Σ_{y ≠ x, H_xy ≠ 0} H_xy ψ(y)/ψ(x)

The sum runs over the ``connected`` configurations of the Hamiltonian row —
``O(s)`` terms per sample (Definition 2.1). For Hamiltonians exposing a
structured single-flip row description (Eq. 11 family) the log-ratios are
delta-evaluated by the fused kernel in :mod:`repro.perf.flips` from ONE
cached forward pass; otherwise they fall back to one batched forward pass
over all ``B × K`` dense neighbours — either way the measurement pattern
the paper's complexity analysis in §4 counts as "a fixed number of forward
passes".

Gradient (Eq. 5)::

    ∇L(θ) = 2 E[(l(x) − L) ∇θ log ψθ(x)] .

Two equivalent estimators are provided:

- ``grad_via_autograd`` — builds the surrogate scalar
  ``2 · mean(stop_grad(l − l̄) · log ψ(x))`` and backpropagates; exercises
  the tape engine exactly like the PyTorch original.
- ``grad_from_per_sample`` — contracts the hand-vectorised per-sample
  log-derivative matrix ``O`` with the centred local energies; this path is
  shared with stochastic reconfiguration which needs ``O`` anyway.

The centring by ``l̄`` is the standard control variate: it leaves the
expectation unchanged (``E[∇ log ψ] = ∇ Σπ/2 = 0`` for normalised models)
but removes the dominant variance term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.models.base import WaveFunction
from repro.tensor.tensor import no_grad

__all__ = [
    "EnergyStats",
    "local_energies",
    "energy_statistics",
    "grad_via_autograd",
    "grad_from_per_sample",
    "MAX_LOG_RATIO",
]

#: cap on |log ψ(y) − log ψ(x)| when evaluating amplitude ratios (see below)
MAX_LOG_RATIO = 80.0


@dataclass(frozen=True)
class EnergyStats:
    """Summary of a batch of local energies."""

    mean: float
    std: float
    sem: float
    count: int

    @property
    def variance(self) -> float:
        return self.std**2

    @property
    def is_empty(self) -> bool:
        """True for the zero-sample sentinel (see :meth:`empty`)."""
        return self.count == 0

    @classmethod
    def empty(cls) -> "EnergyStats":
        """The zero-sample sentinel: all-finite, ``count == 0``.

        A cancelled or empty batched query (the ``repro.serve`` batcher can
        produce one) has no samples to summarise; returning finite zeros
        instead of NaN / raising keeps downstream consumers (JSON
        serialisation, health rules, dashboards) well-defined. Check
        :attr:`is_empty` before interpreting the moments.
        """
        return cls(mean=0.0, std=0.0, sem=0.0, count=0)

    def __str__(self) -> str:
        if self.is_empty:
            return "E = <empty batch> (B=0)"
        return f"E = {self.mean:.6f} ± {self.sem:.6f} (std {self.std:.4f}, B={self.count})"


def local_energies(
    model: WaveFunction,
    hamiltonian: Hamiltonian,
    x: np.ndarray,
    log_psi_x: np.ndarray | None = None,
    return_log_psi: bool = False,
    fast: bool | None = None,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Evaluate ``l(x)`` for a batch — shape (B,). No autograd graph is built.

    Two execution paths:

    - **fused** (default whenever ``hamiltonian.single_flips()`` is
      structured and the model supports delta evaluation): the
      :mod:`repro.perf.flips` kernel computes every log-ratio from one
      cached forward pass plus per-flip column deltas — no ``(B, K, n)``
      neighbour array, no ``B·K`` from-scratch forward passes;
    - **dense**: the generic ``connected()`` path, one batched forward pass
      over all neighbours. Used for MCMC-only models (RBM) and
      unstructured Hamiltonians.

    Parameters
    ----------
    log_psi_x:
        Optional precomputed ``log ψ(x)`` (shape ``(B,)``) — e.g. the value
        ``log_psi_and_grads`` already returned to the training loop — so
        amplitudes of ``x`` are never evaluated twice per step.
    return_log_psi:
        When True, return ``(energies, log_psi_x)`` — the provided or
        computed log-amplitudes of ``x`` (evaluated on demand if a purely
        diagonal Hamiltonian made them unnecessary for the energies).
    fast:
        Force (True) or forbid (False) the fused kernel; ``None`` picks
        automatically. Forcing it on an unsupported model/Hamiltonian pair
        raises ``ValueError``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2 or x.shape[1] != hamiltonian.n:
        raise ValueError(f"expected (B, {hamiltonian.n}) batch, got {x.shape}")
    if model.n != hamiltonian.n:
        raise ValueError(f"model has n={model.n} but Hamiltonian has n={hamiltonian.n}")
    if log_psi_x is not None:
        log_psi_x = np.asarray(log_psi_x, dtype=np.float64)
        if log_psi_x.shape != (x.shape[0],):
            raise ValueError(
                f"log_psi_x must have shape ({x.shape[0]},), got {log_psi_x.shape}"
            )

    from repro.perf.flips import flip_log_ratios, supports_flip_kernel

    flips = hamiltonian.single_flips()
    fused_ok = flips is not None and supports_flip_kernel(model)
    if fast is None:
        use_fused = fused_ok
    elif fast and not fused_ok:
        raise ValueError(
            "fast=True requires a single-flip Hamiltonian and a MADE-style "
            f"model; got {type(hamiltonian).__name__} / {type(model).__name__}"
        )
    else:
        use_fused = fast

    energies = hamiltonian.diagonal(x).copy()
    # Clip the log-ratio so a collapsing wavefunction produces a huge but
    # finite local energy instead of inf: inf would turn the batch mean
    # into NaN and poison the gradient. e^MAX_LOG_RATIO ≈ 5·10³⁴ is far
    # beyond any physical ratio yet small enough that batch sums and
    # variances stay finite. (An fp32 implementation — like the paper's —
    # would have saturated at e^88 anyway.)
    if use_fused:
        if flips.k:
            deltas, cache = flip_log_ratios(model, flips.sites, x=x)
            ratios = np.exp(np.clip(deltas, -MAX_LOG_RATIO, MAX_LOG_RATIO))
            energies += ratios @ flips.amplitudes
            if log_psi_x is None:
                log_psi_x = cache.log_psi
    else:
        nbrs, amps = hamiltonian.connected(x)
        bsz, k, _ = nbrs.shape
        if k:
            with no_grad():
                if log_psi_x is None:
                    log_psi_x = model.log_psi(x).data
                lp_n = model.log_psi(nbrs.reshape(bsz * k, -1)).data.reshape(bsz, k)
            ratios = np.exp(
                np.clip(lp_n - log_psi_x[:, None], -MAX_LOG_RATIO, MAX_LOG_RATIO)
            )
            energies += (amps * ratios).sum(axis=1)
    if not return_log_psi:
        return energies
    if log_psi_x is None:
        with no_grad():
            log_psi_x = model.log_psi(x).data
    return energies, log_psi_x


def energy_statistics(local: np.ndarray) -> EnergyStats:
    """Mean/std/SEM of a local-energy batch.

    The std is the paper's Figure 2 blue curve — it vanishes exactly when ψ
    is an eigenvector (zero-variance principle, Eq. 4).
    """
    local = np.asarray(local, dtype=np.float64)
    count = local.size
    if count == 0:
        return EnergyStats.empty()
    mean = float(local.mean())
    std = float(local.std())
    sem = std / np.sqrt(count) if count > 1 else float("nan")
    return EnergyStats(mean=mean, std=std, sem=sem, count=count)


def grad_via_autograd(
    model: WaveFunction, x: np.ndarray, local: np.ndarray
) -> float:
    """Backpropagate the REINFORCE surrogate; leaves ∇L in ``p.grad``.

    Returns the surrogate value (useful only for debugging — the estimator
    of interest is the gradient).
    """
    local = np.asarray(local, dtype=np.float64)
    weights = 2.0 * (local - local.mean()) / local.size  # stop-gradient constant
    log_psi = model.log_psi(x)
    surrogate = (log_psi * weights).sum()
    surrogate.backward()
    return float(surrogate.data)


def grad_from_per_sample(per_sample_o: np.ndarray, local: np.ndarray) -> np.ndarray:
    """Flat ∇L from per-sample log-derivatives: ``2 ⟨(l − l̄) O⟩`` — shape (d,)."""
    o = np.asarray(per_sample_o, dtype=np.float64)
    local = np.asarray(local, dtype=np.float64)
    centred = local - local.mean()
    return 2.0 * (centred @ o) / o.shape[0]
