"""The VQMC training engine (the paper's primary contribution).

- :mod:`repro.core.energy` — local-energy evaluation (Eq. 3) and the two
  gradient estimators (autograd surrogate and per-sample covariance form of
  Eq. 5).
- :mod:`repro.core.vqmc` — the alternating sample/optimise driver, with
  optional stochastic reconfiguration and optional data parallelism.
- :mod:`repro.core.callbacks` — history recording, hitting-time early stop,
  wall-clock accounting.
"""

from repro.core.energy import EnergyStats, local_energies, energy_statistics
from repro.core.vqmc import VQMC, VQMCConfig, StepResult, StepDriver
from repro.core.callbacks import (
    Callback,
    History,
    HittingTime,
    ProgressPrinter,
    StopTraining,
)
from repro.core.checkpoint import (
    CheckpointCallback,
    CheckpointCorruptError,
    load_checkpoint,
    restore_elastic,
    save_checkpoint,
    verify_checkpoint,
)
from repro.core.gradient_stats import GradientNoise, gradient_noise

__all__ = [
    "EnergyStats",
    "local_energies",
    "energy_statistics",
    "VQMC",
    "VQMCConfig",
    "StepResult",
    "StepDriver",
    "Callback",
    "History",
    "HittingTime",
    "ProgressPrinter",
    "StopTraining",
    "CheckpointCallback",
    "CheckpointCorruptError",
    "save_checkpoint",
    "load_checkpoint",
    "verify_checkpoint",
    "restore_elastic",
    "GradientNoise",
    "gradient_noise",
]
