"""Hamiltonian annealing for VQMC (quantum-inspired annealing).

For hard combinatorial landscapes it often helps to train against an
interpolated Hamiltonian

    H(s) = (1 − s) · H_driver + s · H_target ,   s: 0 → 1 over training,

with a transverse-field driver ``H_driver = −Σ_i X_i`` whose ground state
(uniform superposition) is trivially learnable. This is the variational
analogue of quantum annealing: the model tracks the instantaneous ground
state while the gap closes, ending on the target problem. The paper stops
at direct optimisation; this is a natural extension its framework supports
with ~50 lines because the driver only touches the α/β/coupling arrays of
the Eq. 11 family.

Usage::

    schedule = AnnealingSchedule(target, total_steps=300)
    vqmc = VQMC(model, schedule.hamiltonian(0), sampler, opt)
    vqmc.run(300, callbacks=[AnnealingCallback(vqmc, schedule)])
"""

from __future__ import annotations

import numpy as np

from repro.core.callbacks import Callback
from repro.hamiltonians.zzx import ZZXHamiltonian

__all__ = ["AnnealingSchedule", "AnnealingCallback", "transverse_driver"]


def transverse_driver(n: int, strength: float = 1.0) -> ZZXHamiltonian:
    """``H_driver = −strength · Σ_i X_i`` — ground state = uniform superposition."""
    return ZZXHamiltonian(
        alpha=np.full(n, float(strength)),
        beta=np.zeros(n),
        couplings=np.zeros((n, n)),
    )


class AnnealingSchedule:
    """Linear (or powered) interpolation between driver and target.

    Parameters
    ----------
    target:
        The problem Hamiltonian (any :class:`ZZXHamiltonian`).
    total_steps:
        Steps over which ``s`` ramps 0 → 1 (then stays at 1).
    driver:
        Defaults to the unit transverse-field driver.
    power:
        ``s(t) = (t / total)^power`` — >1 lingers near the driver,
        <1 rushes toward the target.
    """

    def __init__(
        self,
        target: ZZXHamiltonian,
        total_steps: int,
        driver: ZZXHamiltonian | None = None,
        power: float = 1.0,
    ):
        if total_steps < 1:
            raise ValueError(f"total_steps must be >= 1, got {total_steps}")
        if power <= 0:
            raise ValueError(f"power must be > 0, got {power}")
        self.target = target
        self.driver = driver if driver is not None else transverse_driver(target.n)
        if self.driver.n != target.n:
            raise ValueError(
                f"driver has n={self.driver.n}, target n={target.n}"
            )
        self.total_steps = total_steps
        self.power = power

    def s(self, step: int) -> float:
        """Interpolation parameter at a (0-based) training step."""
        return min(1.0, (step / self.total_steps)) ** self.power

    def hamiltonian(self, step: int) -> ZZXHamiltonian:
        """``H(s(step))`` as a concrete ZZXHamiltonian."""
        s = self.s(step)
        d, t = self.driver, self.target
        return ZZXHamiltonian(
            alpha=(1 - s) * d.alpha + s * t.alpha,
            beta=(1 - s) * d.beta + s * t.beta,
            couplings=(1 - s) * d.couplings + s * t.couplings,
            offset=(1 - s) * d.offset + s * t.offset,
        )


class AnnealingCallback(Callback):
    """Swaps the trainer's Hamiltonian to ``H(s)`` before every step.

    The swap happens in ``on_step`` *after* step ``t`` completes, setting up
    ``H(s(t+1))`` for the next one; construct the VQMC with
    ``schedule.hamiltonian(0)`` so step 1 sees the pure driver.
    """

    def __init__(self, vqmc, schedule: AnnealingSchedule):
        if vqmc.model.n != schedule.target.n:
            raise ValueError("schedule size does not match the model")
        self.vqmc = vqmc
        self.schedule = schedule

    def on_step(self, step: int, result) -> None:
        self.vqmc.hamiltonian = self.schedule.hamiltonian(step)
