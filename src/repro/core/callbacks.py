"""Training callbacks: history, hitting-time early stop, progress printing."""

from __future__ import annotations

import sys
import time
from typing import Callable, TextIO

import numpy as np

__all__ = [
    "Callback",
    "History",
    "HittingTime",
    "EarlyStopping",
    "ProgressPrinter",
    "StopTraining",
]


class StopTraining(Exception):
    """Raised by a callback to end :meth:`repro.core.VQMC.run` early."""


class Callback:
    """Base class; all hooks are optional no-ops."""

    def on_run_begin(self, vqmc) -> None:  # noqa: D102
        pass

    def on_step(self, step: int, result) -> None:
        """Called after every optimisation step with its :class:`StepResult`."""

    def on_run_end(self, vqmc) -> None:  # noqa: D102
        pass


class History(Callback):
    """Records per-step scalars (the data behind the paper's Figure 2 curves)."""

    def __init__(self) -> None:
        self.energy: list[float] = []
        self.std: list[float] = []
        self.grad_norm: list[float] = []
        self.step_time: list[float] = []
        self.acceptance: list[float] = []

    def on_step(self, step: int, result) -> None:
        self.energy.append(result.stats.mean)
        self.std.append(result.stats.std)
        self.grad_norm.append(result.grad_norm)
        self.step_time.append(result.step_time)
        self.acceptance.append(result.acceptance)

    def as_arrays(self) -> dict[str, np.ndarray]:
        return {
            "energy": np.asarray(self.energy),
            "std": np.asarray(self.std),
            "grad_norm": np.asarray(self.grad_norm),
            "step_time": np.asarray(self.step_time),
            "acceptance": np.asarray(self.acceptance),
        }

    def __len__(self) -> int:
        return len(self.energy)


class HittingTime(Callback):
    """Stop when an evaluation score first surpasses a target (paper §6.3).

    After each training step the callback draws a fresh evaluation batch,
    computes ``score_fn`` on it, and raises :class:`StopTraining` when the
    target is reached. Matching §6.3, evaluation time is excluded from the
    reported hitting time: we accumulate only the training ``step_time``.

    Parameters
    ----------
    target:
        Score threshold (e.g. a cut number).
    score_fn:
        Maps an ``(B, n)`` evaluation batch to a scalar score. Default —
        set by the driver — is the mean negated energy of the batch.
    eval_batch_size:
        Size of the per-step evaluation batch (paper uses the training bs).
    """

    def __init__(
        self,
        target: float,
        score_fn: Callable[[np.ndarray], float] | None = None,
        eval_batch_size: int = 1024,
    ):
        self.target = target
        self.score_fn = score_fn
        self.eval_batch_size = eval_batch_size
        self.hit_step: int | None = None
        self.hit_time: float | None = None
        self.best_score: float = -np.inf
        self._train_time = 0.0

    def on_step(self, step: int, result) -> None:
        self._train_time += result.step_time
        vqmc = result.vqmc
        x = vqmc.sampler.sample(vqmc.model, self.eval_batch_size, vqmc.rng)
        if self.score_fn is not None:
            score = float(self.score_fn(x))
        else:
            from repro.core.energy import local_energies

            score = float(-local_energies(vqmc.model, vqmc.hamiltonian, x).mean())
        self.best_score = max(self.best_score, score)
        if score >= self.target:
            self.hit_step = step
            self.hit_time = self._train_time
            raise StopTraining(
                f"target {self.target} reached at step {step} "
                f"(training time {self._train_time:.2f}s)"
            )


class EarlyStopping(Callback):
    """Stop when the (smoothed) energy stops improving.

    Tracks the running mean of the last ``window`` step energies; if it
    fails to improve by at least ``min_delta`` for ``patience`` consecutive
    steps, raises :class:`StopTraining`.
    """

    def __init__(self, patience: int = 20, min_delta: float = 1e-4, window: int = 10):
        if patience < 1 or window < 1:
            raise ValueError("patience and window must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.window = window
        self.best: float = np.inf
        self.stale = 0
        self._recent: list[float] = []
        self.stopped_at: int | None = None

    def on_step(self, step: int, result) -> None:
        self._recent.append(result.stats.mean)
        if len(self._recent) > self.window:
            self._recent.pop(0)
        smoothed = float(np.mean(self._recent))
        if smoothed < self.best - self.min_delta:
            self.best = smoothed
            self.stale = 0
        else:
            self.stale += 1
            if self.stale >= self.patience:
                self.stopped_at = step
                raise StopTraining(
                    f"no improvement for {self.patience} steps "
                    f"(best smoothed energy {self.best:.6f})"
                )


class ProgressPrinter(Callback):
    """Prints a one-line summary every ``every`` steps."""

    def __init__(self, every: int = 10, stream: TextIO | None = None):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = every
        self.stream = stream if stream is not None else sys.stderr
        self._start = 0.0

    def on_run_begin(self, vqmc) -> None:
        self._start = time.perf_counter()

    def on_step(self, step: int, result) -> None:
        if step % self.every:
            return
        elapsed = time.perf_counter() - self._start
        print(
            f"[step {step:5d}] E = {result.stats.mean:12.4f} "
            f"± {result.stats.sem:8.4f}  std = {result.stats.std:10.4f}  "
            f"|g| = {result.grad_norm:9.3e}  t = {elapsed:8.2f}s",
            file=self.stream,
        )
