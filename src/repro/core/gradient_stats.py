"""Gradient-noise diagnostics: why bigger batches converge better (Fig. 4).

The paper observes that the converged energy improves with the effective
batch size, saturating earlier for smaller problems. The mechanism is the
signal-to-noise ratio of the stochastic gradient: per-sample gradient
contributions ``g_b = 2 (l_b − l̄) O_b`` have covariance ``Σ``; a batch of
size B estimates the true gradient with noise ``Σ/B``. These utilities
measure that directly:

- :func:`gradient_noise` — per-parameter mean and variance of the
  contributions, total SNR, and the "critical batch size" heuristic
  ``B_crit = tr(Σ) / ‖g‖²`` (McCandlish et al. 2018) — batches beyond
  B_crit give diminishing returns, which is exactly the saturation shape
  of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.energy import local_energies
from repro.hamiltonians.base import Hamiltonian
from repro.models.base import WaveFunction

__all__ = ["GradientNoise", "gradient_noise"]


@dataclass(frozen=True)
class GradientNoise:
    """Statistics of the per-sample gradient contributions."""

    mean: np.ndarray  # (d,) — the gradient estimate itself
    variance: np.ndarray  # (d,) — per-parameter variance of contributions
    snr: float  # ‖mean‖² / (tr Σ / B): signal vs remaining batch noise
    critical_batch: float  # tr Σ / ‖mean‖²
    batch_size: int

    def noise_fraction(self) -> float:
        """Fraction of the squared gradient norm expected to be noise at
        this batch size — ``1/(1 + snr)``."""
        return 1.0 / (1.0 + self.snr)


def gradient_noise(
    model: WaveFunction,
    hamiltonian: Hamiltonian,
    x: np.ndarray,
) -> GradientNoise:
    """Measure gradient SNR on a sample batch.

    Uses the per-sample path (``model.has_per_sample_grads`` required):
    contributions ``g_b = 2 (l_b − l̄) O_b`` whose batch mean is the
    estimator of Eq. 5.
    """
    if not model.has_per_sample_grads:
        raise TypeError(
            f"{type(model).__name__} has no per-sample gradients; "
            "gradient_noise needs them"
        )
    x = np.asarray(x, dtype=np.float64)
    local = local_energies(model, hamiltonian, x)
    _, o = model.log_psi_and_grads(x)
    bsz = x.shape[0]
    if bsz < 2:
        raise ValueError("need at least two samples to estimate variance")

    contributions = 2.0 * (local - local.mean())[:, None] * o  # (B, d)
    mean = contributions.mean(axis=0)
    variance = contributions.var(axis=0, ddof=1)

    trace_sigma = float(variance.sum())
    signal = float(mean @ mean)
    snr = signal / (trace_sigma / bsz) if trace_sigma > 0 else float("inf")
    critical = trace_sigma / signal if signal > 0 else float("inf")
    return GradientNoise(
        mean=mean,
        variance=variance,
        snr=snr,
        critical_batch=critical,
        batch_size=bsz,
    )
