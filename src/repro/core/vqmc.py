"""The VQMC driver: alternating sampling and (natural-)gradient descent.

Single-process use::

    model = MADE(n=20, rng=rng)
    ham = TransverseFieldIsing.random(20, seed=0)
    vqmc = VQMC(model, ham, AutoregressiveSampler(), Adam(model.parameters()))
    history = History()
    vqmc.run(300, batch_size=1024, callbacks=[history])

Data-parallel use (the paper's §4 scheme): pass a
:class:`repro.distributed.Communicator`. Each rank draws its own mini-batch
``mbs`` (effective batch ``bs = L × mbs``), computes local statistics and
gradients, and the driver allreduces them so every rank applies the *same*
update — keeping the replicas in lock-step without ever exchanging samples.
"""

from __future__ import annotations

import hashlib
import json
import time
import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.callbacks import Callback, StopTraining
from repro.core.energy import (
    EnergyStats,
    energy_statistics,
    grad_from_per_sample,
    grad_via_autograd,
    local_energies,
)
from repro.hamiltonians.base import Hamiltonian
from repro.models.base import WaveFunction
from repro.obs.metrics import Metrics
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.optim.base import Optimizer
from repro.optim.sr import StochasticReconfiguration
from repro.samplers.base import Sampler
from repro.utils.rng import as_generator
from repro.utils.timer import WallClock

__all__ = ["VQMC", "VQMCConfig", "StepResult", "StepDriver"]


def derive_eval_rng(rng: np.random.Generator) -> np.random.Generator:
    """Seeded evaluation fork of a sampling stream, without consuming it.

    Evaluation draws (``VQMC.evaluate``, server-side energy/sample queries)
    must never share the training stream: an interleaved evaluation would
    shift every subsequent training draw and break bit-exact
    checkpoint/recovery replays. The fork is derived by hashing the
    generator's *state* — no draws are taken, so constructing a trainer
    leaves the training stream untouched, the fork is deterministic for a
    given seed, and distinct ranks (distinct streams) get distinct
    evaluation streams.
    """
    blob = json.dumps(rng.bit_generator.state, sort_keys=True, default=repr)
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    entropy = [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]
    return np.random.default_rng(np.random.SeedSequence(entropy))


@dataclass
class VQMCConfig:
    """Driver configuration.

    Attributes
    ----------
    batch_size:
        Samples per step *per rank* (the paper's ``mbs``; with L ranks the
        effective batch is ``L × batch_size``).
    gradient_mode:
        ``'autograd'`` (tape), ``'per_sample'`` (closed-form O matrix), or
        ``'auto'`` — per-sample whenever SR is active (it needs O anyway),
        autograd otherwise.
    compile:
        ``'auto'`` (default) traces the gradient hot path once per
        (shape, dtype, parameter-structure) guard key and replays it as a
        fused :class:`repro.jit.CompiledPlan`, silently falling back to the
        interpreter for models the tracer cannot handle; ``'on'`` makes an
        untraceable step an error; ``'off'`` always interprets.
    max_grad_norm:
        Optional global-norm gradient clipping (applied after SR). The
        paper clips nothing; this is the standard guard for the unstable
        RBM+MCMC regimes Table 2 exposes.
    """

    batch_size: int = 1024
    gradient_mode: str = "auto"
    compile: str = "auto"
    max_grad_norm: float | None = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.gradient_mode not in ("auto", "autograd", "per_sample"):
            raise ValueError(f"unknown gradient_mode {self.gradient_mode!r}")
        if self.compile not in ("auto", "on", "off"):
            raise ValueError(f"unknown compile mode {self.compile!r}")
        if self.max_grad_norm is not None and self.max_grad_norm <= 0:
            raise ValueError(f"max_grad_norm must be > 0, got {self.max_grad_norm}")


@dataclass
class StepResult:
    """Outcome of one optimisation step (global statistics in parallel runs)."""

    step: int
    stats: EnergyStats
    grad_norm: float
    step_time: float
    acceptance: float
    vqmc: "VQMC" = field(repr=False, default=None)
    #: this step's wall seconds per phase (``sample`` / ``energy`` /
    #: ``gradient`` / ``update``) — *local* to this rank, unlike ``stats``.
    #: The elastic supervisor's straggler rebalancing feeds on it.
    phase_seconds: dict = field(repr=False, default_factory=dict)


class VQMC:
    """Variational quantum Monte Carlo trainer.

    Parameters
    ----------
    model, hamiltonian, sampler, optimizer:
        The four interchangeable components; any model/sampler pairing that
        type-checks is allowed (MADE+AUTO, RBM+MCMC, and also MADE+MCMC for
        ablations).
    sr:
        Optional :class:`StochasticReconfiguration` preconditioner. Requires
        ``model.has_per_sample_grads``.
    comm:
        Optional communicator for data parallelism. When given, parameters
        are broadcast from rank 0 at construction and gradients/statistics
        are allreduced each step.
    seed:
        Seed or generator for the sampling stream. In parallel runs each
        rank must pass a *distinct* stream (see
        :func:`repro.utils.rng.spawn_generators`); the driver checks ranks
        do not accidentally share a seed by comparing first draws.
    tracer:
        Optional :class:`repro.obs.Tracer`. When given, every step emits
        nested phase spans (``step`` > ``sample`` / ``local_energy`` /
        ``gradient`` / ``sr_solve`` / ``optimizer``) and the tracer is
        attached to ``comm`` (collective spans), to the sampler
        (fast-path spans) and to ``sr`` (solve sub-spans) so one per-rank
        timeline covers the whole step.
        Default: the shared disabled tracer — near-zero overhead.
    metrics:
        Optional :class:`repro.obs.Metrics` registry. Currently forwarded
        to ``sr`` (per-solve ``sr.*`` counters: CG iterations, collective
        bytes, incomplete solves); snapshot it after a run and merge
        across ranks with :func:`repro.obs.merge_snapshots`.
    """

    def __init__(
        self,
        model: WaveFunction,
        hamiltonian: Hamiltonian,
        sampler: Sampler,
        optimizer: Optimizer,
        sr: StochasticReconfiguration | None = None,
        comm=None,
        seed: int | None | np.random.Generator = None,
        config: VQMCConfig | None = None,
        tracer: Tracer | None = None,
        metrics: Metrics | None = None,
    ):
        if model.n != hamiltonian.n:
            raise ValueError(
                f"model n={model.n} does not match Hamiltonian n={hamiltonian.n}"
            )
        if sr is not None and not model.has_per_sample_grads:
            raise TypeError(
                f"SR requires per-sample gradients; {type(model).__name__} "
                "does not provide them"
            )
        self.model = model
        self.hamiltonian = hamiltonian
        self.sampler = sampler
        self.optimizer = optimizer
        self.sr = sr
        self.comm = comm
        self.rng = as_generator(seed)
        #: evaluation stream — a seeded fork of ``rng`` (see
        #: :func:`derive_eval_rng`); saved and restored by checkpoints so
        #: resumed runs replay evaluation draws too.
        self.eval_rng = derive_eval_rng(self.rng)
        self.config = config or VQMCConfig()
        self.global_step = 0
        self.diverged_steps = 0
        #: per-phase wall-clock accounting (sample / energy / gradient /
        #: update), cumulated over all steps — read via
        #: ``vqmc.clock.snapshot()`` / ``vqmc.clock.summary()``.
        self.clock = WallClock()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        #: lazily created :class:`repro.jit.StepCompiler`; one per driver.
        self._compiler = None
        #: sticky fallback reasons keyed by gradient path ('autograd' /
        #: 'per_sample'): once a path proves untraceable for this model the
        #: driver stops re-attempting compilation (compile='auto' only).
        self._jit_fallback: dict[str, str] = {}
        if tracer is not None:
            # One timeline per rank: collectives, sampler fast paths and
            # SR solve sub-spans nest inside the step's phase spans.
            if comm is not None and hasattr(comm, "attach_tracer"):
                comm.attach_tracer(tracer)
            if hasattr(sampler, "tracer"):
                sampler.tracer = tracer
            if sr is not None:
                sr.attach_tracer(tracer)
        if sr is not None and metrics is not None:
            sr.metrics = metrics

        if comm is not None and comm.size > 1:
            # All replicas must start from identical parameters.
            flat = self.model.flat_parameters()
            flat = comm.broadcast(flat, root=0)
            self.model.set_flat_parameters(flat)

    # -- mode resolution ---------------------------------------------------------

    def _gradient_mode(self) -> str:
        mode = self.config.gradient_mode
        if mode == "auto":
            mode = "per_sample" if self.sr is not None else "autograd"
        if mode == "per_sample" and not self.model.has_per_sample_grads:
            raise TypeError(
                f"{type(self.model).__name__} has no per-sample gradient path"
            )
        return mode

    # -- step compilation --------------------------------------------------------

    def _plan(self, x: np.ndarray, compile_mode: str, path: str):
        """Return a :class:`repro.jit.CompiledPlan` for batch ``x`` or
        ``None`` to run the interpreter.

        ``path`` is ``'autograd'`` (scalar adjoint sweep) or ``'per_sample'``
        (batched O-matrix). Under ``compile='auto'`` an untraceable path is
        remembered and never re-attempted; under ``'on'`` it raises.
        """
        if compile_mode == "off" or path in self._jit_fallback:
            return None
        from repro.jit import StepCompiler, TapeDivergenceError, TraceError

        if self._compiler is None:
            self._compiler = StepCompiler(
                self.model,
                metrics=self.metrics,
                tracer=None if self.tracer is NULL_TRACER else self.tracer,
            )
        try:
            if path == "per_sample":
                return self._compiler.per_sample_plan(x)
            return self._compiler.plan_for(x)
        except (TraceError, TapeDivergenceError) as exc:
            if compile_mode == "on":
                raise
            self._jit_fallback[path] = str(exc)
            if self.metrics is not None:
                self.metrics.counter("jit.fallback").inc()
            return None

    # -- one optimisation step -------------------------------------------------------

    def step(
        self, batch_size: int | None = None, compile: str | None = None
    ) -> StepResult:
        """Sample, estimate energy and gradient, update parameters.

        ``compile`` overrides ``config.compile`` for this step
        (``'auto'``/``'on'``/``'off'``). When the compiled path runs, the
        forward and backward replays are wrapped in ``jit.replay`` spans
        (with a ``phase`` attribute naming the interpreted-phase
        equivalent) nested inside the usual phase spans.

        With a tracer attached, the step emits one ``step`` span wrapping
        the phase spans ``sample`` / ``local_energy`` / ``gradient`` /
        ``sr_solve`` / ``optimizer`` — the decomposition behind the
        paper's scaling tables (read it back with ``tools/trace.py``).
        """
        t0 = time.perf_counter()
        bsz = batch_size or self.config.batch_size
        cmode = compile if compile is not None else self.config.compile
        if cmode not in ("auto", "on", "off"):
            raise ValueError(f"unknown compile mode {cmode!r}")
        clock_before = {
            k: self.clock.totals.get(k, 0.0)
            for k in ("sample", "energy", "gradient", "update")
        }
        tracer = self.tracer
        with tracer.span("step", step=self.global_step, batch=bsz):
            with tracer.span("sample", batch=bsz), self.clock.measure("sample"):
                x = self.sampler.sample(self.model, bsz, self.rng)

            # Evaluate the amplitudes ONCE: the gradient path computes
            # log ψ(x) anyway (with a graph or alongside the O matrix), so
            # the energy step reuses it instead of its own forward pass.
            mode = self._gradient_mode()
            self.model.zero_grad()
            if mode == "autograd":
                with tracer.span("gradient", mode=mode), self.clock.measure("gradient"):
                    plan = self._plan(x, cmode, "autograd")
                    if plan is not None:
                        with tracer.span("jit.replay", phase="gradient",
                                         stage="forward", batch=bsz):
                            log_psi_x = plan.forward(x)
                    else:
                        log_psi = self.model.log_psi(x)
                        log_psi_x = log_psi.data
                with tracer.span("local_energy"), self.clock.measure("energy"):
                    local = local_energies(
                        self.model, self.hamiltonian, x, log_psi_x=log_psi_x
                    )
                    stats = self._combine_stats(local)
                with tracer.span("gradient", mode=mode), self.clock.measure("gradient"):
                    # Centre with the *global* mean and normalise by the
                    # *global* count so distributed gradients average to the
                    # exact big-batch estimator even with unequal per-rank
                    # batches (e.g. after an elastic shrink).
                    weights = 2.0 * (local - stats.mean) / stats.count
                    if plan is not None:
                        # Seeding the adjoint sweep with the weights is the
                        # surrogate loss ``(log_psi * weights).sum()`` by the
                        # chain rule — no surrogate graph is ever built.
                        with tracer.span("jit.replay", phase="gradient",
                                         stage="backward", batch=bsz):
                            grad = plan.gradient(weights).copy()
                    else:
                        (log_psi * weights).sum().backward(free_graph=True)
                        grad = self.model.flat_grad()
                    grad = self._allreduce(grad)
            else:
                with tracer.span("gradient", mode=mode), self.clock.measure("gradient"):
                    plan = self._plan(x, cmode, "per_sample")
                    if plan is not None:
                        with tracer.span("jit.replay", phase="gradient",
                                         stage="per_sample", batch=bsz):
                            lp, o = plan.per_sample(x)
                    else:
                        lp, o = self.model.log_psi_and_grads(x)
                with tracer.span("local_energy"), self.clock.measure("energy"):
                    local = local_energies(
                        self.model, self.hamiltonian, x, log_psi_x=lp
                    )
                    stats = self._combine_stats(local)
                with self.clock.measure("gradient"):
                    with tracer.span("gradient", mode=mode):
                        grad = self._combined_gradient(o, local, stats)
                    if self.sr is not None:
                        with tracer.span("sr_solve"):
                            grad = self._natural_gradient(o, grad)

            with tracer.span("optimizer"), self.clock.measure("update"):
                if self.config.max_grad_norm is not None:
                    norm = float(np.linalg.norm(grad))
                    if norm > self.config.max_grad_norm:
                        grad = grad * (self.config.max_grad_norm / norm)
                if np.all(np.isfinite(grad)):
                    self.model.set_flat_grad(grad)
                    self.optimizer.step()
                else:
                    # Divergence guard: a non-finite gradient (overflowing
                    # amplitude ratios, singular SR solve) would
                    # irreversibly poison the parameters. Skip the update;
                    # the step is still reported so callbacks see the
                    # divergence in grad_norm.
                    self.diverged_steps += 1
        self.global_step += 1

        acceptance = self.sampler.last_stats.acceptance_rate
        result = StepResult(
            step=self.global_step,
            stats=stats,
            grad_norm=float(np.linalg.norm(grad)),
            step_time=time.perf_counter() - t0,
            acceptance=acceptance,
            vqmc=self,
            phase_seconds={
                k: self.clock.totals.get(k, 0.0) - v
                for k, v in clock_before.items()
            },
        )
        return result

    # -- distributed reductions ------------------------------------------------------

    def _world_size(self) -> int:
        return self.comm.size if self.comm is not None else 1

    def _allreduce(self, arr: np.ndarray) -> np.ndarray:
        if self.comm is None or self.comm.size == 1:
            return arr
        return self.comm.allreduce(arr, op="sum")

    def _combine_stats(self, local: np.ndarray) -> EnergyStats:
        if self._world_size() == 1:
            return energy_statistics(local)
        moments = np.array([local.size, local.sum(), (local**2).sum()])
        total, s1, s2 = self.comm.allreduce(moments, op="sum")
        if total <= 0:
            # A server's cancelled/empty batched query can legitimately ask
            # for statistics over zero samples; dividing through would make
            # NaNs here and a ZeroDivisionError downstream.
            return EnergyStats.empty()
        mean = s1 / total
        var = max(s2 / total - mean**2, 0.0)
        std = float(np.sqrt(var))
        return EnergyStats(
            mean=float(mean),
            std=std,
            sem=std / np.sqrt(total),
            count=int(total),
        )

    def _combined_gradient(
        self, o: np.ndarray, local: np.ndarray, stats: EnergyStats
    ) -> np.ndarray:
        """Globally-centred ``∇L = 2⟨(l − L̄) O⟩`` across all ranks."""
        if self._world_size() == 1:
            return grad_from_per_sample(o, local)
        centred = local - stats.mean
        partial = 2.0 * (centred @ o)
        return self._allreduce(partial) / stats.count

    def _natural_gradient(self, o: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Apply SR. The engine is communicator-aware: in parallel runs it
        solves the identical global system on every rank, allreducing only
        d-vectors on the CG path (see :mod:`repro.optim.sr`)."""
        assert self.sr is not None
        return self.sr.natural_gradient(o, grad, comm=self.comm)

    # -- training loop -----------------------------------------------------------------

    def run(
        self,
        iterations: int,
        batch_size: int | None = None,
        callbacks: Sequence[Callback] = (),
    ) -> list[StepResult]:
        """Run ``iterations`` optimisation steps; returns all step results.

        ``on_run_end`` is delivered from the driver's teardown, so sinks
        like :class:`~repro.utils.runlog.RunLogger` and
        :class:`~repro.obs.ObsCallback` write their footer (and flush to
        disk) even when a step or callback raises mid-run. When the run is
        dying on an exception, callbacks that define ``on_crash(vqmc, exc)``
        (e.g. :class:`~repro.obs.flight.FlightRecorder`) are notified first,
        so black-box dumps happen before footers are written. Each teardown
        delivery is *isolated*: one raising callback can neither starve the
        remaining callbacks of their hooks nor mask the original training
        exception (see :class:`StepDriver`).

        ``run`` is a convenience façade over :class:`StepDriver`; callers
        that need to pause, checkpoint, cancel, or interleave work between
        steps (the ``repro.serve`` worker pool, the elastic supervisor's
        successor loops) should drive a :class:`StepDriver` — or the
        :meth:`steps` generator — directly.
        """
        driver = StepDriver(
            self, iterations, batch_size=batch_size, callbacks=callbacks
        )
        return driver.run()

    def steps(
        self,
        iterations: int,
        batch_size: int | None = None,
        callbacks: Sequence[Callback] = (),
    ):
        """Generator form of :meth:`run`: yields each :class:`StepResult`.

        Callback lifecycle matches :meth:`run` exactly (``on_run_begin``
        before the first step, isolated ``on_crash``/``on_run_end`` on
        exhaustion, error, *or* ``generator.close()``), so a consumer can
        abandon the loop at any yield point and sinks still flush.
        """
        driver = StepDriver(
            self, iterations, batch_size=batch_size, callbacks=callbacks
        )
        exc: BaseException | None = None
        try:
            while True:
                result = driver.step_once()
                if result is None:
                    break
                yield result
        except GeneratorExit:
            # generator.close() — an abandoned loop, not a crash: sinks
            # flush their footers but on_crash is not delivered.
            raise
        except BaseException as err:
            exc = err
            raise
        finally:
            driver.finish(exc)

    # -- evaluation ---------------------------------------------------------------------

    def evaluate(
        self, batch_size: int = 1024, rng: np.random.Generator | None = None
    ) -> EnergyStats:
        """Draw a fresh evaluation batch and report its energy statistics
        (the paper's test-time protocol, §5.1).

        Draws come from ``eval_rng`` — a seeded fork of the training
        stream, never the training stream itself — so interleaving
        evaluations (or server-side energy queries) with training leaves
        the training trajectory bit-exact. Pass an explicit ``rng`` to
        evaluate from a caller-owned stream instead.
        """
        gen = rng if rng is not None else self.eval_rng
        x = self.sampler.sample(self.model, batch_size, gen)
        local = local_energies(self.model, self.hamiltonian, x)
        return self._combine_stats(local)


def _deliver_teardown(
    callbacks: Sequence[Callback], vqmc: VQMC, exc: BaseException | None
) -> None:
    """Deliver ``on_crash`` (when dying on ``exc``) then ``on_run_end`` to
    every callback, isolating each delivery.

    A raising callback used to skip delivery to all remaining callbacks —
    the flight recorder never dumped, the RunLogger footer was lost — and
    could mask the original training exception. Now every callback gets its
    hooks; errors raised *by* callbacks are logged as warnings. When there
    is no original exception to propagate, the first callback error is
    re-raised after all deliveries (so a broken sink still fails loudly).
    """
    errors: list[tuple[object, str, Exception]] = []
    if exc is not None and not isinstance(exc, StopTraining):
        for cb in callbacks:
            on_crash = getattr(cb, "on_crash", None)
            if on_crash is None:
                continue
            try:
                on_crash(vqmc, exc)
            except Exception as cb_exc:  # noqa: BLE001 — isolation is the point
                errors.append((cb, "on_crash", cb_exc))
    for cb in callbacks:
        try:
            cb.on_run_end(vqmc)
        except Exception as cb_exc:  # noqa: BLE001
            errors.append((cb, "on_run_end", cb_exc))
    for cb, hook, cb_exc in errors:
        warnings.warn(
            f"callback {type(cb).__name__}.{hook} raised "
            f"{type(cb_exc).__name__}: {cb_exc} (delivery was isolated; "
            "remaining callbacks still ran)",
            RuntimeWarning,
            stacklevel=3,
        )
    if exc is None and errors:
        raise errors[0][2]


class StepDriver:
    """Re-entrant stepwise training loop: the engine under :meth:`VQMC.run`.

    A driver owns one run's worth of callback lifecycle but hands control
    back to the caller between steps, which is what long-lived consumers
    need: the ``repro.serve`` worker pool pauses, checkpoints, cancels and
    resumes jobs at step boundaries; tests single-step through training.

    Usage::

        driver = StepDriver(vqmc, iterations=100, callbacks=[history])
        with driver:                       # on_run_begin / teardown
            while not driver.done:
                if should_cancel():
                    driver.cancel()        # leaves state restorable
                    break
                driver.step_once()

    Contract:

    - :meth:`step_once` runs exactly one optimisation step and delivers
      ``on_step``; it returns ``None`` once the loop is exhausted,
      stopped by :class:`StopTraining`, or cancelled.
    - :meth:`finish` delivers ``on_crash`` (if dying on an exception) and
      ``on_run_end`` exactly once, each isolated per callback so one
      raising sink cannot starve the others or mask the original error.
    - The context manager and :meth:`run` wire the two together; driving
      manually, call ``finish(exc_or_None)`` from your own ``finally``.
    """

    def __init__(
        self,
        vqmc: VQMC,
        iterations: int,
        batch_size: int | None = None,
        callbacks: Sequence[Callback] = (),
    ):
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        self.vqmc = vqmc
        self.iterations = iterations
        self.batch_size = batch_size
        self.callbacks = tuple(callbacks)
        self.results: list[StepResult] = []
        self.stopped = False  #: a callback raised StopTraining
        self.cancelled = False  #: cancel() was called
        self._begun = False
        self._finished = False

    @property
    def steps_done(self) -> int:
        return len(self.results)

    @property
    def done(self) -> bool:
        """True when no further :meth:`step_once` call will run a step."""
        return (
            self._finished
            or self.stopped
            or self.cancelled
            or self.steps_done >= self.iterations
        )

    def begin(self) -> None:
        """Deliver ``on_run_begin`` (idempotent; auto-called by step_once)."""
        if self._begun:
            return
        self._begun = True
        for cb in self.callbacks:
            cb.on_run_begin(self.vqmc)

    def step_once(self) -> StepResult | None:
        """Run one step and deliver ``on_step``; ``None`` when done.

        :class:`StopTraining` raised by a callback marks the driver
        ``stopped`` (matching :meth:`VQMC.run`'s early-exit semantics);
        any other exception propagates — the caller's ``finally`` (or the
        context manager) routes it into :meth:`finish`.
        """
        if self._finished:
            raise RuntimeError("StepDriver.finish() already ran")
        self.begin()
        if self.done:
            return None
        try:
            result = self.vqmc.step(self.batch_size)
            self.results.append(result)
            for cb in self.callbacks:
                cb.on_step(result.step, result)
        except StopTraining:
            self.stopped = True
            return None
        return result

    def cancel(self) -> None:
        """Mark the loop done; the trainer stays restorable (checkpoint it
        before or after — no step is in flight between step_once calls)."""
        self.cancelled = True

    def finish(self, exc: BaseException | None = None) -> None:
        """Deliver teardown hooks exactly once (see :func:`_deliver_teardown`)."""
        if self._finished:
            return
        self._finished = True
        self.begin()  # a zero-step run still brackets its callbacks
        _deliver_teardown(self.callbacks, self.vqmc, exc)

    def run(self) -> list[StepResult]:
        """Drive to completion with :meth:`VQMC.run` semantics."""
        self.begin()
        try:
            while not self.done:
                self.step_once()
        except BaseException as exc:
            self.finish(exc)
            raise
        self.finish(None)
        return self.results

    def __enter__(self) -> "StepDriver":
        self.begin()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finish(exc if not isinstance(exc, StopTraining) else None)
        return isinstance(exc, StopTraining)
