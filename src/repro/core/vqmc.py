"""The VQMC driver: alternating sampling and (natural-)gradient descent.

Single-process use::

    model = MADE(n=20, rng=rng)
    ham = TransverseFieldIsing.random(20, seed=0)
    vqmc = VQMC(model, ham, AutoregressiveSampler(), Adam(model.parameters()))
    history = History()
    vqmc.run(300, batch_size=1024, callbacks=[history])

Data-parallel use (the paper's §4 scheme): pass a
:class:`repro.distributed.Communicator`. Each rank draws its own mini-batch
``mbs`` (effective batch ``bs = L × mbs``), computes local statistics and
gradients, and the driver allreduces them so every rank applies the *same*
update — keeping the replicas in lock-step without ever exchanging samples.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.callbacks import Callback, StopTraining
from repro.core.energy import (
    EnergyStats,
    energy_statistics,
    grad_from_per_sample,
    grad_via_autograd,
    local_energies,
)
from repro.hamiltonians.base import Hamiltonian
from repro.models.base import WaveFunction
from repro.obs.metrics import Metrics
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.optim.base import Optimizer
from repro.optim.sr import StochasticReconfiguration
from repro.samplers.base import Sampler
from repro.utils.rng import as_generator
from repro.utils.timer import WallClock

__all__ = ["VQMC", "VQMCConfig", "StepResult"]


@dataclass
class VQMCConfig:
    """Driver configuration.

    Attributes
    ----------
    batch_size:
        Samples per step *per rank* (the paper's ``mbs``; with L ranks the
        effective batch is ``L × batch_size``).
    gradient_mode:
        ``'autograd'`` (tape), ``'per_sample'`` (closed-form O matrix), or
        ``'auto'`` — per-sample whenever SR is active (it needs O anyway),
        autograd otherwise.
    compile:
        ``'auto'`` (default) traces the gradient hot path once per
        (shape, dtype, parameter-structure) guard key and replays it as a
        fused :class:`repro.jit.CompiledPlan`, silently falling back to the
        interpreter for models the tracer cannot handle; ``'on'`` makes an
        untraceable step an error; ``'off'`` always interprets.
    max_grad_norm:
        Optional global-norm gradient clipping (applied after SR). The
        paper clips nothing; this is the standard guard for the unstable
        RBM+MCMC regimes Table 2 exposes.
    """

    batch_size: int = 1024
    gradient_mode: str = "auto"
    compile: str = "auto"
    max_grad_norm: float | None = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.gradient_mode not in ("auto", "autograd", "per_sample"):
            raise ValueError(f"unknown gradient_mode {self.gradient_mode!r}")
        if self.compile not in ("auto", "on", "off"):
            raise ValueError(f"unknown compile mode {self.compile!r}")
        if self.max_grad_norm is not None and self.max_grad_norm <= 0:
            raise ValueError(f"max_grad_norm must be > 0, got {self.max_grad_norm}")


@dataclass
class StepResult:
    """Outcome of one optimisation step (global statistics in parallel runs)."""

    step: int
    stats: EnergyStats
    grad_norm: float
    step_time: float
    acceptance: float
    vqmc: "VQMC" = field(repr=False, default=None)
    #: this step's wall seconds per phase (``sample`` / ``energy`` /
    #: ``gradient`` / ``update``) — *local* to this rank, unlike ``stats``.
    #: The elastic supervisor's straggler rebalancing feeds on it.
    phase_seconds: dict = field(repr=False, default_factory=dict)


class VQMC:
    """Variational quantum Monte Carlo trainer.

    Parameters
    ----------
    model, hamiltonian, sampler, optimizer:
        The four interchangeable components; any model/sampler pairing that
        type-checks is allowed (MADE+AUTO, RBM+MCMC, and also MADE+MCMC for
        ablations).
    sr:
        Optional :class:`StochasticReconfiguration` preconditioner. Requires
        ``model.has_per_sample_grads``.
    comm:
        Optional communicator for data parallelism. When given, parameters
        are broadcast from rank 0 at construction and gradients/statistics
        are allreduced each step.
    seed:
        Seed or generator for the sampling stream. In parallel runs each
        rank must pass a *distinct* stream (see
        :func:`repro.utils.rng.spawn_generators`); the driver checks ranks
        do not accidentally share a seed by comparing first draws.
    tracer:
        Optional :class:`repro.obs.Tracer`. When given, every step emits
        nested phase spans (``step`` > ``sample`` / ``local_energy`` /
        ``gradient`` / ``sr_solve`` / ``optimizer``) and the tracer is
        attached to ``comm`` (collective spans), to the sampler
        (fast-path spans) and to ``sr`` (solve sub-spans) so one per-rank
        timeline covers the whole step.
        Default: the shared disabled tracer — near-zero overhead.
    metrics:
        Optional :class:`repro.obs.Metrics` registry. Currently forwarded
        to ``sr`` (per-solve ``sr.*`` counters: CG iterations, collective
        bytes, incomplete solves); snapshot it after a run and merge
        across ranks with :func:`repro.obs.merge_snapshots`.
    """

    def __init__(
        self,
        model: WaveFunction,
        hamiltonian: Hamiltonian,
        sampler: Sampler,
        optimizer: Optimizer,
        sr: StochasticReconfiguration | None = None,
        comm=None,
        seed: int | None | np.random.Generator = None,
        config: VQMCConfig | None = None,
        tracer: Tracer | None = None,
        metrics: Metrics | None = None,
    ):
        if model.n != hamiltonian.n:
            raise ValueError(
                f"model n={model.n} does not match Hamiltonian n={hamiltonian.n}"
            )
        if sr is not None and not model.has_per_sample_grads:
            raise TypeError(
                f"SR requires per-sample gradients; {type(model).__name__} "
                "does not provide them"
            )
        self.model = model
        self.hamiltonian = hamiltonian
        self.sampler = sampler
        self.optimizer = optimizer
        self.sr = sr
        self.comm = comm
        self.rng = as_generator(seed)
        self.config = config or VQMCConfig()
        self.global_step = 0
        self.diverged_steps = 0
        #: per-phase wall-clock accounting (sample / energy / gradient /
        #: update), cumulated over all steps — read via
        #: ``vqmc.clock.snapshot()`` / ``vqmc.clock.summary()``.
        self.clock = WallClock()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        #: lazily created :class:`repro.jit.StepCompiler`; one per driver.
        self._compiler = None
        #: sticky fallback reasons keyed by gradient path ('autograd' /
        #: 'per_sample'): once a path proves untraceable for this model the
        #: driver stops re-attempting compilation (compile='auto' only).
        self._jit_fallback: dict[str, str] = {}
        if tracer is not None:
            # One timeline per rank: collectives, sampler fast paths and
            # SR solve sub-spans nest inside the step's phase spans.
            if comm is not None and hasattr(comm, "attach_tracer"):
                comm.attach_tracer(tracer)
            if hasattr(sampler, "tracer"):
                sampler.tracer = tracer
            if sr is not None:
                sr.attach_tracer(tracer)
        if sr is not None and metrics is not None:
            sr.metrics = metrics

        if comm is not None and comm.size > 1:
            # All replicas must start from identical parameters.
            flat = self.model.flat_parameters()
            flat = comm.broadcast(flat, root=0)
            self.model.set_flat_parameters(flat)

    # -- mode resolution ---------------------------------------------------------

    def _gradient_mode(self) -> str:
        mode = self.config.gradient_mode
        if mode == "auto":
            mode = "per_sample" if self.sr is not None else "autograd"
        if mode == "per_sample" and not self.model.has_per_sample_grads:
            raise TypeError(
                f"{type(self.model).__name__} has no per-sample gradient path"
            )
        return mode

    # -- step compilation --------------------------------------------------------

    def _plan(self, x: np.ndarray, compile_mode: str, path: str):
        """Return a :class:`repro.jit.CompiledPlan` for batch ``x`` or
        ``None`` to run the interpreter.

        ``path`` is ``'autograd'`` (scalar adjoint sweep) or ``'per_sample'``
        (batched O-matrix). Under ``compile='auto'`` an untraceable path is
        remembered and never re-attempted; under ``'on'`` it raises.
        """
        if compile_mode == "off" or path in self._jit_fallback:
            return None
        from repro.jit import StepCompiler, TapeDivergenceError, TraceError

        if self._compiler is None:
            self._compiler = StepCompiler(
                self.model,
                metrics=self.metrics,
                tracer=None if self.tracer is NULL_TRACER else self.tracer,
            )
        try:
            if path == "per_sample":
                return self._compiler.per_sample_plan(x)
            return self._compiler.plan_for(x)
        except (TraceError, TapeDivergenceError) as exc:
            if compile_mode == "on":
                raise
            self._jit_fallback[path] = str(exc)
            if self.metrics is not None:
                self.metrics.counter("jit.fallback").inc()
            return None

    # -- one optimisation step -------------------------------------------------------

    def step(
        self, batch_size: int | None = None, compile: str | None = None
    ) -> StepResult:
        """Sample, estimate energy and gradient, update parameters.

        ``compile`` overrides ``config.compile`` for this step
        (``'auto'``/``'on'``/``'off'``). When the compiled path runs, the
        forward and backward replays are wrapped in ``jit.replay`` spans
        (with a ``phase`` attribute naming the interpreted-phase
        equivalent) nested inside the usual phase spans.

        With a tracer attached, the step emits one ``step`` span wrapping
        the phase spans ``sample`` / ``local_energy`` / ``gradient`` /
        ``sr_solve`` / ``optimizer`` — the decomposition behind the
        paper's scaling tables (read it back with ``tools/trace.py``).
        """
        t0 = time.perf_counter()
        bsz = batch_size or self.config.batch_size
        cmode = compile if compile is not None else self.config.compile
        if cmode not in ("auto", "on", "off"):
            raise ValueError(f"unknown compile mode {cmode!r}")
        clock_before = {
            k: self.clock.totals.get(k, 0.0)
            for k in ("sample", "energy", "gradient", "update")
        }
        tracer = self.tracer
        with tracer.span("step", step=self.global_step, batch=bsz):
            with tracer.span("sample", batch=bsz), self.clock.measure("sample"):
                x = self.sampler.sample(self.model, bsz, self.rng)

            # Evaluate the amplitudes ONCE: the gradient path computes
            # log ψ(x) anyway (with a graph or alongside the O matrix), so
            # the energy step reuses it instead of its own forward pass.
            mode = self._gradient_mode()
            self.model.zero_grad()
            if mode == "autograd":
                with tracer.span("gradient", mode=mode), self.clock.measure("gradient"):
                    plan = self._plan(x, cmode, "autograd")
                    if plan is not None:
                        with tracer.span("jit.replay", phase="gradient",
                                         stage="forward", batch=bsz):
                            log_psi_x = plan.forward(x)
                    else:
                        log_psi = self.model.log_psi(x)
                        log_psi_x = log_psi.data
                with tracer.span("local_energy"), self.clock.measure("energy"):
                    local = local_energies(
                        self.model, self.hamiltonian, x, log_psi_x=log_psi_x
                    )
                    stats = self._combine_stats(local)
                with tracer.span("gradient", mode=mode), self.clock.measure("gradient"):
                    # Centre with the *global* mean and normalise by the
                    # *global* count so distributed gradients average to the
                    # exact big-batch estimator even with unequal per-rank
                    # batches (e.g. after an elastic shrink).
                    weights = 2.0 * (local - stats.mean) / stats.count
                    if plan is not None:
                        # Seeding the adjoint sweep with the weights is the
                        # surrogate loss ``(log_psi * weights).sum()`` by the
                        # chain rule — no surrogate graph is ever built.
                        with tracer.span("jit.replay", phase="gradient",
                                         stage="backward", batch=bsz):
                            grad = plan.gradient(weights).copy()
                    else:
                        (log_psi * weights).sum().backward(free_graph=True)
                        grad = self.model.flat_grad()
                    grad = self._allreduce(grad)
            else:
                with tracer.span("gradient", mode=mode), self.clock.measure("gradient"):
                    plan = self._plan(x, cmode, "per_sample")
                    if plan is not None:
                        with tracer.span("jit.replay", phase="gradient",
                                         stage="per_sample", batch=bsz):
                            lp, o = plan.per_sample(x)
                    else:
                        lp, o = self.model.log_psi_and_grads(x)
                with tracer.span("local_energy"), self.clock.measure("energy"):
                    local = local_energies(
                        self.model, self.hamiltonian, x, log_psi_x=lp
                    )
                    stats = self._combine_stats(local)
                with self.clock.measure("gradient"):
                    with tracer.span("gradient", mode=mode):
                        grad = self._combined_gradient(o, local, stats)
                    if self.sr is not None:
                        with tracer.span("sr_solve"):
                            grad = self._natural_gradient(o, grad)

            with tracer.span("optimizer"), self.clock.measure("update"):
                if self.config.max_grad_norm is not None:
                    norm = float(np.linalg.norm(grad))
                    if norm > self.config.max_grad_norm:
                        grad = grad * (self.config.max_grad_norm / norm)
                if np.all(np.isfinite(grad)):
                    self.model.set_flat_grad(grad)
                    self.optimizer.step()
                else:
                    # Divergence guard: a non-finite gradient (overflowing
                    # amplitude ratios, singular SR solve) would
                    # irreversibly poison the parameters. Skip the update;
                    # the step is still reported so callbacks see the
                    # divergence in grad_norm.
                    self.diverged_steps += 1
        self.global_step += 1

        acceptance = self.sampler.last_stats.acceptance_rate
        result = StepResult(
            step=self.global_step,
            stats=stats,
            grad_norm=float(np.linalg.norm(grad)),
            step_time=time.perf_counter() - t0,
            acceptance=acceptance,
            vqmc=self,
            phase_seconds={
                k: self.clock.totals.get(k, 0.0) - v
                for k, v in clock_before.items()
            },
        )
        return result

    # -- distributed reductions ------------------------------------------------------

    def _world_size(self) -> int:
        return self.comm.size if self.comm is not None else 1

    def _allreduce(self, arr: np.ndarray) -> np.ndarray:
        if self.comm is None or self.comm.size == 1:
            return arr
        return self.comm.allreduce(arr, op="sum")

    def _combine_stats(self, local: np.ndarray) -> EnergyStats:
        if self._world_size() == 1:
            return energy_statistics(local)
        moments = np.array([local.size, local.sum(), (local**2).sum()])
        total, s1, s2 = self.comm.allreduce(moments, op="sum")
        mean = s1 / total
        var = max(s2 / total - mean**2, 0.0)
        std = float(np.sqrt(var))
        return EnergyStats(
            mean=float(mean),
            std=std,
            sem=std / np.sqrt(total),
            count=int(total),
        )

    def _combined_gradient(
        self, o: np.ndarray, local: np.ndarray, stats: EnergyStats
    ) -> np.ndarray:
        """Globally-centred ``∇L = 2⟨(l − L̄) O⟩`` across all ranks."""
        if self._world_size() == 1:
            return grad_from_per_sample(o, local)
        centred = local - stats.mean
        partial = 2.0 * (centred @ o)
        return self._allreduce(partial) / stats.count

    def _natural_gradient(self, o: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Apply SR. The engine is communicator-aware: in parallel runs it
        solves the identical global system on every rank, allreducing only
        d-vectors on the CG path (see :mod:`repro.optim.sr`)."""
        assert self.sr is not None
        return self.sr.natural_gradient(o, grad, comm=self.comm)

    # -- training loop -----------------------------------------------------------------

    def run(
        self,
        iterations: int,
        batch_size: int | None = None,
        callbacks: Sequence[Callback] = (),
    ) -> list[StepResult]:
        """Run ``iterations`` optimisation steps; returns all step results.

        ``on_run_end`` is delivered from a ``finally`` block, so sinks like
        :class:`~repro.utils.runlog.RunLogger` and
        :class:`~repro.obs.ObsCallback` write their footer (and flush to
        disk) even when a step or callback raises mid-run. When the run is
        dying on an exception, callbacks that define ``on_crash(vqmc, exc)``
        (e.g. :class:`~repro.obs.flight.FlightRecorder`) are notified first,
        so black-box dumps happen before footers are written.
        """
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        for cb in callbacks:
            cb.on_run_begin(self)
        results: list[StepResult] = []
        try:
            for _ in range(iterations):
                result = self.step(batch_size)
                results.append(result)
                for cb in callbacks:
                    cb.on_step(result.step, result)
        except StopTraining:
            pass
        finally:
            exc = sys.exc_info()[1]
            if exc is not None and not isinstance(exc, StopTraining):
                for cb in callbacks:
                    on_crash = getattr(cb, "on_crash", None)
                    if on_crash is not None:
                        on_crash(self, exc)
            for cb in callbacks:
                cb.on_run_end(self)
        return results

    # -- evaluation ---------------------------------------------------------------------

    def evaluate(self, batch_size: int = 1024) -> EnergyStats:
        """Draw a fresh evaluation batch and report its energy statistics
        (the paper's test-time protocol, §5.1)."""
        x = self.sampler.sample(self.model, batch_size, self.rng)
        local = local_energies(self.model, self.hamiltonian, x)
        return self._combine_stats(local)
