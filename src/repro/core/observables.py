"""Physical observables estimated from configuration samples.

Beyond the energy, VQMC users routinely measure diagonal observables
(functions of Z operators, exact on samples) and model-quality metrics
(fidelity against an exact state at small n). All estimators take an
``(B, n)`` sample batch; diagonal observables are unbiased Monte-Carlo
averages under πθ.
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.base import bits_to_index, bits_to_spins
from repro.models.base import WaveFunction
from repro.tensor.tensor import no_grad

__all__ = [
    "magnetization",
    "site_magnetization",
    "spin_correlations",
    "structure_factor",
    "fidelity",
    "kl_divergence",
    "sample_entropy_estimate",
    "exact_model_energy",
]


def exact_model_energy(model: WaveFunction, hamiltonian) -> float:
    """The *population* Rayleigh quotient ``⟨ψθ,Hψθ⟩/⟨ψθ,ψθ⟩`` by full
    enumeration (n ≤ 20) — the noise-free value every Monte-Carlo energy
    estimate converges to. The standard tool for separating sampling noise
    from optimisation error in small-scale studies."""
    from repro.core.energy import local_energies

    n = model.n
    if n > 20:
        raise ValueError(f"exact model energy infeasible for n={n}")
    states = (
        (np.arange(2**n)[:, None] >> np.arange(n - 1, -1, -1)) & 1
    ).astype(np.float64)
    with no_grad():
        log_psi = model.log_psi(states).data
    log_p = 2.0 * log_psi
    log_p -= log_p.max()
    probs = np.exp(log_p)
    probs /= probs.sum()
    local = local_energies(model, hamiltonian, states)
    return float(probs @ local)


def magnetization(x: np.ndarray) -> float:
    """⟨|Σ_i Z_i|⟩ / n — the absolute magnetisation per site."""
    z = bits_to_spins(np.asarray(x))
    return float(np.abs(z.sum(axis=1)).mean() / z.shape[1])


def site_magnetization(x: np.ndarray) -> np.ndarray:
    """⟨Z_i⟩ per site — shape (n,)."""
    return bits_to_spins(np.asarray(x)).mean(axis=0)


def spin_correlations(x: np.ndarray) -> np.ndarray:
    """Connected correlations ``⟨Z_i Z_j⟩ − ⟨Z_i⟩⟨Z_j⟩`` — shape (n, n)."""
    z = bits_to_spins(np.asarray(x))
    mean = z.mean(axis=0)
    return (z.T @ z) / z.shape[0] - np.outer(mean, mean)


def structure_factor(x: np.ndarray, momentum: float = 0.0) -> float:
    """``S(q) = (1/n) Σ_ij e^{iq(i-j)} ⟨Z_i Z_j⟩`` (real part).

    ``q = 0`` gives the ferromagnetic structure factor, ``q = π`` the
    antiferromagnetic one (1-D site indexing).
    """
    z = bits_to_spins(np.asarray(x))
    n = z.shape[1]
    phases = np.exp(1j * momentum * np.arange(n))
    amplitude = z @ phases  # (B,)
    return float(np.mean(np.abs(amplitude) ** 2).real / n)


def fidelity(model: WaveFunction, exact_vector: np.ndarray) -> float:
    """``|⟨ψ_exact | ψθ⟩|²`` with both states normalised (n ≤ 20).

    ``exact_vector`` is the ground eigenvector in the computational basis
    (e.g. from :func:`repro.exact.ground_state`); the model's amplitudes
    are evaluated by enumeration.
    """
    n = model.n
    if n > 20:
        raise ValueError(f"fidelity by enumeration infeasible for n={n}")
    dim = 2**n
    states = (
        (np.arange(dim)[:, None] >> np.arange(n - 1, -1, -1)) & 1
    ).astype(np.float64)
    with no_grad():
        log_psi = model.log_psi(states).data
    log_psi = log_psi - log_psi.max()
    psi = np.exp(log_psi)
    psi = psi / np.linalg.norm(psi)
    exact = np.asarray(exact_vector, dtype=np.float64)
    exact = exact / np.linalg.norm(exact)
    return float(np.abs(exact @ psi) ** 2)


def kl_divergence(model: WaveFunction, target_probs: np.ndarray) -> float:
    """``KL(target ‖ πθ)`` by enumeration (n ≤ 20); target is a probability
    vector over the 2^n computational basis states."""
    n = model.n
    target = np.asarray(target_probs, dtype=np.float64)
    if target.shape != (2**n,):
        raise ValueError(f"target must have shape ({2**n},), got {target.shape}")
    states = (
        (np.arange(2**n)[:, None] >> np.arange(n - 1, -1, -1)) & 1
    ).astype(np.float64)
    with no_grad():
        log_q = model.log_prob(states).data
    support = target > 0
    return float(np.sum(target[support] * (np.log(target[support]) - log_q[support])))


def sample_entropy_estimate(model: WaveFunction, x: np.ndarray) -> float:
    """Monte-Carlo estimate of the Shannon entropy ``H(πθ) = −E[log πθ]``.

    Unbiased for normalised models; measures how concentrated the learned
    distribution is (→ 0 when the model collapses onto one configuration,
    a useful convergence/diversity diagnostic for combinatorial problems).
    """
    if not model.is_normalized:
        raise TypeError("entropy estimate requires a normalised model")
    with no_grad():
        log_p = model.log_prob(np.asarray(x, dtype=np.float64)).data
    return float(-log_p.mean())
