"""Riemannian trust-region method with truncated-CG subproblem solver.

The algorithm of Absil, Baker & Gallivan (2007) — the method behind
Manopt's ``trustregions`` solver that the paper uses for its
Burer–Monteiro Max-Cut baseline:

1. At each outer iteration, approximately minimise the quadratic model
   ``m(ξ) = f(x) + ⟨g, ξ⟩ + ½⟨H ξ, ξ⟩`` inside a trust region ‖ξ‖ ≤ Δ
   with the Steihaug–Toint truncated conjugate gradient (tCG): stop at the
   boundary, on negative curvature, or on the superlinear κ/θ residual rule.
2. Accept/reject the step by the actual-vs-predicted reduction ratio ρ and
   adapt Δ.
"""

from __future__ import annotations

import numpy as np

from repro.manifolds.problem import ManifoldProblem
from repro.manifolds.result import OptimizeResult

__all__ = ["RiemannianTrustRegion"]


class RiemannianTrustRegion:
    def __init__(
        self,
        max_iter: int = 200,
        grad_tol: float = 1e-6,
        delta_bar: float | None = None,
        delta0: float | None = None,
        rho_prime: float = 0.1,
        kappa: float = 0.1,
        theta: float = 1.0,
        max_inner: int | None = None,
    ):
        self.max_iter = max_iter
        self.grad_tol = grad_tol
        self.delta_bar = delta_bar
        self.delta0 = delta0
        self.rho_prime = rho_prime
        self.kappa = kappa
        self.theta = theta
        self.max_inner = max_inner

    # -- truncated CG (Steihaug–Toint) ------------------------------------------------

    def _truncated_cg(
        self, problem: ManifoldProblem, x: np.ndarray, grad: np.ndarray, delta: float
    ) -> tuple[np.ndarray, str]:
        mani = problem.manifold
        eta = np.zeros_like(grad)
        r = grad.copy()
        d = -r
        r_r = mani.inner(r, r)
        norm_r0 = np.sqrt(r_r)
        max_inner = self.max_inner or max(20, getattr(mani, "dim", grad.size))

        for _ in range(max_inner):
            hd = problem.rhess(x, d)
            d_hd = mani.inner(d, hd)
            if d_hd <= 0:
                # Negative curvature: go to the boundary along d.
                tau = _to_boundary(mani, eta, d, delta)
                return eta + tau * d, "negative curvature"
            alpha = r_r / d_hd
            eta_next = eta + alpha * d
            if mani.norm(eta_next) >= delta:
                tau = _to_boundary(mani, eta, d, delta)
                return eta + tau * d, "exceeded trust region"
            eta = eta_next
            r = r + alpha * hd
            r_r_next = mani.inner(r, r)
            if np.sqrt(r_r_next) <= norm_r0 * min(
                self.kappa, norm_r0**self.theta
            ):
                return eta, "residual tolerance"
            beta = r_r_next / r_r
            d = -r + beta * d
            r_r = r_r_next
        return eta, "max inner iterations"

    # -- outer loop --------------------------------------------------------------------

    def solve(
        self,
        problem: ManifoldProblem,
        x0: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> OptimizeResult:
        mani = problem.manifold
        if x0 is None:
            if rng is None:
                raise ValueError("either x0 or rng must be given")
            x0 = mani.random_point(rng)
        x = np.array(x0, copy=True)
        cost = problem.cost(x)

        # Default trust-region radii scale with the manifold "size".
        delta_bar = self.delta_bar or np.sqrt(getattr(mani, "dim", x.size))
        delta = self.delta0 or delta_bar / 8.0

        for it in range(1, self.max_iter + 1):
            grad = problem.rgrad(x)
            gnorm = mani.norm(grad)
            if gnorm <= self.grad_tol:
                return OptimizeResult(x, cost, gnorm, it - 1, True, "gradient tolerance")

            eta, stop_reason = self._truncated_cg(problem, x, grad, delta)
            candidate = mani.retract(x, eta)
            new_cost = problem.cost(candidate)
            model_decrease = -(
                mani.inner(grad, eta) + 0.5 * mani.inner(problem.rhess(x, eta), eta)
            )
            actual_decrease = cost - new_cost
            # Regularised rho (Manopt's guard against 0/0 noise).
            reg = 1e-12 * max(1.0, abs(cost))
            rho = (actual_decrease + reg) / (model_decrease + reg)

            if rho < 0.25:
                delta *= 0.25
            elif rho > 0.75 and stop_reason in ("exceeded trust region", "negative curvature"):
                delta = min(2.0 * delta, delta_bar)
            if rho > self.rho_prime and actual_decrease > -reg:
                x, cost = candidate, new_cost
            if delta < 1e-14:
                return OptimizeResult(
                    x, cost, gnorm, it, False, "trust region collapsed"
                )

        grad = problem.rgrad(x)
        return OptimizeResult(
            x, cost, mani.norm(grad), self.max_iter, False, "max iterations"
        )


def _to_boundary(mani, eta: np.ndarray, d: np.ndarray, delta: float) -> float:
    """Positive τ with ‖η + τ d‖ = Δ (quadratic formula)."""
    a = mani.inner(d, d)
    b = 2.0 * mani.inner(eta, d)
    c = mani.inner(eta, eta) - delta**2
    disc = max(b * b - 4 * a * c, 0.0)
    return (-b + np.sqrt(disc)) / (2 * a)
