"""Riemannian optimisation substrate (a small Manopt equivalent).

The paper's Burer–Monteiro baseline solves the Max-Cut SDP via the
"Riemannian Trust-Region method" on the manifold of unit-norm-column
matrices (the *oblique* manifold). This subpackage provides that manifold
plus three solvers:

- :class:`RiemannianGradientDescent` — Armijo backtracking line search.
- :class:`RiemannianConjugateGradient` — Polak–Ribière+ with restarts.
- :class:`RiemannianTrustRegion` — Steihaug–Toint truncated-CG subproblem
  solver (the Manopt/Absil-Baker-Gallivan algorithm the paper cites).
"""

from repro.manifolds.manifold import ObliqueManifold, SphereManifold
from repro.manifolds.problem import ManifoldProblem
from repro.manifolds.gradient_descent import RiemannianGradientDescent
from repro.manifolds.conjugate_gradient import RiemannianConjugateGradient
from repro.manifolds.trust_region import RiemannianTrustRegion
from repro.manifolds.result import OptimizeResult

__all__ = [
    "ObliqueManifold",
    "SphereManifold",
    "ManifoldProblem",
    "RiemannianGradientDescent",
    "RiemannianConjugateGradient",
    "RiemannianTrustRegion",
    "OptimizeResult",
]
