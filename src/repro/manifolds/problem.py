"""Problem container binding a manifold to cost/gradient/Hessian callables."""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["ManifoldProblem"]


class ManifoldProblem:
    """An optimisation problem ``min f(V)`` over a manifold.

    Parameters
    ----------
    manifold:
        A manifold object (:class:`repro.manifolds.ObliqueManifold` etc.).
    cost:
        ``V -> float``.
    egrad:
        Euclidean gradient ``V -> array``; converted to the Riemannian
        gradient internally.
    ehess:
        Optional Euclidean Hessian-vector product ``(V, ξ) -> array``. If
        absent, trust-region solvers fall back to a finite-difference
        approximation of the Riemannian Hessian.
    """

    def __init__(
        self,
        manifold,
        cost: Callable[[np.ndarray], float],
        egrad: Callable[[np.ndarray], np.ndarray],
        ehess: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    ):
        self.manifold = manifold
        self._cost = cost
        self._egrad = egrad
        self._ehess = ehess

    def cost(self, v: np.ndarray) -> float:
        return float(self._cost(v))

    def rgrad(self, v: np.ndarray) -> np.ndarray:
        return self.manifold.egrad_to_rgrad(v, self._egrad(v))

    def rhess(self, v: np.ndarray, xi: np.ndarray) -> np.ndarray:
        if self._ehess is not None:
            return self.manifold.ehess_to_rhess(v, self._egrad(v), self._ehess(v, xi), xi)
        # Finite-difference Riemannian Hessian approximation:
        # (grad f(R_v(h ξ)) − grad f(v)) / h, projected back at v.
        h = 1e-6 / max(self.manifold.norm(xi), 1e-12)
        v_plus = self.manifold.retract(v, h * xi)
        g_plus = self.manifold.proj(v, self.rgrad(v_plus))
        return (g_plus - self.rgrad(v)) / h

    def check_gradient(
        self, v: np.ndarray, rng: np.random.Generator, h: float = 1e-7
    ) -> float:
        """Directional-derivative check; returns max relative error over a
        few random tangents (used by the tests)."""
        worst = 0.0
        for _ in range(3):
            xi = self.manifold.random_tangent(v, rng)
            num = (self.cost(self.manifold.retract(v, h * xi)) -
                   self.cost(self.manifold.retract(v, -h * xi))) / (2 * h)
            ana = self.manifold.inner(self.rgrad(v), xi)
            scale = max(abs(num), abs(ana), 1e-10)
            worst = max(worst, abs(num - ana) / scale)
        return worst
