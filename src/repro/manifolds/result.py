"""Shared result record for the Riemannian solvers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OptimizeResult"]


@dataclass
class OptimizeResult:
    point: np.ndarray
    cost: float
    grad_norm: float
    iterations: int
    converged: bool
    message: str = ""

    def __str__(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return (
            f"OptimizeResult({status} in {self.iterations} iters, "
            f"cost={self.cost:.6e}, |grad|={self.grad_norm:.2e}; {self.message})"
        )
