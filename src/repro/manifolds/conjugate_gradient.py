"""Riemannian nonlinear conjugate gradient (Polak–Ribière+)."""

from __future__ import annotations

import numpy as np

from repro.manifolds.problem import ManifoldProblem
from repro.manifolds.result import OptimizeResult

__all__ = ["RiemannianConjugateGradient"]


class RiemannianConjugateGradient:
    """PR+ conjugate gradient with projection-based vector transport.

    The previous search direction is transported to the new point by tangent
    projection (the standard choice for embedded manifolds with projection
    retraction); β is Polak–Ribière clipped at zero, which guarantees the
    direction resets to steepest descent when conjugacy degrades.
    """

    def __init__(
        self,
        max_iter: int = 500,
        grad_tol: float = 1e-6,
        armijo_c: float = 1e-4,
        backtrack: float = 0.5,
        max_backtracks: int = 40,
        initial_step: float = 1.0,
    ):
        self.max_iter = max_iter
        self.grad_tol = grad_tol
        self.armijo_c = armijo_c
        self.backtrack = backtrack
        self.max_backtracks = max_backtracks
        self.initial_step = initial_step

    def solve(
        self,
        problem: ManifoldProblem,
        x0: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> OptimizeResult:
        mani = problem.manifold
        if x0 is None:
            if rng is None:
                raise ValueError("either x0 or rng must be given")
            x0 = mani.random_point(rng)
        x = np.array(x0, copy=True)
        cost = problem.cost(x)
        grad = problem.rgrad(x)
        direction = -grad
        step = self.initial_step

        for it in range(1, self.max_iter + 1):
            gnorm = mani.norm(grad)
            if gnorm <= self.grad_tol:
                return OptimizeResult(x, cost, gnorm, it - 1, True, "gradient tolerance")

            slope = mani.inner(grad, direction)
            if slope >= 0:  # not a descent direction: reset to steepest descent
                direction = -grad
                slope = -(gnorm**2)

            accepted = False
            trial = step
            for _ in range(self.max_backtracks):
                candidate = mani.retract(x, trial * direction)
                new_cost = problem.cost(candidate)
                if new_cost <= cost + self.armijo_c * trial * slope:
                    accepted = True
                    break
                trial *= self.backtrack
            if not accepted:
                return OptimizeResult(
                    x, cost, gnorm, it, False, "line search failed (stationary?)"
                )

            new_grad = problem.rgrad(candidate)
            # Transport old grad and direction to the new tangent space.
            grad_t = mani.proj(candidate, grad)
            dir_t = mani.proj(candidate, direction)
            beta = max(
                0.0,
                mani.inner(new_grad, new_grad - grad_t)
                / max(mani.inner(grad, grad), 1e-300),
            )
            direction = -new_grad + beta * dir_t
            x, cost, grad = candidate, new_cost, new_grad
            step = min(trial / self.backtrack, 1e6)

        return OptimizeResult(
            x, cost, mani.norm(grad), self.max_iter, False, "max iterations"
        )
