"""Riemannian gradient descent with Armijo backtracking."""

from __future__ import annotations

import numpy as np

from repro.manifolds.problem import ManifoldProblem
from repro.manifolds.result import OptimizeResult

__all__ = ["RiemannianGradientDescent"]


class RiemannianGradientDescent:
    """Steepest descent along ``-grad f`` with backtracking line search.

    Parameters
    ----------
    max_iter, grad_tol:
        Stop when ``‖grad‖ ≤ grad_tol`` or after ``max_iter`` steps.
    initial_step:
        First trial step each iteration (warm-started from the previous
        accepted step, doubled).
    armijo_c, backtrack:
        Sufficient-decrease constant and step-shrink factor.
    """

    def __init__(
        self,
        max_iter: int = 500,
        grad_tol: float = 1e-6,
        initial_step: float = 1.0,
        armijo_c: float = 1e-4,
        backtrack: float = 0.5,
        max_backtracks: int = 40,
    ):
        self.max_iter = max_iter
        self.grad_tol = grad_tol
        self.initial_step = initial_step
        self.armijo_c = armijo_c
        self.backtrack = backtrack
        self.max_backtracks = max_backtracks

    def solve(
        self, problem: ManifoldProblem, x0: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> OptimizeResult:
        mani = problem.manifold
        if x0 is None:
            if rng is None:
                raise ValueError("either x0 or rng must be given")
            x0 = mani.random_point(rng)
        x = np.array(x0, copy=True)
        cost = problem.cost(x)
        step = self.initial_step

        for it in range(1, self.max_iter + 1):
            grad = problem.rgrad(x)
            gnorm = mani.norm(grad)
            if gnorm <= self.grad_tol:
                return OptimizeResult(x, cost, gnorm, it - 1, True, "gradient tolerance")
            direction = -grad
            slope = -(gnorm**2)
            accepted = False
            for _ in range(self.max_backtracks):
                candidate = mani.retract(x, step * direction)
                new_cost = problem.cost(candidate)
                if new_cost <= cost + self.armijo_c * step * slope:
                    accepted = True
                    break
                step *= self.backtrack
            if not accepted:
                return OptimizeResult(
                    x, cost, gnorm, it, False, "line search failed (stationary?)"
                )
            x, cost = candidate, new_cost
            step = min(step / self.backtrack, 1e6)  # gentle growth for next iter

        grad = problem.rgrad(x)
        return OptimizeResult(
            x, cost, mani.norm(grad), self.max_iter, False, "max iterations"
        )
