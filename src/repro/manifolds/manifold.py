"""Riemannian manifolds (embedded in Euclidean space, metric inherited)."""

from __future__ import annotations

import numpy as np

__all__ = ["ObliqueManifold", "SphereManifold"]


class ObliqueManifold:
    """OB(p, n): real ``p × n`` matrices with unit-norm columns.

    The product of ``n`` unit spheres ``S^{p-1}``; the feasible set of the
    Burer–Monteiro factorisation of the Max-Cut SDP (each column is a
    vertex vector ``v_i``).
    """

    def __init__(self, p: int, n: int):
        if p < 1 or n < 1:
            raise ValueError(f"invalid oblique dimensions ({p}, {n})")
        self.p = p
        self.n = n

    @property
    def dim(self) -> int:
        return (self.p - 1) * self.n

    # -- points ---------------------------------------------------------------

    def random_point(self, rng: np.random.Generator) -> np.ndarray:
        v = rng.normal(size=(self.p, self.n))
        return v / np.linalg.norm(v, axis=0, keepdims=True)

    def check_point(self, v: np.ndarray, atol: float = 1e-8) -> None:
        if v.shape != (self.p, self.n):
            raise ValueError(f"point shape {v.shape} != ({self.p}, {self.n})")
        norms = np.linalg.norm(v, axis=0)
        if not np.allclose(norms, 1.0, atol=atol):
            raise ValueError(f"columns not unit-norm (max dev {abs(norms-1).max():.2e})")

    # -- tangent spaces -------------------------------------------------------------

    def proj(self, v: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Project ambient ``u`` onto the tangent space at ``v``
        (remove each column's radial component)."""
        return u - v * (v * u).sum(axis=0, keepdims=True)

    def random_tangent(self, v: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        xi = self.proj(v, rng.normal(size=v.shape))
        nrm = self.norm(xi)
        return xi / nrm if nrm > 0 else xi

    def inner(self, a: np.ndarray, b: np.ndarray) -> float:
        return float((a * b).sum())

    def norm(self, a: np.ndarray) -> float:
        return float(np.linalg.norm(a))

    # -- retraction -----------------------------------------------------------------

    def retract(self, v: np.ndarray, xi: np.ndarray) -> np.ndarray:
        """Metric projection retraction: renormalise the columns of v + ξ."""
        w = v + xi
        return w / np.linalg.norm(w, axis=0, keepdims=True)

    # -- Riemannian derivatives from Euclidean ones -------------------------------------

    def egrad_to_rgrad(self, v: np.ndarray, egrad: np.ndarray) -> np.ndarray:
        return self.proj(v, egrad)

    def ehess_to_rhess(
        self, v: np.ndarray, egrad: np.ndarray, ehess: np.ndarray, xi: np.ndarray
    ) -> np.ndarray:
        """Riemannian Hessian via the standard embedded-submanifold formula:
        ``Proj(ehess) − ξ · ddiag(vᵀ egrad)`` (per-column Weingarten term)."""
        radial = (v * egrad).sum(axis=0, keepdims=True)
        return self.proj(v, ehess - xi * radial)


class SphereManifold(ObliqueManifold):
    """S^{p-1} — the oblique manifold with a single column, vector-shaped.

    Accepts/returns 1-D arrays of length p.
    """

    def __init__(self, p: int):
        super().__init__(p, 1)

    def random_point(self, rng: np.random.Generator) -> np.ndarray:
        return super().random_point(rng).ravel()

    def check_point(self, v: np.ndarray, atol: float = 1e-8) -> None:
        super().check_point(np.atleast_2d(v).reshape(self.p, 1), atol=atol)

    def proj(self, v: np.ndarray, u: np.ndarray) -> np.ndarray:
        v2, u2 = v.reshape(self.p, 1), u.reshape(self.p, 1)
        return super().proj(v2, u2).reshape(v.shape)

    def retract(self, v: np.ndarray, xi: np.ndarray) -> np.ndarray:
        v2, xi2 = v.reshape(self.p, 1), xi.reshape(self.p, 1)
        return super().retract(v2, xi2).reshape(v.shape)

    def random_tangent(self, v: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        v2 = v.reshape(self.p, 1)
        return super().random_tangent(v2, rng).reshape(v.shape)

    def egrad_to_rgrad(self, v: np.ndarray, egrad: np.ndarray) -> np.ndarray:
        return self.proj(v, egrad)

    def ehess_to_rhess(self, v, egrad, ehess, xi):
        shp = v.shape
        out = super().ehess_to_rhess(
            v.reshape(self.p, 1),
            egrad.reshape(self.p, 1),
            ehess.reshape(self.p, 1),
            xi.reshape(self.p, 1),
        )
        return out.reshape(shp)
