"""Structured run logging (JSONL) for experiment bookkeeping.

Each training run appends one JSON object per step plus a header/footer —
the format the benchmark harnesses parse to build EXPERIMENTS.md tables,
and a sane default for users running sweeps.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any

__all__ = ["RunLogger"]


class RunLogger:
    """Callback writing one JSON line per training step.

    Hardened against the ways long runs actually die: the footer is
    written even when training raises (``VQMC.run`` delivers
    ``on_run_end`` from a ``finally`` block), the file is flushed *and*
    fsync'd at run end so a crash immediately after cannot lose the tail,
    and non-JSON-serialisable metadata degrades to ``repr()`` instead of
    killing the run it was meant to document.

    Parameters
    ----------
    path:
        Output ``.jsonl`` file (parent directories are created).
    meta:
        Arbitrary metadata recorded in the header line (instance seed,
        architecture, batch size, ...). Values that are not JSON types are
        recorded as their ``repr``.
    """

    def __init__(self, path: str | Path, meta: dict[str, Any] | None = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.meta = dict(meta or {})
        self._fh = None
        self._start = 0.0

    # -- callback protocol ---------------------------------------------------------

    def on_run_begin(self, vqmc) -> None:
        self._fh = self.path.open("a", encoding="utf-8")
        self._start = time.time()  # repro-lint: disable=det-wall-clock -- log-sink timestamp, never feeds numerics
        header = {
            "event": "run_begin",
            "time": self._start,
            "python": platform.python_version(),
            "model": type(vqmc.model).__name__,
            "hamiltonian": type(vqmc.hamiltonian).__name__,
            "sampler": type(vqmc.sampler).__name__,
            "optimizer": type(vqmc.optimizer).__name__,
            "n": vqmc.model.n,
            "num_parameters": vqmc.model.num_parameters(),
            "sr": vqmc.sr is not None,
            **self.meta,
        }
        self._write(header)

    def on_step(self, step: int, result) -> None:
        self._write(
            {
                "event": "step",
                "step": step,
                "energy": result.stats.mean,
                "std": result.stats.std,
                "sem": result.stats.sem,
                "grad_norm": result.grad_norm,
                "step_time": result.step_time,
                "acceptance": None
                if result.acceptance != result.acceptance  # NaN
                else result.acceptance,
            }
        )

    def on_run_end(self, vqmc) -> None:
        if self._fh is None:
            return  # idempotent: run already closed (or never began)
        self._write(
            {
                "event": "run_end",
                "time": time.time(),  # repro-lint: disable=det-wall-clock -- log-sink timestamp, never feeds numerics
                "elapsed": time.time() - self._start,  # repro-lint: disable=det-wall-clock -- log-sink timestamp, never feeds numerics
                "global_step": vqmc.global_step,
            }
        )
        # Crash safety: the footer marks the log complete, so make it
        # durable — flush the userspace buffer and fsync the file.
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None

    # -- helpers --------------------------------------------------------------------

    def _write(self, record: dict) -> None:
        assert self._fh is not None, "logger used outside a run"
        # default=repr: exotic metadata (Path, ndarray, dataclasses) must
        # degrade to a string, never crash the run being logged.
        self._fh.write(json.dumps(record, default=repr) + "\n")
        self._fh.flush()

    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """Parse a JSONL run log back into a list of records."""
        records = []
        with Path(path).open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records
