"""Lightweight timing helpers used by the benchmark harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "WallClock"]


class Timer:
    """Context manager measuring wall-clock time of a block.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class WallClock:
    """Accumulating named stopwatch (total seconds per label).

    Read results through :meth:`snapshot` (and clear with :meth:`reset`) —
    the same read/run/diff idiom as
    :class:`repro.distributed.comm.CommStats`. Poking the ``totals`` dict
    directly still works but is deprecated for external callers; snapshots
    are plain copies, so diffing two of them is race-free even while the
    clock keeps accumulating.
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def measure(self, label: str) -> "_Section":
        return _Section(self, label)

    def add(self, label: str, seconds: float) -> None:
        self.totals[label] = self.totals.get(label, 0.0) + seconds
        self.counts[label] = self.counts.get(label, 0) + 1

    def mean(self, label: str) -> float:
        return self.totals[label] / max(1, self.counts.get(label, 0))

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-label ``{"total", "count", "mean"}`` copies, sorted by label."""
        return {
            label: {
                "total": self.totals[label],
                "count": float(self.counts.get(label, 0)),
                "mean": self.mean(label),
            }
            for label in sorted(self.totals)
        }

    def reset(self) -> None:
        """Zero every label (the counterpart of ``CommStats.reset``)."""
        self.totals.clear()
        self.counts.clear()

    def summary(self) -> str:
        lines = []
        for label in sorted(self.totals):
            lines.append(
                f"{label:<28s} total={self.totals[label]:10.4f}s "
                f"calls={self.counts[label]:6d} mean={self.mean(label):10.6f}s"
            )
        return "\n".join(lines)


class _Section:
    def __init__(self, clock: WallClock, label: str):
        self._clock = clock
        self._label = label
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._clock.add(self._label, time.perf_counter() - self._start)
