"""Random-number-generator management.

All stochastic components in this package take an explicit
:class:`numpy.random.Generator`; nothing touches the legacy global numpy RNG.
For parallel work (multiple chains, multiple workers) we derive statistically
independent child generators via :class:`numpy.random.SeedSequence.spawn`,
which is the numpy-recommended way to obtain non-overlapping streams.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["as_generator", "init_rng", "spawn_generators", "RngPool"]

#: seed of the fallback initialisation stream (see :func:`init_rng`)
DEFAULT_INIT_SEED = 0


def as_generator(seed: int | None | np.random.Generator) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def init_rng(
    rng: np.random.Generator | None, seed: int = DEFAULT_INIT_SEED
) -> np.random.Generator:
    """The Generator fallback for model/layer construction.

    Callers that don't pass an ``rng`` get a *seeded* stream rather than OS
    entropy: a default-constructed model is bit-identical on every machine,
    which is the repo-wide replay contract (and what the
    ``det-unseeded-rng`` lint rule enforces). Pass an explicit ``rng`` for
    independent initialisations.
    """
    if rng is not None:
        return rng
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | None | np.random.Generator, n: int
) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from a single seed.

    Uses :meth:`numpy.random.SeedSequence.spawn` so the child streams are
    guaranteed non-overlapping regardless of how many draws each makes.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing entropy from the parent stream.
        ss = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


class RngPool:
    """A reproducible pool of named random streams.

    Components often need several logically distinct streams (parameter
    initialisation, sampling, proposal noise, ...). Keying streams by name
    keeps runs reproducible even when the call order between components
    changes.

    Examples
    --------
    >>> pool = RngPool(123)
    >>> rng_init = pool["init"]
    >>> rng_samp = pool["sampling"]
    >>> pool["init"] is rng_init  # same stream on repeat lookup
    True
    """

    def __init__(self, seed: int | None = None):
        self._root = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def __getitem__(self, name: str) -> np.random.Generator:
        if name not in self._streams:
            # Hash the name into spawn-key space for order independence.
            key = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            entropy = list(self._root.entropy if isinstance(self._root.entropy, tuple)
                           else [self._root.entropy or 0]) + key.tolist()
            self._streams[name] = np.random.default_rng(np.random.SeedSequence(entropy))
        return self._streams[name]

    def spawn(self, name: str, n: int) -> list[np.random.Generator]:
        """Return ``n`` independent generators under the given name."""
        return spawn_generators(self[name], n)

    def names(self) -> Iterable[str]:
        return tuple(self._streams)


def check_seeds_distinct(seeds: Sequence[int]) -> None:
    """Raise if any two seeds coincide (guard for experiment sweeps)."""
    if len(set(seeds)) != len(seeds):
        raise ValueError(f"duplicate seeds in {seeds!r}")
