"""Plain-text table formatting for benchmark harness output.

Every benchmark prints its table in the same row/column layout as the paper;
this module provides the shared renderer so the harnesses stay tiny.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_cell"]


def format_cell(value: Any, precision: int = 2) -> str:
    """Render a single table cell: floats get fixed precision, pairs get ±."""
    if value is None:
        return "-"
    if isinstance(value, tuple) and len(value) == 2:
        mean, std = value
        return f"{mean:.{precision}f} ± {std:.{precision}f}"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render rows as an aligned, pipe-separated plain-text table."""
    rendered = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in rendered)
    return "\n".join(lines)
