"""Shared utilities: RNG management, timing, table formatting."""

from repro.utils.rng import RngPool, as_generator, spawn_generators
from repro.utils.timer import Timer, WallClock
from repro.utils.tables import format_table

__all__ = [
    "RngPool",
    "as_generator",
    "spawn_generators",
    "Timer",
    "WallClock",
    "format_table",
]
