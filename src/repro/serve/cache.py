"""Warm-model cache: LRU over built trainers, with pinning for running jobs.

Building a servable model is expensive relative to serving one query —
constructing the ansatz, broadcasting/initialising parameters, optionally
restoring a checkpoint. The server therefore keeps recently used trainers
*warm*, keyed by the canonical :class:`~repro.serve.protocol.ModelKey`
``(hamiltonian, ansatz, checkpoint)``, and evicts least-recently-used
entries when the cache is full.

Pinning: a running training job must never lose its model under it. The
worker pins the entry for the job's lifetime; eviction skips pinned
entries unconditionally — if *every* entry is pinned the cache temporarily
exceeds ``capacity`` rather than evict one (capacity is a target, pins are
a contract).

Concurrency: each entry carries an ``RLock`` serialising model access at
step/forward granularity — the training worker holds it across one
optimisation step, the batcher holds it across one coalesced forward — so
queries against a model that is *also* training interleave at safe
boundaries and never observe half-updated parameters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

import numpy as np

from repro.serve.protocol import ModelKey

__all__ = ["CacheEntry", "WarmModelCache"]


class CacheEntry:
    """One warm trainer plus its serving paraphernalia."""

    def __init__(self, key: ModelKey, vqmc):
        self.key = key
        self.vqmc = vqmc
        #: serialises model access between the training worker (one step)
        #: and the batcher (one coalesced forward)
        self.lock = threading.RLock()
        #: pin count (one per running job using this entry)
        self.pins = 0
        #: dedicated serving stream — a fork of the trainer's evaluation
        #: fork, so queries consume neither the training stream (bit-exact
        #: resume contract) nor the trainer's own evaluate() draws
        from repro.core.vqmc import derive_eval_rng

        self.query_rng: np.random.Generator = derive_eval_rng(vqmc.eval_rng)

    @property
    def pinned(self) -> bool:
        return self.pins > 0


class WarmModelCache:
    """Thread-safe LRU of :class:`CacheEntry` with pin-aware eviction.

    Parameters
    ----------
    capacity:
        Target number of warm entries. Unpinned LRU entries are evicted
        when an insert would exceed it; pinned entries never are.
    metrics:
        Optional :class:`repro.obs.Metrics`; maintains
        ``serve.cache.hits`` / ``serve.cache.misses`` /
        ``serve.cache.evictions`` counters and the ``serve.cache.size``
        gauge.
    """

    def __init__(self, capacity: int = 8, metrics=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[ModelKey, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _gauge_size(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("serve.cache.size").set(float(len(self._entries)))

    def get(
        self,
        key: ModelKey,
        factory: Callable[[], object] | None = None,
        pin: bool = False,
    ) -> CacheEntry | None:
        """Return the warm entry for ``key``, building it via ``factory``
        on a miss (``None`` on a miss without a factory).

        The factory runs *outside* the cache lock — building a model can
        take arbitrarily long and must not block unrelated lookups. Two
        racing builders for the same key are resolved first-insert-wins
        (the loser's build is discarded; both callers get one entry).

        ``pin=True`` pins the returned entry atomically with the lookup /
        insert. A separate ``get(...)`` + :meth:`pin` pair is racy: a full
        cache of pinned entries evicts the fresh insert before ``pin`` can
        reach it.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                if pin:
                    entry.pins += 1
                self._count("serve.cache.hits")
                return entry
            self.misses += 1
            self._count("serve.cache.misses")
        if factory is None:
            return None
        built = CacheEntry(key, factory())
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:  # lost the build race — keep the winner
                self._entries.move_to_end(key)
                if pin:
                    entry.pins += 1
                return entry
            if pin:
                built.pins += 1
            self._entries[key] = built
            self._evict_over_capacity()
            self._gauge_size()
        return built

    def _evict_over_capacity(self) -> None:
        # caller holds self._lock
        while len(self._entries) > self.capacity:
            victim_key = None
            for key, entry in self._entries.items():  # LRU -> MRU order
                if not entry.pinned:
                    victim_key = key
                    break
            if victim_key is None:
                return  # everything pinned: exceed capacity, never break a pin
            del self._entries[victim_key]
            self.evictions += 1
            self._count("serve.cache.evictions")

    def pin(self, key: ModelKey) -> None:
        """Protect ``key`` from eviction (counted; see :meth:`unpin`)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                raise KeyError(f"cannot pin absent cache entry {key}")
            entry.pins += 1

    def unpin(self, key: ModelKey) -> None:
        """Release one pin; entries may be evicted again at zero pins.

        Unpinning may immediately evict if the cache is over capacity
        (pins forced it past the target earlier).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return  # already evicted after its pins dropped — harmless
            entry.pins = max(0, entry.pins - 1)
            self._evict_over_capacity()
            self._gauge_size()

    def keys(self) -> list[ModelKey]:
        """Current keys, LRU first (for introspection endpoints)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "pinned": sum(1 for e in self._entries.values() if e.pinned),
            }
