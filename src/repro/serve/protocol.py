"""Wire protocol for the VQMC job server: specs, states, canonical keys.

Everything crossing the HTTP boundary is plain JSON; this module is the
single place where request dicts are validated and turned into typed specs,
and where the canonical **model key** — the ``(hamiltonian, ansatz,
checkpoint)`` identity the warm-model cache and the request batcher both
coalesce on — is derived. Two requests whose specs canonicalise to the same
key are, by construction, requests against the same physical model.

Job lifecycle (``JobState``)::

    QUEUED -> RUNNING -> COMPLETED
       |         |-----> FAILED        (exception; flight dump written)
       |         '-----> CANCELLED     (restorable checkpoint left behind)
       '---------------> CANCELLED     (cancelled while still queued)

Rejected submissions never become jobs: admission control answers 429/400
at the door (see :mod:`repro.serve.jobqueue`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = [
    "JobState",
    "JobSpec",
    "QuerySpec",
    "ModelKey",
    "ProtocolError",
    "PROBLEMS",
    "ARCHITECTURES",
    "SAMPLERS",
    "OPTIMIZERS",
]

PROBLEMS = ("tim", "maxcut", "chain")
ARCHITECTURES = ("made", "rbm", "mean_field", "rnn")
SAMPLERS = ("auto", "mcmc", "tempering")
OPTIMIZERS = ("sgd", "adam", "sgd+sr")

#: hard ceiling on a single query's sample count (keeps one request from
#: monopolising a coalesced forward pass)
MAX_QUERY_BATCH = 1 << 16


class ProtocolError(ValueError):
    """A request dict failed validation (maps to HTTP 400)."""


class JobState:
    """String enum of job lifecycle states."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, COMPLETED, FAILED, CANCELLED)
    #: states from which no transition is possible
    TERMINAL = (COMPLETED, FAILED, CANCELLED)


@dataclass(frozen=True)
class ModelKey:
    """Canonical identity of a servable model: what the warm cache is
    keyed by and what the batcher coalesces on.

    ``checkpoint`` distinguishes the *trained state*: two jobs over the
    same (hamiltonian, ansatz) but different checkpoints are different
    models. ``None`` means "fresh parameters from ``seed``".
    """

    hamiltonian: tuple
    ansatz: tuple
    checkpoint: str | None = None

    def as_json(self) -> dict:
        return {
            "hamiltonian": list(self.hamiltonian),
            "ansatz": list(self.ansatz),
            "checkpoint": self.checkpoint,
        }


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ProtocolError(message)


def _int_field(raw: dict, name: str, default: int, minimum: int) -> int:
    value = raw.get(name, default)
    _require(
        isinstance(value, int) and not isinstance(value, bool) and value >= minimum,
        f"{name!r} must be an integer >= {minimum}, got {value!r}",
    )
    return value


@dataclass
class JobSpec:
    """A training-job request (``POST /jobs``).

    The spec is the server-side analogue of the CLI's ``train`` command:
    the same builder vocabulary (:mod:`repro.experiments.protocol`), plus
    serving concerns — priority, checkpoint cadence, resume.
    """

    problem: str = "tim"
    n: int = 8
    instance_seed: int = 0
    arch: str = "made"
    hidden: int | None = None
    sampler: str = "auto"
    optimizer: str = "adam"
    seed: int = 0
    iterations: int = 50
    batch_size: int = 64
    checkpoint_every: int = 10
    priority: int = 0
    resume: bool = False
    #: testing hook: raise a synthetic RuntimeError at this training step,
    #: exercising the crash path (flight dump, FAILED state) end to end.
    inject_fault_at: int | None = None

    @classmethod
    def from_json(cls, raw: dict) -> "JobSpec":
        _require(isinstance(raw, dict), f"job spec must be an object, got {type(raw).__name__}")
        unknown = set(raw) - {f for f in cls.__dataclass_fields__}
        _require(not unknown, f"unknown job spec fields: {sorted(unknown)}")
        problem = raw.get("problem", "tim")
        _require(problem in PROBLEMS, f"unknown problem {problem!r} (one of {PROBLEMS})")
        arch = raw.get("arch", "made")
        _require(arch in ARCHITECTURES, f"unknown arch {arch!r} (one of {ARCHITECTURES})")
        sampler = raw.get("sampler", "auto")
        _require(sampler in SAMPLERS, f"unknown sampler {sampler!r} (one of {SAMPLERS})")
        optimizer = raw.get("optimizer", "adam")
        _require(
            optimizer in OPTIMIZERS, f"unknown optimizer {optimizer!r} (one of {OPTIMIZERS})"
        )
        hidden = raw.get("hidden")
        _require(
            hidden is None
            or (
                isinstance(hidden, int)
                and not isinstance(hidden, bool)
                and hidden >= 1
            ),
            f"'hidden' must be a positive integer or null, got {hidden!r}",
        )
        fault = raw.get("inject_fault_at")
        _require(
            fault is None
            or (
                isinstance(fault, int)
                and not isinstance(fault, bool)
                and fault >= 1
            ),
            f"'inject_fault_at' must be a positive integer or null, got {fault!r}",
        )
        return cls(
            problem=problem,
            n=_int_field(raw, "n", 8, 2),
            instance_seed=_int_field(raw, "instance_seed", 0, 0),
            arch=arch,
            hidden=hidden,
            sampler=sampler,
            optimizer=optimizer,
            seed=_int_field(raw, "seed", 0, 0),
            iterations=_int_field(raw, "iterations", 50, 1),
            batch_size=_int_field(raw, "batch_size", 64, 1),
            checkpoint_every=_int_field(raw, "checkpoint_every", 10, 1),
            priority=_int_field(raw, "priority", 0, -1_000_000),
            resume=bool(raw.get("resume", False)),
            inject_fault_at=fault,
        )

    def to_json(self) -> dict:
        return asdict(self)

    def model_key(self, checkpoint: str | None = None) -> ModelKey:
        """Canonical (hamiltonian, ansatz, checkpoint) identity."""
        return ModelKey(
            hamiltonian=(self.problem, self.n, self.instance_seed),
            ansatz=(self.arch, self.n, self.hidden, self.seed),
            checkpoint=checkpoint,
        )


@dataclass
class QuerySpec:
    """An inference query (``POST /sample`` or ``POST /energy``).

    Queries name a model either by spec fields (problem/arch/seeds — the
    same vocabulary as :class:`JobSpec`) or by ``job_id`` (serve from that
    job's warm, possibly still-training model). ``batch_size`` is the
    number of samples *this* request wants; the batcher may satisfy many
    requests from one coalesced forward pass.
    """

    kind: str = "energy"  # 'energy' | 'sample'
    problem: str = "tim"
    n: int = 8
    instance_seed: int = 0
    arch: str = "made"
    hidden: int | None = None
    seed: int = 0
    batch_size: int = 64
    job_id: str | None = None
    checkpoint: str | None = None

    KINDS = ("energy", "sample")

    @classmethod
    def from_json(cls, raw: dict, kind: str | None = None) -> "QuerySpec":
        _require(isinstance(raw, dict), f"query must be an object, got {type(raw).__name__}")
        fields = {f for f in cls.__dataclass_fields__}
        unknown = set(raw) - fields
        _require(not unknown, f"unknown query fields: {sorted(unknown)}")
        resolved = kind or raw.get("kind", "energy")
        _require(resolved in cls.KINDS, f"unknown query kind {resolved!r}")
        problem = raw.get("problem", "tim")
        _require(problem in PROBLEMS, f"unknown problem {problem!r} (one of {PROBLEMS})")
        arch = raw.get("arch", "made")
        _require(arch in ARCHITECTURES, f"unknown arch {arch!r} (one of {ARCHITECTURES})")
        hidden = raw.get("hidden")
        _require(
            hidden is None
            or (
                isinstance(hidden, int)
                and not isinstance(hidden, bool)
                and hidden >= 1
            ),
            f"'hidden' must be a positive integer or null, got {hidden!r}",
        )
        batch = _int_field(raw, "batch_size", 64, 1)
        _require(
            batch <= MAX_QUERY_BATCH,
            f"'batch_size' capped at {MAX_QUERY_BATCH}, got {batch}",
        )
        job_id = raw.get("job_id")
        _require(
            job_id is None or isinstance(job_id, str),
            f"'job_id' must be a string or null, got {job_id!r}",
        )
        checkpoint = raw.get("checkpoint")
        _require(
            checkpoint is None or isinstance(checkpoint, str),
            f"'checkpoint' must be a string or null, got {checkpoint!r}",
        )
        return cls(
            kind=resolved,
            problem=problem,
            n=_int_field(raw, "n", 8, 2),
            instance_seed=_int_field(raw, "instance_seed", 0, 0),
            arch=arch,
            hidden=hidden,
            seed=_int_field(raw, "seed", 0, 0),
            batch_size=batch,
            job_id=job_id,
            checkpoint=checkpoint,
        )

    def to_json(self) -> dict:
        return asdict(self)

    def model_key(self) -> ModelKey:
        return ModelKey(
            hamiltonian=(self.problem, self.n, self.instance_seed),
            ansatz=(self.arch, self.n, self.hidden, self.seed),
            checkpoint=self.checkpoint,
        )
