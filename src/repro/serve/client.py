"""Stdlib HTTP client for the VQMC job server (``urllib.request`` only).

Thin by design: every method is one endpoint, payloads are the raw JSON
dicts documented in ``docs/serving.md``. Server-side errors surface as
:class:`ServeAPIError` carrying the HTTP status and the server's ``error``
field, so callers can distinguish a 400 (bad spec) from a 429 (admission
rejection) without parsing strings.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

__all__ = ["ServeAPIError", "ServeClient"]


class ServeAPIError(RuntimeError):
    """Non-2xx response from the server."""

    def __init__(self, status: int, error: str, detail: dict | None = None):
        self.status = status
        self.error = error
        self.detail = detail or {}
        super().__init__(f"HTTP {status}: {error}")


class ServeClient:
    """Client for one server base URL (e.g. ``http://127.0.0.1:8642``)."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except Exception:  # noqa: BLE001 — error body is best-effort
                body = {}
            raise ServeAPIError(
                exc.code, body.get("error", exc.reason), body.get("detail")
            ) from exc

    # -- endpoints ----------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def submit(self, spec: dict) -> dict:
        """``POST /jobs`` — returns ``{"id", "state", "estimated_seconds"}``."""
        return self._request("POST", "/jobs", spec)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def sample(self, query: dict) -> dict:
        return self._request("POST", "/sample", query)

    def energy(self, query: dict) -> dict:
        return self._request("POST", "/energy", query)

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    # -- conveniences -------------------------------------------------------------

    def wait(
        self, job_id: str, timeout: float = 120.0, poll_s: float = 0.1
    ) -> dict:
        """Poll ``status`` until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("completed", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s "
                    f"(step {status['step']}/{status['iterations']})"
                )
            time.sleep(poll_s)
