"""Request batcher: coalesce concurrent queries into one model forward.

Serving cost is dominated by per-call overhead at realistic query sizes
(tens of samples against small warm models), so the batcher groups
concurrent ``sample``/``energy`` queries **against the same model key**
into one forward pass and hands each request back its own slice.

Batching-window semantics (documented contract, asserted by tests):

- ``window`` is the maximum number of requests coalesced into one forward
  pass. ``B`` concurrent requests against one model therefore execute in
  exactly ``ceil(B / window)`` model forwards — observable via the
  ``serve.batcher.forwards`` counter (and :attr:`RequestBatcher.forwards`),
  never inferred from timing.
- ``linger_s`` is how long the executor waits, after picking up the first
  pending request for a key, for more requests to join its batch. A lone
  request pays at most ``linger_s`` extra latency; a full window departs
  immediately.
- Requests for *different* model keys never share a forward; keys are
  served oldest-first.

One coalesced forward draws ``sum(batch_size)`` samples from the entry's
dedicated ``query_rng`` (never a training stream — the RNG-sharing fix in
``repro.core.vqmc`` applies server-side too) and, when any request in the
group wants energies, evaluates local energies once over the union batch.
Per-request energy statistics are computed on the request's own slice, so
every client sees statistics over exactly the samples it paid for.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque

from repro.core.energy import energy_statistics, local_energies
from repro.serve.cache import CacheEntry
from repro.serve.protocol import ModelKey, QuerySpec

__all__ = ["BatcherClosed", "PendingQuery", "RequestBatcher"]


class BatcherClosed(RuntimeError):
    """The batcher is shut down; no further queries are accepted."""


class PendingQuery:
    """A submitted query: a one-shot future the HTTP handler blocks on."""

    def __init__(self, spec: QuerySpec, entry: CacheEntry):
        self.spec = spec
        self.entry = entry
        self._event = threading.Event()
        self.result: dict | None = None
        self.error: BaseException | None = None

    def resolve(self, result: dict) -> None:
        self.result = result
        self._event.set()

    def reject(self, error: BaseException) -> None:
        self.error = error
        self._event.set()

    def wait(self, timeout: float | None = None) -> dict:
        """Block until served; raises the executor's error if it failed."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query not served within {timeout}s (kind={self.spec.kind})"
            )
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class RequestBatcher:
    """Background executor coalescing queries per model key.

    Parameters
    ----------
    window:
        Max requests per coalesced forward (see module docstring).
    linger_s:
        Max extra wait for a batch to fill once a request is pending.
    metrics:
        Optional :class:`repro.obs.Metrics`: ``serve.batcher.forwards`` /
        ``.requests`` / ``.samples`` counters.
    autostart:
        Start the executor thread immediately (tests pass ``False`` and
        call :meth:`start` after staging requests, making the
        ``ceil(B/window)`` forward count deterministic).
    """

    def __init__(
        self,
        window: int = 8,
        linger_s: float = 0.002,
        metrics=None,
        autostart: bool = True,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if linger_s < 0:
            raise ValueError(f"linger_s must be >= 0, got {linger_s}")
        self.window = window
        self.linger_s = linger_s
        self.metrics = metrics
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: "OrderedDict[ModelKey, deque[PendingQuery]]" = OrderedDict()
        self._stopped = False
        self._thread: threading.Thread | None = None
        #: coalesced forward passes executed (the acceptance-criterion counter)
        self.forwards = 0
        #: requests served
        self.requests = 0
        #: total samples drawn across all forwards
        self.samples = 0
        if autostart:
            self.start()

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="serve-batcher", daemon=True
        )
        self._thread.start()

    def close(self, timeout: float = 10.0) -> None:
        """Drain pending queries, then stop the executor."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    # -- submission ---------------------------------------------------------------

    def submit(self, spec: QuerySpec, entry: CacheEntry) -> PendingQuery:
        """Enqueue a query against a warm entry; returns its future."""
        if spec.kind not in QuerySpec.KINDS:
            raise ValueError(f"unknown query kind {spec.kind!r}")
        pending = PendingQuery(spec, entry)
        with self._cond:
            if self._stopped:
                raise BatcherClosed("batcher is shut down")
            self._pending.setdefault(entry.key, deque()).append(pending)
            self._cond.notify_all()
        return pending

    def pending_count(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._pending.values())

    # -- executor -----------------------------------------------------------------

    def _take_group(self) -> list[PendingQuery] | None:
        """Block until a batch is ready; None when stopped and drained."""
        with self._cond:
            while not self._pending and not self._stopped:
                self._cond.wait(0.05)
            if not self._pending:
                return None  # stopped and drained
            key = next(iter(self._pending))  # oldest key first
            if not self._stopped and self.linger_s > 0:
                deadline = time.monotonic() + self.linger_s
                while (
                    len(self._pending.get(key, ())) < self.window
                    and not self._stopped
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
            queue = self._pending.get(key)
            if not queue:
                return []
            group = [queue.popleft() for _ in range(min(self.window, len(queue)))]
            if not queue:
                del self._pending[key]
            return group

    def _loop(self) -> None:
        while True:
            group = self._take_group()
            if group is None:
                return
            if group:
                self._execute(group)

    def _execute(self, group: list[PendingQuery]) -> None:
        entry = group[0].entry
        sizes = [q.spec.batch_size for q in group]
        total = sum(sizes)
        try:
            with entry.lock:
                vqmc = entry.vqmc
                x = vqmc.sampler.sample(vqmc.model, total, entry.query_rng)
                local = None
                if any(q.spec.kind == "energy" for q in group):
                    local = local_energies(vqmc.model, vqmc.hamiltonian, x)
        except Exception as exc:  # noqa: BLE001 — forwarded to every waiter
            for q in group:
                q.reject(exc)
            return
        self.forwards += 1
        self.requests += len(group)
        self.samples += total
        if self.metrics is not None:
            self.metrics.counter("serve.batcher.forwards").inc()
            self.metrics.counter("serve.batcher.requests").inc(len(group))
            self.metrics.counter("serve.batcher.samples").inc(total)
        offset = 0
        for q, size in zip(group, sizes):
            view = slice(offset, offset + size)
            offset += size
            if q.spec.kind == "sample":
                q.resolve(
                    {
                        "samples": x[view].astype(int).tolist(),
                        "batch_size": size,
                        "coalesced": len(group),
                    }
                )
            else:
                stats = energy_statistics(local[view])
                q.resolve(
                    {
                        "mean": stats.mean,
                        "std": stats.std,
                        "sem": stats.sem,
                        "count": stats.count,
                        "coalesced": len(group),
                    }
                )

    def stats(self) -> dict:
        return {
            "window": self.window,
            "linger_s": self.linger_s,
            "forwards": self.forwards,
            "requests": self.requests,
            "samples": self.samples,
            "pending": self.pending_count(),
        }
