"""VQMC-as-a-service: the long-lived multi-tenant job server.

One :class:`VQMCServer` owns four moving parts:

- a :class:`~repro.serve.jobqueue.JobQueue` (priorities + planner-driven
  admission control at the door);
- a worker pool (threads) that drives admitted training jobs through the
  re-entrant :class:`~repro.core.vqmc.StepDriver` — pausable, cancellable,
  checkpointable *between* steps, never mid-step;
- a :class:`~repro.serve.cache.WarmModelCache` keyed by
  ``(hamiltonian, ansatz, checkpoint)`` with LRU eviction and pinning for
  running jobs;
- a :class:`~repro.serve.batcher.RequestBatcher` coalescing concurrent
  ``sample``/``energy`` queries against one warm model into one forward.

Observability matches CLI runs: every job gets a
:class:`~repro.obs.flight.FlightRecorder` (+ streaming
:class:`~repro.obs.health.HealthMonitor`) so a dying server-side job
leaves the same ``flight.rankNNN.json`` black box ``tools/monitor.py``
autopsies, and its health report rides in its checkpoints.

Checkpoints land in a **per-model-key** directory (``checkpoints/<key>``
under the server root), shared by every job training that model: a
cancelled or crashed job leaves a restorable checkpoint behind, and a
later job with ``resume: true`` — or a restarted server — picks training
up from the newest verifying one.

The HTTP layer is a thin JSON veneer (stdlib ``http.server``); all
behaviour is equally reachable in-process, which is how the tests and the
throughput benchmark drive it.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.core.callbacks import Callback
from repro.core.checkpoint import CheckpointCallback
from repro.core.vqmc import VQMC, StepDriver
from repro.obs.flight import FlightRecorder
from repro.obs.health import HealthMonitor
from repro.obs.metrics import Metrics
from repro.serve.batcher import RequestBatcher
from repro.serve.cache import WarmModelCache
from repro.serve.jobqueue import AdmissionError, JobQueue
from repro.serve.protocol import (
    JobSpec,
    JobState,
    ModelKey,
    ProtocolError,
    QuerySpec,
)

__all__ = ["Job", "VQMCServer", "build_trainer"]


def build_trainer(
    problem: str,
    n: int,
    instance_seed: int,
    arch: str,
    hidden: int | None,
    seed: int,
    sampler: str | None = None,
    optimizer: str = "adam",
    metrics=None,
) -> VQMC:
    """Construct a servable trainer from spec vocabulary.

    The sampling seed offset (+10_000) matches the CLI's ``train`` command
    so a server-side job is bit-identical to the equivalent one-shot run.
    """
    from repro.experiments.protocol import (
        build_model,
        build_optimizer,
        build_sampler,
        make_hamiltonian,
    )

    ham = make_hamiltonian(problem, n, seed=instance_seed)
    model = build_model(arch, n, seed, hidden=hidden)
    if sampler is None:
        sampler = "auto" if arch in ("made", "mean_field", "rnn") else "mcmc"
    sam = build_sampler(sampler, n)
    opt, sr = build_optimizer(optimizer, model)
    return VQMC(model, ham, sam, opt, sr=sr, seed=seed + 10_000, metrics=metrics)


class _FaultAt(Callback):
    """Testing hook: kill the job at a given step (spec.inject_fault_at)."""

    def __init__(self, at_step: int):
        self.at_step = at_step

    def on_step(self, step: int, result) -> None:
        if step >= self.at_step:
            raise RuntimeError(f"injected server fault at step {step}")


class Job:
    """Runtime record of one admitted training job."""

    def __init__(self, job_id: str, spec: JobSpec, directory: Path):
        self.id = job_id
        self.spec = spec
        self.dir = directory
        self.state = JobState.QUEUED
        self.error: str | None = None
        self.estimated_seconds = 0.0
        self.cancel_event = threading.Event()
        self.step = 0  # last completed global step
        self.energy: float | None = None
        self.result: dict | None = None
        self.health: str | None = None
        self.flight_dump: str | None = None
        self.checkpoint_path: str | None = None
        self._submitted = time.monotonic()
        self._started: float | None = None
        self._finished: float | None = None

    def status_json(self) -> dict:
        now = time.monotonic()
        started = self._started
        finished = self._finished
        return {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_json(),
            "step": self.step,
            "iterations": self.spec.iterations,
            "energy": self.energy,
            "error": self.error,
            "result": self.result,
            "health": self.health,
            "flight_dump": self.flight_dump,
            "checkpoint": self.checkpoint_path,
            "estimated_seconds": self.estimated_seconds,
            "queued_seconds": (started if started is not None else now)
            - self._submitted,
            "run_seconds": None
            if started is None
            else (finished if finished is not None else now) - started,
        }


class VQMCServer:
    """The multi-tenant solver server (see module docstring).

    Parameters
    ----------
    root:
        Working directory: per-model-key checkpoints, per-job flight dumps.
    workers:
        Training worker threads (concurrent jobs).
    cache_capacity, batch_window, batch_linger_s:
        Warm-cache and batcher knobs (see their modules).
    max_pending, max_job_seconds, max_backlog_seconds:
        Admission-control bounds (see :mod:`repro.serve.jobqueue`).
    """

    def __init__(
        self,
        root: str | Path,
        workers: int = 2,
        cache_capacity: int = 8,
        batch_window: int = 8,
        batch_linger_s: float = 0.002,
        max_pending: int = 64,
        max_job_seconds: float | None = None,
        max_backlog_seconds: float | None = None,
        metrics: Metrics | None = None,
        query_timeout_s: float = 30.0,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics if metrics is not None else Metrics()
        self.cache = WarmModelCache(capacity=cache_capacity, metrics=self.metrics)
        self.batcher = RequestBatcher(
            window=batch_window, linger_s=batch_linger_s, metrics=self.metrics
        )
        self.queue = JobQueue(
            max_pending=max_pending,
            max_job_seconds=max_job_seconds,
            max_backlog_seconds=max_backlog_seconds,
            workers=workers,
        )
        self.query_timeout_s = query_timeout_s
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._seq = 0
        self._stop = threading.Event()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(max(1, workers))
        ]
        for t in self._workers:
            t.start()
        self._http: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None

    # -- job API -------------------------------------------------------------------

    def submit(self, raw: dict) -> Job:
        """Validate, cost, admit, and enqueue one job (raises
        :class:`ProtocolError` / :class:`AdmissionError`)."""
        spec = JobSpec.from_json(raw)
        with self._jobs_lock:
            self._seq += 1
            job_id = f"job{self._seq:06d}"
        job = Job(job_id, spec, self.root / job_id)
        self.queue.admit(job)  # raises AdmissionError before the job exists
        job.dir.mkdir(parents=True, exist_ok=True)
        with self._jobs_lock:
            self._jobs[job_id] = job
        self.metrics.counter("serve.jobs.submitted").inc()
        return job

    def job(self, job_id: str) -> Job:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        with self._jobs_lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job.

        A queued job is dropped immediately; a running one stops at the
        next step boundary, writing a restorable checkpoint first.
        """
        job = self.job(job_id)
        job.cancel_event.set()
        if self.queue.remove(job_id) and job.state == JobState.QUEUED:
            job.state = JobState.CANCELLED
            self.metrics.counter("serve.jobs.cancelled").inc()
        return job

    # -- queries -------------------------------------------------------------------

    def _key_dir(self, key: ModelKey) -> Path:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:16]
        return self.root / "checkpoints" / digest

    def _entry_for(self, key: ModelKey, builder, pin: bool = False):
        def factory():
            vqmc = builder()
            if key.checkpoint is not None:
                from repro.core.checkpoint import load_checkpoint

                load_checkpoint(vqmc, key.checkpoint)
            return vqmc

        return self.cache.get(key, factory, pin=pin)

    def query(self, raw: dict, kind: str | None = None) -> dict:
        """Serve one sample/energy query through the batcher (blocking)."""
        spec = QuerySpec.from_json(raw, kind=kind)
        if spec.job_id is not None:
            job = self.job(spec.job_id)  # KeyError -> 404
            key = job.spec.model_key()
            entry = self._entry_for(
                key,
                lambda: build_trainer(
                    job.spec.problem,
                    job.spec.n,
                    job.spec.instance_seed,
                    job.spec.arch,
                    job.spec.hidden,
                    job.spec.seed,
                    sampler=job.spec.sampler,
                    optimizer=job.spec.optimizer,
                    metrics=self.metrics,
                ),
            )
        else:
            key = spec.model_key()
            entry = self._entry_for(
                key,
                lambda: build_trainer(
                    spec.problem,
                    spec.n,
                    spec.instance_seed,
                    spec.arch,
                    spec.hidden,
                    spec.seed,
                    metrics=self.metrics,
                ),
            )
        pending = self.batcher.submit(spec, entry)
        self.metrics.counter(f"serve.queries.{spec.kind}").inc()
        return pending.wait(self.query_timeout_s)

    # -- worker pool ---------------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.get(timeout=0.1)
            if job is None:
                continue
            if job.cancel_event.is_set():
                job.state = JobState.CANCELLED
                self.metrics.counter("serve.jobs.cancelled").inc()
                continue
            try:
                self._run_job(job)
            except Exception as exc:  # noqa: BLE001 — a job must not kill its worker
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = JobState.FAILED
                job._finished = time.monotonic()
                self.metrics.counter("serve.jobs.failed").inc()

    def _run_job(self, job: Job) -> None:
        spec = job.spec
        key = spec.model_key()
        entry = self._entry_for(
            key,
            lambda: build_trainer(
                spec.problem,
                spec.n,
                spec.instance_seed,
                spec.arch,
                spec.hidden,
                spec.seed,
                sampler=spec.sampler,
                optimizer=spec.optimizer,
                metrics=self.metrics,
            ),
            # Pinned atomically with the lookup: under cache pressure a
            # fresh insert can be evicted before a separate pin() lands.
            pin=True,
        )
        job._started = time.monotonic()
        try:
            vqmc = entry.vqmc
            ckpt = CheckpointCallback(
                self._key_dir(key), every=spec.checkpoint_every, keep_last=3
            )
            health = HealthMonitor()
            recorder = FlightRecorder(job.dir, rank=0, health=health)
            callbacks: list = [ckpt, recorder]
            if spec.inject_fault_at is not None:
                callbacks.insert(0, _FaultAt(spec.inject_fault_at))
            with entry.lock:
                if spec.resume:
                    restored = ckpt.restore_latest(vqmc)
                    if restored is not None:
                        job.step = vqmc.global_step
                remaining = max(0, spec.iterations - vqmc.global_step)
            driver = StepDriver(
                vqmc, remaining, batch_size=spec.batch_size, callbacks=callbacks
            )
            job.state = JobState.RUNNING
            driver.begin()
            try:
                while not driver.done:
                    if job.cancel_event.is_set():
                        driver.cancel()
                        with entry.lock:
                            path = ckpt.write(vqmc, vqmc.global_step)
                        job.checkpoint_path = str(path)
                        break
                    # The entry lock is held for exactly one step: queries
                    # batched against this (training) model interleave at
                    # step boundaries, never mid-update.
                    with entry.lock:
                        result = driver.step_once()
                    if result is not None:
                        job.step = vqmc.global_step
                        job.energy = result.stats.mean
            except BaseException as exc:
                with entry.lock:  # teardown checkpoints/dumps read model state
                    driver.finish(exc)
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = JobState.FAILED
                job.health = health.verdict
                if recorder.dumped:
                    job.flight_dump = str(recorder.dumped[-1])
                self.metrics.counter("serve.jobs.failed").inc()
                return
            with entry.lock:  # teardown checkpoints read model state
                driver.finish(None)
            job.health = health.verdict
            if ckpt.latest() is not None:
                job.checkpoint_path = str(ckpt.latest())
            if job.cancel_event.is_set():
                job.state = JobState.CANCELLED
                self.metrics.counter("serve.jobs.cancelled").inc()
            else:
                with entry.lock:
                    stats = vqmc.evaluate(batch_size=spec.batch_size)
                job.result = {
                    "mean": stats.mean,
                    "std": stats.std,
                    "sem": stats.sem,
                    "count": stats.count,
                    "steps": vqmc.global_step,
                }
                job.state = JobState.COMPLETED
                self.metrics.counter("serve.jobs.completed").inc()
        finally:
            job._finished = time.monotonic()
            self.cache.unpin(key)

    # -- introspection ------------------------------------------------------------

    def healthz(self) -> dict:
        return {
            "status": "ok" if not self._stop.is_set() else "stopping",
            "workers": len(self._workers),
            "queue": self.queue.stats(),
            "cache": self.cache.stats(),
            "batcher": self.batcher.stats(),
            "jobs": {
                state: sum(1 for j in self.jobs() if j.state == state)
                for state in JobState.ALL
            },
        }

    # -- HTTP ----------------------------------------------------------------------

    def start_http(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Start the HTTP front end; returns the bound port."""
        if self._http is not None:
            return self._http.server_address[1]
        handler = _make_handler(self)
        self._http = ThreadingHTTPServer((host, port), handler)
        self._http.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._http.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-http",
            daemon=True,
        )
        self._http_thread.start()
        return self._http.server_address[1]

    def shutdown(self) -> None:
        """Stop HTTP, drain the batcher, stop the worker pool."""
        self._stop.set()
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
            self._http = None
        if self._http_thread is not None:
            self._http_thread.join(5.0)
            self._http_thread = None
        self.batcher.close()
        for t in self._workers:
            t.join(5.0)


# -- HTTP plumbing ---------------------------------------------------------------


def _make_handler(app: VQMCServer):
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve/1"
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):  # noqa: D102 — silence stderr chatter
            del fmt, args

        # -- helpers --------------------------------------------------------------

        def _send(self, code: int, payload: dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length == 0:
                return {}
            raw = self.rfile.read(length)
            try:
                parsed = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"request body is not valid JSON: {exc}")
            if not isinstance(parsed, dict):
                raise ProtocolError("request body must be a JSON object")
            return parsed

        def _route(self, method: str) -> None:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            try:
                self._dispatch(method, parts)
            except ProtocolError as exc:
                self._send(400, {"error": str(exc)})
            except AdmissionError as exc:
                self._send(429, {"error": exc.reason, "detail": exc.detail})
            except KeyError as exc:
                self._send(404, {"error": str(exc.args[0]) if exc.args else "not found"})
            except TimeoutError as exc:
                self._send(504, {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001 — HTTP boundary
                self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

        def _dispatch(self, method: str, parts: list[str]) -> None:
            if method == "GET" and parts == ["healthz"]:
                self._send(200, app.healthz())
            elif method == "GET" and parts == ["metrics"]:
                self._send(200, app.metrics.snapshot())
            elif method == "GET" and parts == ["jobs"]:
                self._send(200, {"jobs": [j.status_json() for j in app.jobs()]})
            elif method == "GET" and len(parts) == 2 and parts[0] == "jobs":
                self._send(200, app.job(parts[1]).status_json())
            elif (
                method == "GET"
                and len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "result"
            ):
                job = app.job(parts[1])
                if job.state != JobState.COMPLETED:
                    self._send(
                        409, {"error": f"job {job.id} is {job.state}", "state": job.state}
                    )
                else:
                    self._send(200, {"id": job.id, "result": job.result})
            elif method == "POST" and parts == ["jobs"]:
                job = app.submit(self._read_json())
                self._send(201, {"id": job.id, "state": job.state,
                                 "estimated_seconds": job.estimated_seconds})
            elif (
                method == "POST"
                and len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "cancel"
            ):
                job = app.cancel(parts[1])
                self._send(200, {"id": job.id, "state": job.state})
            elif method == "POST" and parts in (["sample"], ["energy"]):
                self._send(200, app.query(self._read_json(), kind=parts[0]))
            elif method == "POST" and parts == ["shutdown"]:
                self._send(200, {"status": "shutting down"})
                threading.Thread(target=app.shutdown, daemon=True).start()
            else:
                self._send(404, {"error": f"no route {method} /{'/'.join(parts)}"})

        def do_GET(self) -> None:  # noqa: N802 — http.server API
            self._route("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._route("POST")

    return Handler
