"""Priority job queue with planner-driven admission control.

Admission happens at the door, not in the worker: a submission is costed
with the calibrated cluster models (:func:`repro.cluster.planner.
plan_parallelism` — the same per-iteration estimates the paper's scaling
analysis is built on) and rejected immediately when it would oversubscribe
the server:

- ``max_pending`` — bound on queued-but-not-running jobs (backpressure);
- ``max_job_seconds`` — bound on one job's *estimated* total compute
  (``best_plan.iteration_time × iterations``); absurdly large requests
  never enter the queue;
- ``max_backlog_seconds`` — bound on the queue's aggregate estimated
  backlog per worker; the server stops promising work it cannot schedule.

Rejected submissions raise :class:`AdmissionError` (HTTP 429) carrying the
measured reason, so clients can re-shape the request instead of guessing.

Ordering: higher ``priority`` first, FIFO within a priority class (a
monotonic sequence number breaks ties — no starvation inside a class).
"""

from __future__ import annotations

import heapq
import threading

from repro.serve.protocol import JobSpec

__all__ = ["AdmissionError", "JobQueue", "estimate_job_seconds"]


class AdmissionError(RuntimeError):
    """Submission rejected by admission control (maps to HTTP 429)."""

    def __init__(self, reason: str, detail: dict | None = None):
        self.reason = reason
        self.detail = detail or {}
        super().__init__(reason)


def estimate_job_seconds(spec: JobSpec) -> float:
    """Planner cost estimate for one job: best-plan iteration time × steps.

    Uses the single-device plan (the serve worker pool is a thread pool,
    not a GPU grid), so the estimate is the calibrated serial cost model —
    coarse, but monotone in the quantities that matter for admission
    (n, batch size, iterations).
    """
    from repro.cluster.planner import plan_parallelism

    plans = plan_parallelism(spec.n, spec.batch_size)
    best = plans[0]
    return float(best.iteration_time) * spec.iterations


class JobQueue:
    """Thread-safe priority queue of admitted jobs.

    Items are opaque job records exposing ``.spec`` (a :class:`JobSpec`)
    and ``.id``; the queue never mutates them.
    """

    def __init__(
        self,
        max_pending: int = 64,
        max_job_seconds: float | None = None,
        max_backlog_seconds: float | None = None,
        workers: int = 1,
        estimator=estimate_job_seconds,
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self.max_job_seconds = max_job_seconds
        self.max_backlog_seconds = max_backlog_seconds
        self.workers = max(1, workers)
        self.estimator = estimator
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, object]] = []
        self._seq = 0
        self._backlog_seconds = 0.0
        self.admitted = 0
        self.rejected = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    # -- admission ----------------------------------------------------------------

    def admit(self, job) -> float:
        """Cost, admit, and enqueue ``job``; returns its estimated seconds.

        Raises :class:`AdmissionError` when any admission bound trips.
        The estimate is attached to the job as ``job.estimated_seconds``.
        """
        estimate = float(self.estimator(job.spec))
        with self._cond:
            if len(self._heap) >= self.max_pending:
                self.rejected += 1
                raise AdmissionError(
                    "queue full",
                    {"pending": len(self._heap), "max_pending": self.max_pending},
                )
            if self.max_job_seconds is not None and estimate > self.max_job_seconds:
                self.rejected += 1
                raise AdmissionError(
                    "job too large",
                    {
                        "estimated_seconds": estimate,
                        "max_job_seconds": self.max_job_seconds,
                    },
                )
            if self.max_backlog_seconds is not None:
                projected = (self._backlog_seconds + estimate) / self.workers
                if projected > self.max_backlog_seconds:
                    self.rejected += 1
                    raise AdmissionError(
                        "backlog over budget",
                        {
                            "projected_backlog_seconds": projected,
                            "max_backlog_seconds": self.max_backlog_seconds,
                        },
                    )
            job.estimated_seconds = estimate
            heapq.heappush(self._heap, (-job.spec.priority, self._seq, job))
            self._seq += 1
            self._backlog_seconds += estimate
            self.admitted += 1
            self._cond.notify()
        return estimate

    # -- consumption --------------------------------------------------------------

    def get(self, timeout: float | None = None):
        """Pop the highest-priority job, or ``None`` on timeout."""
        with self._cond:
            if not self._heap:
                self._cond.wait(timeout)
            if not self._heap:
                return None
            _, _, job = heapq.heappop(self._heap)
            self._backlog_seconds = max(
                0.0, self._backlog_seconds - getattr(job, "estimated_seconds", 0.0)
            )
            return job

    def remove(self, job_id: str) -> bool:
        """Drop a still-queued job (cancellation before it ran)."""
        with self._cond:
            for i, (_, _, job) in enumerate(self._heap):
                if job.id == job_id:
                    self._heap[i] = self._heap[-1]
                    self._heap.pop()
                    heapq.heapify(self._heap)
                    self._backlog_seconds = max(
                        0.0,
                        self._backlog_seconds
                        - getattr(job, "estimated_seconds", 0.0),
                    )
                    return True
        return False

    def stats(self) -> dict:
        with self._lock:
            return {
                "pending": len(self._heap),
                "max_pending": self.max_pending,
                "backlog_seconds": self._backlog_seconds,
                "admitted": self.admitted,
                "rejected": self.rejected,
            }
