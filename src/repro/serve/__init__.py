"""VQMC-as-a-service: a long-lived multi-tenant solver server.

The repo can train, checkpoint, recover, and trace — this package makes
those capabilities *servable*: a stdlib-only job server
(:class:`~repro.serve.server.VQMCServer`) holding a priority queue with
planner-driven admission control (:mod:`repro.serve.jobqueue`), a worker
pool driving jobs through the re-entrant
:class:`~repro.core.vqmc.StepDriver`, a warm-model LRU cache with pinning
(:mod:`repro.serve.cache`), and a request batcher coalescing concurrent
sample/energy queries into single forward passes
(:mod:`repro.serve.batcher`). ``tools/serve.py`` is the CLI;
``docs/serving.md`` documents endpoints, the job lifecycle, and the
batching-window semantics.
"""

from repro.serve.batcher import BatcherClosed, PendingQuery, RequestBatcher
from repro.serve.cache import CacheEntry, WarmModelCache
from repro.serve.client import ServeAPIError, ServeClient
from repro.serve.jobqueue import AdmissionError, JobQueue, estimate_job_seconds
from repro.serve.protocol import (
    JobSpec,
    JobState,
    ModelKey,
    ProtocolError,
    QuerySpec,
)
from repro.serve.server import Job, VQMCServer, build_trainer

__all__ = [
    "AdmissionError",
    "BatcherClosed",
    "CacheEntry",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobState",
    "ModelKey",
    "PendingQuery",
    "ProtocolError",
    "QuerySpec",
    "RequestBatcher",
    "ServeAPIError",
    "ServeClient",
    "VQMCServer",
    "WarmModelCache",
    "build_trainer",
    "estimate_job_seconds",
]
