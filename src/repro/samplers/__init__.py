"""Configuration samplers.

- :class:`AutoregressiveSampler` (AUTO) — exact i.i.d. samples from a
  normalised autoregressive wavefunction; ``n`` forward passes per batch
  (Algorithm 1), embarrassingly parallel across samples.
- :class:`MetropolisSampler` (MCMC) — random-walk Metropolis–Hastings over
  ``|ψ|²`` with multiple chains, burn-in and thinning (§2.2, §6.2).
- :mod:`repro.samplers.diagnostics` — autocorrelation time, effective sample
  size, Gelman–Rubin R̂.
"""

from repro.samplers.base import Sampler, SamplerStats
from repro.samplers.autoregressive import AutoregressiveSampler
from repro.samplers.metropolis import MetropolisSampler, default_burn_in
from repro.samplers.tempering import ParallelTemperingSampler, geometric_temperatures
from repro.samplers.enumeration import EnumerationSampler
from repro.samplers.adaptive import AdaptiveBurnInSampler
from repro.samplers import diagnostics

__all__ = [
    "Sampler",
    "SamplerStats",
    "AutoregressiveSampler",
    "MetropolisSampler",
    "ParallelTemperingSampler",
    "geometric_temperatures",
    "EnumerationSampler",
    "AdaptiveBurnInSampler",
    "default_burn_in",
    "diagnostics",
]
