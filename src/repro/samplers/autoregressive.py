"""Exact autoregressive sampling (paper Algorithm 1, batched).

One batch of exact i.i.d. samples costs exactly ``n`` forward passes,
independent of batch size (each pass processes the whole batch) — this is
the deterministic, burn-in-free cost that makes the sampling step
embarrassingly parallel across devices.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import WaveFunction
from repro.samplers.base import Sampler, SamplerStats

__all__ = ["AutoregressiveSampler"]


class AutoregressiveSampler(Sampler):
    """Draws exact samples from a normalised autoregressive wavefunction."""

    exact = True

    def sample(
        self, model: WaveFunction, batch_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        if not model.is_normalized:
            raise TypeError(
                f"{type(model).__name__} is not normalised/autoregressive; "
                "exact sampling requires a MADE-style model (use MetropolisSampler)"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        x = model.sample(batch_size, rng)
        self._stats = SamplerStats(forward_passes=model.n)
        return x
