"""Exact autoregressive sampling (paper Algorithm 1, batched).

Two execution paths produce identical samples from identical RNG streams:

- **incremental** (default for MADE): the :mod:`repro.perf.incremental`
  kernel advances cached hidden pre-activations with masked rank-1 column
  updates — O(n·h) work per batch row, equivalent to *less than two* full
  forward passes for the paper's architecture;
- **naive**: ``model.sample(method='naive')`` — ``n`` full forward passes
  per batch (each pass advances the whole batch one site). This is the
  burn-in-free cost Figure 1 annotates, and remains the path for
  non-MADE normalised models (mean-field, RNN).

``last_stats`` reports both the nominal pass count and the measured
``forward_pass_equivalents`` so cost models see the true price, and
``extras['fast_path']`` records which kernel ran. A MADE that cannot take
the fast path (``method='auto'``) falls back loudly via ``warnings.warn``
— never silently.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.models.base import WaveFunction
from repro.obs.tracer import NULL_TRACER
from repro.perf.incremental import incremental_sample, supports_incremental
from repro.samplers.base import Sampler, SamplerStats

__all__ = ["AutoregressiveSampler"]


class AutoregressiveSampler(Sampler):
    """Draws exact samples from a normalised autoregressive wavefunction.

    Parameters
    ----------
    method:
        ``'auto'`` (default) — incremental kernel whenever the model
        supports it, warn-and-fall-back otherwise; ``'incremental'`` —
        require the fast path (raises if unsupported); ``'naive'`` — force
        the reference full-forward-pass path.
    """

    exact = True

    def __init__(self, method: str = "auto"):
        if method not in ("auto", "incremental", "naive"):
            raise ValueError(f"unknown sampling method {method!r}")
        self.method = method
        #: span recorder; :class:`repro.core.VQMC` attaches its tracer here
        #: so fast-path vs. fallback shows up nested inside ``sample`` spans
        self.tracer = NULL_TRACER

    def sample(
        self, model: WaveFunction, batch_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        if not model.is_normalized:
            raise TypeError(
                f"{type(model).__name__} is not normalised/autoregressive; "
                "exact sampling requires a MADE-style model (use MetropolisSampler)"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")

        use_fast = self.method in ("auto", "incremental") and supports_incremental(
            model
        )
        if self.method == "incremental" and not use_fast:
            raise TypeError(
                f"method='incremental' requires a MADE-style model, "
                f"got {type(model).__name__}"
            )
        if use_fast:
            try:
                with self.tracer.span(
                    "sample.incremental", batch=batch_size, n=model.n
                ):
                    result = incremental_sample(model, batch_size, rng)
            except NotImplementedError as exc:
                if self.method == "incremental":
                    raise
                warnings.warn(
                    f"incremental sampling unavailable for "
                    f"{type(model).__name__} ({exc}); falling back to the "
                    "naive n-forward-pass sampler",
                    RuntimeWarning,
                    stacklevel=2,
                )
                use_fast = False
        if use_fast:
            equiv = result.forward_pass_equivalents
            self._stats = SamplerStats(
                forward_passes=int(np.ceil(equiv)),
                forward_pass_equivalents=equiv,
                extras={"fast_path": "incremental", "macs": result.macs},
            )
            return result.samples

        if self.method == "auto" and _is_made(model):
            warnings.warn(
                f"{type(model).__name__} looks like a MADE but its layer "
                "stack is not supported by the incremental kernel; falling "
                "back to the naive n-forward-pass sampler",
                RuntimeWarning,
                stacklevel=2,
            )
        with self.tracer.span("sample.naive", batch=batch_size, n=model.n):
            if _is_made(model):
                x = model.sample(batch_size, rng, method="naive")
            else:
                x = model.sample(batch_size, rng)
        self._stats = SamplerStats(
            forward_passes=model.n,
            forward_pass_equivalents=float(model.n),
            extras={"fast_path": "naive"},
        )
        return x


def _is_made(model: WaveFunction) -> bool:
    from repro.models.made import MADE

    return isinstance(model, MADE)
