"""Random-walk Metropolis–Hastings sampling of ``|ψθ|²`` (paper §2.2, §5.1).

The proposal flips one uniformly-chosen bit (the standard random-walk move
for spin systems); acceptance probability is

    A(x → x') = min(1, πθ(x')/πθ(x)) = min(1, exp(2 (log ψ(x') - log ψ(x)))) ,

which is symmetric-proposal Metropolis, hence satisfies detailed balance
w.r.t. πθ. Multiple chains run batched — each MH step is a single network
forward over all chains, exactly how a GPU implementation would batch it.

The paper's default scheme (§5.1): 2 chains, burn-in ``k = 3n + 100`` steps
per chain, no thinning; §6.2's ablations vary ``k`` (Scheme 1) and the
thinning stride (Scheme 2), both expressible here via ``burn_in``/``thin``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.models.base import WaveFunction
from repro.samplers.base import Sampler, SamplerStats
from repro.tensor.tensor import no_grad

__all__ = ["MetropolisSampler", "default_burn_in"]


def default_burn_in(n: int) -> int:
    """The paper's heuristic burn-in: ``k = 3n + 100`` (§5.1)."""
    return 3 * n + 100


class MetropolisSampler(Sampler):
    """Multi-chain random-walk Metropolis–Hastings sampler.

    Parameters
    ----------
    n_chains:
        Number of independent chains (paper default: 2).
    burn_in:
        Steps discarded per chain before collection; an int, or a callable
        ``n -> k`` (default: the paper's ``3n + 100``).
    thin:
        Collect every ``thin``-th post-burn-in state (paper default 1;
        §6.2 Scheme 2 uses 2/5/10).
    persistent:
        If True, chains keep their state across :meth:`sample` calls and
        burn-in is only paid on the first call. The paper's cost model
        re-burns every iteration (Fig. 1), so the default is False.
    proposal:
        Move type: ``'flip'`` (one uniformly chosen bit — the paper's move),
        ``'multi_flip'`` (``flips`` independent bits per proposal; larger
        steps, lower acceptance) or ``'exchange'`` (swap the values of two
        random sites — preserves total magnetisation, the standard move for
        particle-number-conserving sectors). All are symmetric proposals, so
        the Metropolis ratio is unchanged.
    """

    exact = False

    def __init__(
        self,
        n_chains: int = 2,
        burn_in: int | Callable[[int], int] | None = None,
        thin: int = 1,
        persistent: bool = False,
        proposal: str = "flip",
        flips: int = 2,
    ):
        if n_chains < 1:
            raise ValueError(f"need at least one chain, got {n_chains}")
        if thin < 1:
            raise ValueError(f"thin must be >= 1, got {thin}")
        if proposal not in ("flip", "multi_flip", "exchange"):
            raise ValueError(f"unknown proposal {proposal!r}")
        if proposal == "multi_flip" and flips < 1:
            raise ValueError(f"flips must be >= 1, got {flips}")
        self.n_chains = n_chains
        self._burn_in = burn_in if burn_in is not None else default_burn_in
        self.thin = thin
        self.persistent = persistent
        self.proposal = proposal
        self.flips = flips
        self._state: np.ndarray | None = None
        self._log_psi: np.ndarray | None = None

    def burn_in_steps(self, n: int) -> int:
        k = self._burn_in(n) if callable(self._burn_in) else int(self._burn_in)
        if k < 0:
            raise ValueError(f"negative burn-in {k}")
        return k

    def reset(self) -> None:
        """Forget persistent chain state."""
        self._state = None
        self._log_psi = None

    # -- single MH sweep over all chains ------------------------------------------

    def _propose(self, chains: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
        c = chains.shape[0]
        proposal = chains.copy()
        if self.proposal == "flip":
            sites = rng.integers(0, n, size=c)
            proposal[np.arange(c), sites] = 1.0 - proposal[np.arange(c), sites]
        elif self.proposal == "multi_flip":
            for _ in range(self.flips):
                sites = rng.integers(0, n, size=c)
                proposal[np.arange(c), sites] = 1.0 - proposal[np.arange(c), sites]
        else:  # exchange
            i = rng.integers(0, n, size=c)
            j = rng.integers(0, n, size=c)
            rows = np.arange(c)
            proposal[rows, i], proposal[rows, j] = (
                proposal[rows, j].copy(),
                proposal[rows, i].copy(),
            )
        return proposal

    def _step(
        self, model: WaveFunction, rng: np.random.Generator
    ) -> tuple[int, int]:
        """One MH step on every chain (batched). Returns (#accepted, #proposed)."""
        assert self._state is not None and self._log_psi is not None
        chains = self._state
        c = chains.shape[0]
        proposal = self._propose(chains, model.n, rng)
        with no_grad():
            lp_new = model.log_psi(proposal).data
        log_ratio = 2.0 * (lp_new - self._log_psi)
        accept = np.log(rng.random(c)) < log_ratio
        chains[accept] = proposal[accept]
        self._log_psi[accept] = lp_new[accept]
        return int(accept.sum()), c

    def sample(
        self, model: WaveFunction, batch_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        n = model.n
        c = self.n_chains
        stats = SamplerStats()

        need_burn = True
        if self.persistent and self._state is not None:
            if self._state.shape != (c, n):
                raise ValueError(
                    f"persistent state shape {self._state.shape} does not match "
                    f"(n_chains={c}, n={n}); call reset() when switching models"
                )
            need_burn = False
        if self._state is None or not self.persistent:
            self._state = (rng.random((c, n)) < 0.5).astype(np.float64)
            with no_grad():
                self._log_psi = model.log_psi(self._state).data.copy()
            stats.forward_passes += 1

        if need_burn:
            k = self.burn_in_steps(n)
            for _ in range(k):
                acc, prop = self._step(model, rng)
                stats.accepted += acc
                stats.proposals += prop
                stats.forward_passes += 1

        # Collection: one sample per chain per retained step, round-robin, so
        # a batch needs ceil(batch_size / c) retained states per chain and
        # thin * that many MH steps.
        collected: list[np.ndarray] = []
        total = 0
        while total < batch_size:
            for _ in range(self.thin):
                acc, prop = self._step(model, rng)
                stats.accepted += acc
                stats.proposals += prop
                stats.forward_passes += 1
            take = min(c, batch_size - total)
            collected.append(self._state[:take].copy())
            total += take

        if not self.persistent:
            self._state = None
            self._log_psi = None

        self._stats = stats
        return np.concatenate(collected, axis=0)

    # -- cost model hook -------------------------------------------------------------

    def predicted_forward_passes(self, n: int, batch_size: int) -> int:
        """Fig. 1's ``k + thin·bs/c`` cost (plus the init pass)."""
        k = self.burn_in_steps(n)
        import math

        return 1 + k + self.thin * math.ceil(batch_size / self.n_chains)
