"""Exact sampling by full enumeration (small n; the testing gold standard).

Materialises ``πθ`` over all 2^n basis states and samples indices from the
exact multinomial. Works for *any* wavefunction — normalised or not — so it
provides ground-truth samples to validate both the autoregressive sampler
(must agree exactly in distribution) and the MCMC samplers (must agree
asymptotically).
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.base import index_to_bits
from repro.models.base import WaveFunction
from repro.samplers.base import Sampler, SamplerStats
from repro.tensor.tensor import no_grad

__all__ = ["EnumerationSampler"]


class EnumerationSampler(Sampler):
    """Draws exact samples by enumerating the full state space (n ≤ 20)."""

    exact = True

    def __init__(self, max_sites: int = 20):
        self.max_sites = max_sites
        self._cache_key: tuple[int, bytes] | None = None
        self._cache_probs: np.ndarray | None = None

    def probabilities(self, model: WaveFunction) -> np.ndarray:
        """Normalised |ψ|² over all basis states; cached per parameter set."""
        if model.n > self.max_sites:
            raise ValueError(
                f"enumeration infeasible for n={model.n} (max {self.max_sites})"
            )
        key = (id(model), model.flat_parameters().tobytes())
        if self._cache_key == key and self._cache_probs is not None:
            return self._cache_probs
        states = index_to_bits(np.arange(2**model.n), model.n)
        with no_grad():
            log_psi = model.log_psi(states).data
        log_p = 2.0 * log_psi
        log_p -= log_p.max()
        p = np.exp(log_p)
        p /= p.sum()
        self._cache_key = key
        self._cache_probs = p
        return p

    def sample(
        self, model: WaveFunction, batch_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        probs = self.probabilities(model)
        idx = rng.choice(probs.size, size=batch_size, p=probs)
        self._stats = SamplerStats(forward_passes=1, extras={"enumerated": probs.size})
        return index_to_bits(idx, model.n)
