"""Adaptive burn-in: run MCMC until the chains *measurably* mix.

The paper's core complaint about MCMC is that the burn-in length is
"undetermined and cannot be parallelized" — practitioners guess (the
paper guesses ``3n + 100``). This wrapper removes the guessing: it extends
the burn-in in rounds until the Gelman–Rubin R̂ of the chains' log-ψ traces
drops below a threshold (or a hard cap is reached), then collects samples
as usual. The cost remains sequential — adaptivity fixes the *guess*, not
the fundamental serial bottleneck, which is exactly the paper's point.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import WaveFunction
from repro.samplers.base import Sampler, SamplerStats
from repro.samplers.diagnostics import gelman_rubin
from repro.samplers.metropolis import MetropolisSampler
from repro.tensor.tensor import no_grad

__all__ = ["AdaptiveBurnInSampler"]


class AdaptiveBurnInSampler(Sampler):
    """Metropolis sampling with R̂-controlled burn-in.

    Parameters
    ----------
    n_chains:
        Chains (≥ 2 — R̂ needs multiple chains).
    rhat_threshold:
        Declare mixed when R̂(log ψ traces over the last window) < this.
    check_every:
        Burn-in steps per adaptation round (also the R̂ window length).
    max_burn_in:
        Hard cap; a warning-level flag (``last_stats.extras['capped']``)
        records hitting it.
    thin:
        Post-burn-in thinning stride.
    """

    exact = False

    def __init__(
        self,
        n_chains: int = 4,
        rhat_threshold: float = 1.05,
        check_every: int = 100,
        max_burn_in: int = 20000,
        thin: int = 1,
    ):
        if n_chains < 2:
            raise ValueError("adaptive burn-in needs >= 2 chains for R-hat")
        if rhat_threshold <= 1.0:
            raise ValueError(f"rhat_threshold must be > 1, got {rhat_threshold}")
        if check_every < 10:
            raise ValueError(f"check_every must be >= 10, got {check_every}")
        self.n_chains = n_chains
        self.rhat_threshold = rhat_threshold
        self.check_every = check_every
        self.max_burn_in = max_burn_in
        self.thin = thin
        self.burn_in_used: int | None = None
        self.final_rhat: float | None = None

    def sample(
        self, model: WaveFunction, batch_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        inner = MetropolisSampler(
            n_chains=self.n_chains, burn_in=0, thin=self.thin, persistent=True
        )
        inner.reset()
        stats = SamplerStats()

        # Initialise chains by sampling a zero-burn-in single state.
        inner.sample(model, self.n_chains, rng)
        stats.forward_passes += inner.last_stats.forward_passes
        stats.accepted += inner.last_stats.accepted
        stats.proposals += inner.last_stats.proposals

        burned = 0
        rhat = np.inf
        while burned < self.max_burn_in:
            traces = np.empty((self.n_chains, self.check_every))
            for t in range(self.check_every):
                acc, prop = inner._step(model, rng)
                stats.accepted += acc
                stats.proposals += prop
                stats.forward_passes += 1
                with no_grad():
                    traces[:, t] = inner._log_psi
            burned += self.check_every
            rhat = gelman_rubin(traces)
            if rhat < self.rhat_threshold:
                break
        self.burn_in_used = burned
        self.final_rhat = float(rhat)
        stats.extras["burn_in_used"] = burned
        stats.extras["rhat"] = float(rhat)
        stats.extras["capped"] = burned >= self.max_burn_in and rhat >= self.rhat_threshold

        # Collection through the (already burned-in) persistent inner sampler.
        x = inner.sample(model, batch_size, rng)
        stats.forward_passes += inner.last_stats.forward_passes
        stats.accepted += inner.last_stats.accepted
        stats.proposals += inner.last_stats.proposals
        self._stats = stats
        return x
