"""MCMC quality diagnostics.

The paper's central argument is that MCMC sample quality degrades with
dimension (burn-in and correlations grow). These diagnostics quantify that:

- :func:`autocorrelation` / :func:`integrated_autocorr_time` — how correlated
  successive chain states are (Sokal's windowing estimator).
- :func:`effective_sample_size` — how many independent samples a chain is
  worth.
- :func:`gelman_rubin` — the multi-chain R̂ convergence statistic.
- :func:`total_variation_distance` — exact distance between an empirical
  histogram and a target distribution (used in tests on enumerable spaces).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "autocorrelation",
    "integrated_autocorr_time",
    "effective_sample_size",
    "gelman_rubin",
    "total_variation_distance",
]


def autocorrelation(series: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Normalised autocorrelation function of a scalar time series (FFT-based)."""
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("autocorrelation expects a 1-D series")
    t = series.size
    if t < 2:
        raise ValueError("series too short")
    centred = series - series.mean()
    # Zero-pad to the next power of two for a linear (not circular) correlation.
    size = 1 << (2 * t - 1).bit_length()
    fft = np.fft.rfft(centred, size)
    acf = np.fft.irfft(fft * np.conjugate(fft), size)[:t].real
    if acf[0] <= 0:
        return np.zeros(1 if max_lag is None else max_lag + 1)
    acf = acf / acf[0]
    if max_lag is not None:
        acf = acf[: max_lag + 1]
    return acf


def integrated_autocorr_time(series: np.ndarray, window_c: float = 5.0) -> float:
    """Sokal's adaptive-window estimate of τ_int = 1 + 2 Σ ρ(t).

    The sum is truncated at the smallest ``M`` with ``M >= c·τ(M)``; for an
    i.i.d. series this returns ≈ 1.
    """
    rho = autocorrelation(series)
    tau = 1.0
    for m in range(1, rho.size):
        tau = 1.0 + 2.0 * rho[1 : m + 1].sum()
        if m >= window_c * tau:
            break
    return max(tau, 1.0)


def effective_sample_size(series: np.ndarray) -> float:
    """ESS = T / τ_int for a scalar chain statistic."""
    series = np.asarray(series, dtype=np.float64)
    return series.size / integrated_autocorr_time(series)


def gelman_rubin(chains: np.ndarray) -> float:
    """Potential-scale-reduction factor R̂ over ``(n_chains, T)`` scalar chains.

    Values near 1 indicate the chains agree (mixed); values well above 1
    mean the burn-in was insufficient.
    """
    chains = np.asarray(chains, dtype=np.float64)
    if chains.ndim != 2 or chains.shape[0] < 2:
        raise ValueError("gelman_rubin expects (n_chains >= 2, T) array")
    m, t = chains.shape
    chain_means = chains.mean(axis=1)
    chain_vars = chains.var(axis=1, ddof=1)
    w = chain_vars.mean()
    b = t * chain_means.var(ddof=1)
    if w == 0.0:
        # Frozen chains: mixed only if they froze at the same value;
        # otherwise they will never agree — R̂ is infinite, not 1.
        return 1.0 if b == 0.0 else float("inf")
    var_hat = (t - 1) / t * w + b / t
    return float(np.sqrt(var_hat / w))


def total_variation_distance(
    samples: np.ndarray, target_probs: np.ndarray, n_states: int | None = None
) -> float:
    """TV distance between the empirical distribution of integer-coded
    samples and an explicit probability vector."""
    target_probs = np.asarray(target_probs, dtype=np.float64)
    n_states = target_probs.size if n_states is None else n_states
    counts = np.bincount(np.asarray(samples, dtype=np.int64), minlength=n_states)
    empirical = counts / counts.sum()
    return 0.5 * float(np.abs(empirical - target_probs).sum())
