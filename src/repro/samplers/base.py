"""Sampler interface."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.base import WaveFunction

__all__ = ["Sampler", "SamplerStats"]


@dataclass
class SamplerStats:
    """Bookkeeping from the most recent :meth:`Sampler.sample` call.

    ``forward_passes`` counts network evaluations, the quantity the paper's
    Figure 1 compares (``k + bs/c`` for MCMC vs ``n`` for AUTO); it is what
    the cluster cost model consumes.

    ``forward_pass_equivalents`` is the *true* cost in units of one batched
    forward pass, measured from the operations actually performed. Samplers
    that run whole passes leave it ``None`` (it then equals
    ``forward_passes``); the incremental autoregressive kernel reports a
    fractional value well below ``n`` — see ``docs/performance.md``.
    """

    forward_passes: int = 0
    proposals: int = 0
    accepted: int = 0
    forward_pass_equivalents: float | None = None
    extras: dict = field(default_factory=dict)

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.proposals if self.proposals else float("nan")

    @property
    def pass_equivalents(self) -> float:
        """Measured cost in forward-pass units, falling back to the count."""
        if self.forward_pass_equivalents is not None:
            return self.forward_pass_equivalents
        return float(self.forward_passes)


class Sampler:
    """Base class: draws a batch of configurations from ``πθ ∝ ψθ²``."""

    #: whether the samples are exact draws from πθ (True) or asymptotic (False)
    exact: bool = False

    def sample(
        self, model: WaveFunction, batch_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return an ``(batch_size, n)`` array of configurations."""
        raise NotImplementedError

    @property
    def last_stats(self) -> SamplerStats:
        return getattr(self, "_stats", SamplerStats())
