"""Parallel tempering (replica-exchange) Metropolis sampling.

The strongest practical mitigation for the slow mixing the paper attributes
to random-walk MH in high dimension: run a ladder of replicas sampling the
*flattened* distributions ``π_β(x) ∝ π(x)^β`` for inverse temperatures
``1 = β₀ > β₁ > … > β_{R-1}``, and periodically propose swaps between
neighbouring rungs with the Metropolis ratio

    A(swap i↔i+1) = min(1, exp((β_i − β_{i+1}) (log π(x_{i+1}) − log π(x_i)))) .

Hot replicas cross energy barriers easily and feed decorrelated
configurations down to the β = 1 rung, whose samples are the output.
Detailed balance holds rung-wise and for the swap moves, so the β = 1
marginal is still exactly π.

This is an *extension* beyond the paper (whose MCMC baseline is plain MH,
§5.1); it lets users quantify how much of the MCMC gap autoregressive
sampling closes versus what smarter chains recover — see
``bench_ablation_tempering.py``.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import WaveFunction
from repro.samplers.base import Sampler, SamplerStats
from repro.tensor.tensor import no_grad

__all__ = ["ParallelTemperingSampler", "geometric_temperatures"]


def geometric_temperatures(n_replicas: int, beta_min: float = 0.1) -> np.ndarray:
    """Geometric inverse-temperature ladder from 1 down to ``beta_min``."""
    if n_replicas < 2:
        raise ValueError(f"need at least 2 replicas, got {n_replicas}")
    if not 0 < beta_min < 1:
        raise ValueError(f"beta_min must be in (0, 1), got {beta_min}")
    return np.geomspace(1.0, beta_min, n_replicas)


class ParallelTemperingSampler(Sampler):
    """Replica-exchange MH over ``|ψ|²`` with single-bit-flip proposals.

    Parameters
    ----------
    n_replicas:
        Rungs in the temperature ladder (β = 1 rung produces the samples).
    beta_min:
        Lowest inverse temperature (hottest replica).
    swap_every:
        MH sweeps between swap attempts.
    burn_in:
        Discarded sweeps before collection; int or callable ``n -> k``
        (default: the paper's 3n + 100).
    chains_per_replica:
        Independent ladders run in parallel (batched through the network).
    """

    exact = False

    def __init__(
        self,
        n_replicas: int = 4,
        beta_min: float = 0.2,
        swap_every: int = 5,
        burn_in=None,
        chains_per_replica: int = 2,
    ):
        from repro.samplers.metropolis import default_burn_in

        if swap_every < 1:
            raise ValueError(f"swap_every must be >= 1, got {swap_every}")
        if chains_per_replica < 1:
            raise ValueError(f"need >= 1 chain per replica, got {chains_per_replica}")
        self.betas = geometric_temperatures(n_replicas, beta_min)
        self.swap_every = swap_every
        self._burn_in = burn_in if burn_in is not None else default_burn_in
        self.chains_per_replica = chains_per_replica

    def burn_in_steps(self, n: int) -> int:
        k = self._burn_in(n) if callable(self._burn_in) else int(self._burn_in)
        if k < 0:
            raise ValueError(f"negative burn-in {k}")
        return k

    # -- moves ------------------------------------------------------------------

    def _mh_sweep(self, model, state, log_psi, rng, stats) -> None:
        """One single-flip MH step on every (replica, chain) pair, batched."""
        r, c, n = state.shape
        flat = state.reshape(r * c, n)
        sites = rng.integers(0, n, size=r * c)
        proposal = flat.copy()
        proposal[np.arange(r * c), sites] = 1.0 - proposal[np.arange(r * c), sites]
        with no_grad():
            lp_new = model.log_psi(proposal).data.reshape(r, c)
        log_ratio = 2.0 * self.betas[:, None] * (lp_new - log_psi)
        accept = np.log(rng.random((r, c))) < log_ratio
        flat_accept = accept.reshape(-1)
        flat[flat_accept] = proposal[flat_accept]
        log_psi[accept] = lp_new[accept]
        stats.accepted += int(accept.sum())
        stats.proposals += r * c
        stats.forward_passes += 1

    def _swap_sweep(self, state, log_psi, rng, stats) -> int:
        """Propose swaps between neighbouring rungs (alternating parity)."""
        r = state.shape[0]
        swaps = 0
        start = int(rng.integers(0, 2))
        for i in range(start, r - 1, 2):
            d_beta = self.betas[i] - self.betas[i + 1]
            log_ratio = 2.0 * d_beta * (log_psi[i + 1] - log_psi[i])
            accept = np.log(rng.random(state.shape[1])) < log_ratio
            if np.any(accept):
                state[i, accept], state[i + 1, accept] = (
                    state[i + 1, accept].copy(),
                    state[i, accept].copy(),
                )
                log_psi[i, accept], log_psi[i + 1, accept] = (
                    log_psi[i + 1, accept].copy(),
                    log_psi[i, accept].copy(),
                )
                swaps += int(accept.sum())
        stats.extras["swaps"] = stats.extras.get("swaps", 0) + swaps
        return swaps

    # -- sampling -------------------------------------------------------------------

    def sample(
        self, model: WaveFunction, batch_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        n = model.n
        r, c = len(self.betas), self.chains_per_replica
        stats = SamplerStats()

        state = (rng.random((r, c, n)) < 0.5).astype(np.float64)
        with no_grad():
            log_psi = model.log_psi(state.reshape(r * c, n)).data.reshape(r, c)
        stats.forward_passes += 1

        sweeps = 0
        for _ in range(self.burn_in_steps(n)):
            self._mh_sweep(model, state, log_psi, rng, stats)
            sweeps += 1
            if sweeps % self.swap_every == 0:
                self._swap_sweep(state, log_psi, rng, stats)

        collected: list[np.ndarray] = []
        total = 0
        while total < batch_size:
            self._mh_sweep(model, state, log_psi, rng, stats)
            sweeps += 1
            if sweeps % self.swap_every == 0:
                self._swap_sweep(state, log_psi, rng, stats)
            take = min(c, batch_size - total)
            collected.append(state[0, :take].copy())  # β = 1 rung only
            total += take

        self._stats = stats
        return np.concatenate(collected, axis=0)
