"""Weight initialisers.

The paper does not specify initialisation; we use the PyTorch defaults its
implementation would have inherited: Kaiming-uniform fan-in scaling for
linear layers, matching bias bounds.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "uniform_bias", "normal", "zeros"]


def kaiming_uniform(
    rng: np.random.Generator, out_features: int, in_features: int, gain: float = 1.0
) -> np.ndarray:
    """Kaiming-uniform weights: ``U(-b, b)`` with ``b = gain * sqrt(3/fan_in)``.

    (PyTorch's ``nn.Linear`` default uses ``a=sqrt(5)`` leaky-relu gain which
    works out to ``1/sqrt(fan_in)`` bounds; we keep the simpler classic form —
    the VQMC results are insensitive to this constant.)
    """
    bound = gain * np.sqrt(3.0 / max(1, in_features))
    return rng.uniform(-bound, bound, size=(out_features, in_features))


def uniform_bias(
    rng: np.random.Generator, out_features: int, in_features: int
) -> np.ndarray:
    """PyTorch-style bias init: ``U(-1/sqrt(fan_in), 1/sqrt(fan_in))``."""
    bound = 1.0 / np.sqrt(max(1, in_features))
    return rng.uniform(-bound, bound, size=(out_features,))


def normal(
    rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.01
) -> np.ndarray:
    """Small-variance Gaussian init (standard for RBM couplings)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)
