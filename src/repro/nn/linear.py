"""Fully-connected layers: plain (``FC``) and masked (``MaskedFC``)."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.utils.rng import init_rng

__all__ = ["Linear", "MaskedLinear"]


class Linear(Module):
    """``y = x @ W.T + b`` — the paper's ``FC_{a,b}``.

    Parameters
    ----------
    in_features, out_features:
        Layer dimensions (``a`` and ``b`` in the paper's notation).
    bias:
        Include an additive bias term.
    rng:
        Generator used for weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        weight_std: float | None = None,
    ):
        super().__init__()
        rng = init_rng(rng)  # seeded fallback: replays bit-identically
        self.in_features = in_features
        self.out_features = out_features
        if weight_std is not None:
            w = init.normal(rng, (out_features, in_features), std=weight_std)
        else:
            w = init.kaiming_uniform(rng, out_features, in_features)
        self.weight = Parameter(w, name="weight")
        if bias:
            self.bias: Parameter | None = Parameter(
                init.uniform_bias(rng, out_features, in_features), name="bias"
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class MaskedLinear(Linear):
    """Linear layer with a fixed binary connectivity mask (``MaskedFC``).

    The mask is a constant buffer, not a parameter: masked-out weights never
    receive gradient and never contribute to the forward pass, enforcing the
    autoregressive property of MADE structurally.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        mask: np.ndarray,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(in_features, out_features, bias=bias, rng=rng)
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != (out_features, in_features):
            raise ValueError(
                f"mask shape {mask.shape} != weight shape {(out_features, in_features)}"
            )
        self.mask = mask

    def forward(self, x: Tensor) -> Tensor:
        return F.masked_linear(x, self.weight, self.mask, self.bias)

    def effective_weight(self) -> np.ndarray:
        """The masked weight matrix actually applied in the forward pass."""
        return self.weight.data * self.mask

    def __repr__(self) -> str:
        live = int(self.mask.sum())
        return (
            f"MaskedLinear({self.in_features}, {self.out_features}, "
            f"live_weights={live}/{self.mask.size})"
        )
