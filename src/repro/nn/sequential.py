"""Sequential module container."""

from __future__ import annotations

from typing import Iterator

from repro.nn.module import Module

__all__ = ["Sequential"]


class Sequential(Module):
    """Chain of modules applied in order.

    Children register under their index, so ``named_parameters`` yields
    deterministic ``"0.weight"``-style names.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.nn import Linear, ReLU, Sequential
    >>> rng = np.random.default_rng(0)
    >>> net = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
    >>> len(net)
    3
    """

    def __init__(self, *modules: Module):
        super().__init__()
        for i, module in enumerate(modules):
            if not isinstance(module, Module):
                raise TypeError(
                    f"Sequential expects Module instances, got "
                    f"{type(module).__name__} at position {i}"
                )
            setattr(self, str(i), module)
        self._length = len(modules)

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> Module:
        if not -self._length <= index < self._length:
            raise IndexError(f"index {index} out of range for {self._length} modules")
        return getattr(self, str(index % self._length))

    def __iter__(self) -> Iterator[Module]:
        return (self[i] for i in range(self._length))

    def forward(self, x):
        for module in self:
            x = module(x)
        return x
