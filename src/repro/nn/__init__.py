"""Neural-network building blocks on top of :mod:`repro.tensor`.

Provides the Module/Parameter system plus the two layer types the paper's
architectures need: plain fully-connected layers (RBM) and masked
fully-connected layers (MADE).
"""

from repro.nn.module import Module, Parameter
from repro.nn.sequential import Sequential
from repro.nn.linear import Linear, MaskedLinear
from repro.nn.activations import ReLU, Sigmoid, Tanh, LogSigmoid, Softplus
from repro.nn.masks import made_masks, check_autoregressive
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "MaskedLinear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "LogSigmoid",
    "Softplus",
    "made_masks",
    "check_autoregressive",
    "init",
]
