"""Activation modules (thin wrappers over the functional API)."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor.tensor import Tensor

__all__ = ["ReLU", "Sigmoid", "Tanh", "LogSigmoid", "Softplus"]


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class LogSigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.log_sigmoid()


class Softplus(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.softplus()
