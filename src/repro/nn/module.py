"""Module/Parameter system (a small ``torch.nn.Module`` equivalent).

Parameters register themselves by attribute assignment; ``parameters()``
walks the module tree in deterministic (attribute insertion) order, which
matters for the distributed code: every rank must flatten parameters in the
same order for allreduce to average corresponding entries.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A :class:`Tensor` that is a trainable leaf (``requires_grad=True``)."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__``; this base class tracks them for ``parameters()``,
    ``state_dict()`` and ``zero_grad()``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_params", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._params[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    # -- traversal ------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for key, p in self._params.items():
            yield (f"{prefix}{key}", p)
        for key, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{key}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters (the paper's ``d = 2hn + h + n``)."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- (de)serialisation ------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            p.data[...] = state[name]  # repro-lint: disable=ag-tensor-mutation -- checkpoint load runs between steps, no live graph
            p.bump_version()

    # -- flat-vector view (used by SR and the distributed allreduce) -----------------

    def flat_parameters(self) -> np.ndarray:
        """Concatenate all parameters into one vector (copy)."""
        return np.concatenate([p.data.ravel() for p in self.parameters()])

    def set_flat_parameters(self, vec: np.ndarray) -> None:
        """Write a flat vector back into the parameter tensors."""
        offset = 0
        for p in self.parameters():
            n = p.size
            p.data[...] = vec[offset : offset + n].reshape(p.shape)  # repro-lint: disable=ag-tensor-mutation -- optimizer write-back runs after backward, no live graph
            p.bump_version()
            offset += n
        if offset != vec.size:
            raise ValueError(f"flat vector has {vec.size} entries, model needs {offset}")

    def flat_grad(self) -> np.ndarray:
        """Concatenate all gradients into one vector (zeros where grad is None)."""
        parts = []
        for p in self.parameters():
            if p.grad is None:
                parts.append(np.zeros(p.size))
            else:
                parts.append(p.grad.ravel())
        return np.concatenate(parts)

    def set_flat_grad(self, vec: np.ndarray) -> None:
        offset = 0
        for p in self.parameters():
            n = p.size
            p.grad = vec[offset : offset + n].reshape(p.shape).copy()
            offset += n
        if offset != vec.size:
            raise ValueError(f"flat vector has {vec.size} entries, model needs {offset}")

    # -- call protocol -------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
