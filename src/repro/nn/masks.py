"""MADE mask construction (Germain et al., ICML 2015).

A MADE network computes all autoregressive conditionals
``p(x_i | x_{<i})`` in one forward pass by masking the weight matrices of an
ordinary autoencoder so that output unit ``i`` depends only on inputs with
index strictly less than ``i``.

Each input unit gets degree ``m(input_k) = k`` (1-based, natural ordering);
each hidden unit gets a degree ``m(h) ∈ {1, …, n-1}``; connectivity rules:

- input → hidden:  allowed iff ``m(hidden) >= m(input)``
- hidden → output: allowed iff ``m(output) >  m(hidden)``

Output unit ``i`` (degree ``i``) then sees exactly the inputs ``1..i-1``;
in particular output 1 is connected to nothing and its conditional is a
learnable constant (the bias), which is the correct ``p(x_1)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "made_masks",
    "made_masks_deep",
    "check_autoregressive",
    "check_autoregressive_deep",
    "hidden_degrees",
]


def hidden_degrees(
    n: int, hidden: int, rng: np.random.Generator | None = None, strategy: str = "cycle"
) -> np.ndarray:
    """Assign a degree in ``{1, …, n-1}`` to each hidden unit.

    ``cycle`` (default, deterministic) spreads degrees evenly; ``random``
    samples them uniformly as in the original MADE paper's mask-agnostic
    training. For ``n == 1`` there are no usable degrees — the single
    conditional is the output bias — so we return degree 1 everywhere
    (connections are still cut by the output rule ``m(out) > m(hidden)``
    since the only output has degree 1).
    """
    if n < 1:
        raise ValueError(f"need at least one site, got n={n}")
    top = max(1, n - 1)
    if strategy == "cycle":
        return (np.arange(hidden) % top) + 1
    if strategy == "random":
        if rng is None:
            raise ValueError("strategy='random' requires an rng")
        return rng.integers(1, top + 1, size=hidden)
    raise ValueError(f"unknown strategy {strategy!r}")


def made_masks(
    n: int,
    hidden: int,
    rng: np.random.Generator | None = None,
    strategy: str = "cycle",
) -> tuple[np.ndarray, np.ndarray]:
    """Build the (M1, M2) masks for a one-hidden-layer MADE.

    Returns
    -------
    M1 : (hidden, n) input→hidden mask, ``M1[k, d] = 1 iff m_k >= d+1``.
    M2 : (n, hidden) hidden→output mask, ``M2[d, k] = 1 iff d+1 > m_k``.
    """
    m_in = np.arange(1, n + 1)
    m_hid = hidden_degrees(n, hidden, rng=rng, strategy=strategy)
    m1 = (m_hid[:, None] >= m_in[None, :]).astype(np.float64)
    m2 = (m_in[:, None] > m_hid[None, :]).astype(np.float64)
    return m1, m2


def made_masks_deep(
    n: int,
    hiddens: list[int] | tuple[int, ...],
    rng: np.random.Generator | None = None,
    strategy: str = "cycle",
) -> list[np.ndarray]:
    """Masks for a MADE with any number of hidden layers.

    Generalises :func:`made_masks` (Germain et al. §4): every hidden unit in
    every layer carries a degree ``m ∈ {1, …, n-1}``; connections between
    consecutive hidden layers require ``m(next) >= m(prev)``, input→hidden
    requires ``m(hidden) >= m(input)``, and hidden→output requires
    ``m(output) > m(hidden)``.

    Returns ``len(hiddens) + 1`` masks, one per weight matrix, each of
    shape (fan_out, fan_in).
    """
    if not hiddens:
        raise ValueError("need at least one hidden layer")
    degrees = [np.arange(1, n + 1)]
    for h in hiddens:
        degrees.append(hidden_degrees(n, h, rng=rng, strategy=strategy))
    masks = []
    for prev, nxt in zip(degrees[:-1], degrees[1:]):
        masks.append((nxt[:, None] >= prev[None, :]).astype(np.float64))
    out_deg = np.arange(1, n + 1)
    masks.append((out_deg[:, None] > degrees[-1][None, :]).astype(np.float64))
    return masks


def check_autoregressive_deep(masks: list[np.ndarray]) -> None:
    """Composed connectivity of a deep mask stack must be strictly lower
    triangular (output i reachable only from inputs j < i)."""
    conn = masks[0]
    for m in masks[1:]:
        conn = m @ conn
    conn = conn > 0
    if np.any(np.triu(conn)):
        i, j = np.argwhere(np.triu(conn))[0]
        raise ValueError(f"autoregressive violation: output {i} depends on input {j}")


def check_autoregressive(masks: tuple[np.ndarray, np.ndarray]) -> None:
    """Verify the composed connectivity ``M2 @ M1`` is strictly lower triangular.

    ``(M2 @ M1)[i, j] > 0`` means output ``i`` has a path from input ``j``;
    the autoregressive property requires paths only for ``j < i``.
    Raises ``ValueError`` on violation.
    """
    m1, m2 = masks
    conn = (m2 @ m1) > 0
    n = conn.shape[0]
    for i in range(n):
        for j in range(i, n):
            if conn[i, j]:
                raise ValueError(
                    f"autoregressive violation: output {i} depends on input {j}"
                )
