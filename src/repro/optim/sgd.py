"""Stochastic gradient descent with optional classical momentum."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """``θ ← θ - lr · g`` (paper default lr for SGD: 0.1)."""

    def __init__(
        self, params: Sequence[Parameter], lr: float = 0.1, momentum: float = 0.0
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def step(self) -> None:
        if self.momentum == 0.0:
            for p in self.params:
                if p.grad is not None:
                    p.data -= self.lr * p.grad
                    p.bump_version()
            return
        if self._velocity is None:
            self._velocity = [np.zeros_like(p.data) for p in self.params]
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v += p.grad
            p.data -= self.lr * v
            p.bump_version()

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "velocity": None
            if self._velocity is None
            else [v.copy() for v in self._velocity],
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self._velocity = (
            None if state["velocity"] is None else [v.copy() for v in state["velocity"]]
        )
