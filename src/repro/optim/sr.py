"""Stochastic reconfiguration (SR) — stochastic natural gradient (Sorella 1998).

With per-sample log-derivatives ``O_k(x) = ∂ log ψθ(x)/∂θ_k`` the quantum
Fisher / overlap matrix is

    S_{kk'} = ⟨O_k O_{k'}⟩ - ⟨O_k⟩⟨O_{k'}⟩                     (covariance of O)

and the energy gradient (Eq. 5 of the paper, halved) is

    F_k = ⟨(l(x) - L) O_k(x)⟩ .

SR replaces the update direction ``F`` by ``(S + λI)^{-1} F``. The paper's
Eq. 5 writes the Fisher information of πθ, whose log-derivative is
``∇ log π = 2 O``; that matrix is ``4S`` and the factor is absorbed into the
learning rate (we document rather than chase constants — the paper's
settings λ = 0.001, lr = 0.1 are defined w.r.t. this standard convention).

Two solver paths:

- ``dense``: build S explicitly, ``scipy.linalg.solve`` (assume_a='pos').
  Right choice when ``d ≲ 2000``.
- ``cg``: matrix-free conjugate gradient with the centred matvec
  ``S v = Ocᵀ (Oc v) / B`` — O(Bd) per iteration, never forms S. Right
  choice for large models, and the form a distributed implementation needs
  (each matvec is two allreduce-able batched products).

``solver='auto'`` switches on dimension.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse.linalg

__all__ = ["StochasticReconfiguration"]


class StochasticReconfiguration:
    """Natural-gradient preconditioner built from per-sample log-derivatives.

    Parameters
    ----------
    diag_shift:
        Regularisation λ added to the diagonal of S (paper: 0.001).
    solver:
        ``'dense'``, ``'cg'`` or ``'auto'`` (dense below ``dense_threshold``).
    dense_threshold:
        Parameter-count crossover for ``'auto'``.
    cg_tol, cg_maxiter:
        Conjugate-gradient stopping controls (matrix-free path).
    """

    def __init__(
        self,
        diag_shift: float = 1e-3,
        solver: str = "auto",
        dense_threshold: int = 2000,
        cg_tol: float = 1e-10,
        cg_maxiter: int | None = None,
    ):
        if diag_shift < 0:
            raise ValueError(f"diag_shift must be >= 0, got {diag_shift}")
        if solver not in ("dense", "cg", "auto"):
            raise ValueError(f"unknown solver {solver!r}")
        self.diag_shift = diag_shift
        self.solver = solver
        self.dense_threshold = dense_threshold
        self.cg_tol = cg_tol
        self.cg_maxiter = cg_maxiter

    # -- matrix construction ----------------------------------------------------

    @staticmethod
    def fisher_matrix(per_sample_o: np.ndarray) -> np.ndarray:
        """Dense centred overlap matrix ``S`` from ``O`` of shape (B, d)."""
        o = np.asarray(per_sample_o, dtype=np.float64)
        oc = o - o.mean(axis=0, keepdims=True)
        return oc.T @ oc / o.shape[0]

    # -- solve -------------------------------------------------------------------

    def natural_gradient(
        self, per_sample_o: np.ndarray, grad: np.ndarray
    ) -> np.ndarray:
        """Return ``(S + λI)^{-1} grad``."""
        o = np.asarray(per_sample_o, dtype=np.float64)
        grad = np.asarray(grad, dtype=np.float64)
        bsz, d = o.shape
        if grad.shape != (d,):
            raise ValueError(f"grad shape {grad.shape} != ({d},)")

        solver = self.solver
        if solver == "auto":
            solver = "dense" if d <= self.dense_threshold else "cg"

        if solver == "dense":
            s = self.fisher_matrix(o)
            s[np.diag_indices_from(s)] += self.diag_shift
            return scipy.linalg.solve(s, grad, assume_a="pos")

        # Matrix-free CG: S v = Ocᵀ(Oc v)/B + λ v.
        oc = o - o.mean(axis=0, keepdims=True)

        def matvec(v: np.ndarray) -> np.ndarray:
            return oc.T @ (oc @ v) / bsz + self.diag_shift * v

        op = scipy.sparse.linalg.LinearOperator((d, d), matvec=matvec)
        sol, info = scipy.sparse.linalg.cg(
            op,
            grad,
            rtol=self.cg_tol,
            atol=0.0,
            maxiter=self.cg_maxiter,
        )
        if info > 0:
            # CG hit maxiter; the partial solution is still a descent
            # direction (S is PSD + λI), so use it but record the event.
            self.last_cg_incomplete = True
        else:
            self.last_cg_incomplete = False
        return sol

    # -- gradient assembly (shared with the VQMC driver) ---------------------------

    @staticmethod
    def energy_gradient(
        per_sample_o: np.ndarray, local_energies: np.ndarray
    ) -> np.ndarray:
        """Covariance form ``F_k = ⟨(l - ⟨l⟩) O_k⟩`` — half the paper's Eq. 5."""
        o = np.asarray(per_sample_o, dtype=np.float64)
        l = np.asarray(local_energies, dtype=np.float64)
        centred = l - l.mean()
        return centred @ o / o.shape[0]
