"""Stochastic reconfiguration (SR) — stochastic natural gradient (Sorella 1998).

With per-sample log-derivatives ``O_k(x) = ∂ log ψθ(x)/∂θ_k`` the quantum
Fisher / overlap matrix is

    S_{kk'} = ⟨O_k O_{k'}⟩ - ⟨O_k⟩⟨O_{k'}⟩                     (covariance of O)

and the energy gradient (Eq. 5 of the paper, halved) is

    F_k = ⟨(l(x) - L) O_k(x)⟩ .

SR replaces the update direction ``F`` by ``(S + λI)^{-1} F``. The paper's
Eq. 5 writes the Fisher information of πθ, whose log-derivative is
``∇ log π = 2 O``; that matrix is ``4S`` and the factor is absorbed into the
learning rate (we document rather than chase constants — the paper's
settings λ = 0.001, lr = 0.1 are defined w.r.t. this standard convention).

Two solver paths:

- ``dense``: build S explicitly, ``scipy.linalg.solve`` (assume_a='pos').
  Right choice when ``d ≲ 2000``.
- ``cg``: matrix-free conjugate gradient with the centred matvec
  ``S v = Ocᵀ (Oc v) / B`` — O(Bd) per iteration, never forms S. Right
  choice for large models.

``solver='auto'`` switches on dimension.

Distributed solves
------------------
``natural_gradient`` accepts a :class:`~repro.distributed.comm.Communicator`
and then solves the *global* system — the one a single process would build
from the concatenated batch — with every rank holding only its local ``O``
shard:

- centring uses the **global** mean: one allreduce of the length-``d+1``
  vector ``[Σ_local O, B_local]`` yields ``⟨O⟩`` and the global sample
  count in a single collective;
- the dense path allreduces the local ``Ocᵀ Oc`` (d×d — inherent to
  materialising S, and only ever chosen when ``d`` is small);
- the CG path is **matrix-free end to end**: each matvec computes the
  local ``Ocᵀ(Oc v)`` and allreduces that *d-vector* — per-solve
  communication is O(d·iters), never O(d²). This is the jVMC /
  scalable-NQS scheme and the reason SR scales to the paper's
  10,000-dimensional problems.

Every rank receives identical allreduce results (the collective algorithms
are cross-rank bit-reproducible for ``sum``), so all ranks run the same CG
iterates, terminate at the same iteration, and issue congruent collective
sequences — checked under :class:`repro.analysis.CommSanitizer` in the
tests. Solver resolution (``'auto'``) depends only on ``d``, which is
identical everywhere by construction.

Every solve records an :class:`SRSolveInfo` in :attr:`last_solve`
(resolved solver, CG iterations, relative residual, incomplete flag,
collective payload bytes) and, when a :class:`~repro.obs.Metrics` registry
is attached, bumps the ``sr.*`` counters.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.sparse.linalg

from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["StochasticReconfiguration", "SRSolveInfo"]


def _cg(op, b: np.ndarray, tol: float, maxiter: int | None):
    """``scipy.sparse.linalg.cg`` with an iteration counter and a version shim.

    SciPy renamed the relative tolerance from ``tol`` to ``rtol`` in 1.12;
    passing the wrong keyword TypeErrors, so the name is resolved from the
    live signature. Returns ``(solution, info, iterations)``.
    """
    iterations = 0

    def _count(_xk) -> None:
        nonlocal iterations
        iterations += 1

    kwargs = {"atol": 0.0, "maxiter": maxiter, "callback": _count}
    if "rtol" in inspect.signature(scipy.sparse.linalg.cg).parameters:
        kwargs["rtol"] = tol
    else:  # SciPy < 1.12 spelled the relative tolerance 'tol'
        kwargs["tol"] = tol
    sol, info = scipy.sparse.linalg.cg(op, b, **kwargs)
    return sol, info, iterations


@dataclass(frozen=True)
class SRSolveInfo:
    """Diagnostics of one ``natural_gradient`` solve.

    Attributes
    ----------
    solver:
        The *resolved* solver — ``'dense'`` or ``'cg'``, never ``'auto'``.
    distributed:
        Whether the solve allreduced over a communicator.
    d, samples:
        Parameter count and **global** sample count feeding the Fisher
        estimate (summed over ranks in distributed solves).
    iterations:
        CG iterations taken (0 on the dense path).
    residual:
        Relative residual ``‖(S + λI)δ − F‖ / ‖F‖`` of the returned
        direction against the global system.
    incomplete:
        CG stopped at ``cg_maxiter`` before reaching ``cg_tol`` (the
        partial iterate is still a descent direction and is returned).
    comm_bytes:
        Collective payload bytes this solve moved (0 in serial solves):
        O(d·iters) for CG, O(d²) for dense.
    """

    solver: str
    distributed: bool
    d: int
    samples: int
    iterations: int
    residual: float
    incomplete: bool
    comm_bytes: int


class StochasticReconfiguration:
    """Natural-gradient preconditioner built from per-sample log-derivatives.

    Parameters
    ----------
    diag_shift:
        Regularisation λ added to the diagonal of S (paper: 0.001).
    solver:
        ``'dense'``, ``'cg'`` or ``'auto'`` (dense below ``dense_threshold``).
        Honoured identically in serial and distributed solves.
    dense_threshold:
        Parameter-count crossover for ``'auto'``.
    cg_tol, cg_maxiter:
        Conjugate-gradient stopping controls (matrix-free path).

    Attributes
    ----------
    last_solve:
        :class:`SRSolveInfo` of the most recent solve (None before the
        first).
    last_cg_incomplete:
        Whether the most recent solve was a CG solve that hit
        ``cg_maxiter``; ``False`` after dense solves and before the first
        solve.
    tracer:
        Span recorder for solve sub-spans (``sr.center`` / ``sr.dense`` /
        ``sr.cg``); defaults to the shared disabled tracer. Attach with
        :meth:`attach_tracer` — the VQMC driver does this for you.
    metrics:
        Optional :class:`repro.obs.Metrics`; when set, each solve bumps
        ``sr.solves`` / ``sr.cg_iterations`` / ``sr.cg_incomplete`` /
        ``sr.comm_bytes`` and gauges ``sr.residual``.
    """

    tracer: Tracer = NULL_TRACER

    def __init__(
        self,
        diag_shift: float = 1e-3,
        solver: str = "auto",
        dense_threshold: int = 2000,
        cg_tol: float = 1e-10,
        cg_maxiter: int | None = None,
    ):
        if diag_shift < 0:
            raise ValueError(f"diag_shift must be >= 0, got {diag_shift}")
        if solver not in ("dense", "cg", "auto"):
            raise ValueError(f"unknown solver {solver!r}")
        self.diag_shift = diag_shift
        self.solver = solver
        self.dense_threshold = dense_threshold
        self.cg_tol = cg_tol
        self.cg_maxiter = cg_maxiter
        self.last_cg_incomplete = False
        self.last_solve: SRSolveInfo | None = None
        self.metrics = None

    def attach_tracer(self, tracer: Tracer) -> None:
        """Report solve sub-spans on ``tracer`` (the Communicator idiom)."""
        self.tracer = tracer

    # -- matrix construction ----------------------------------------------------

    @staticmethod
    def fisher_matrix(per_sample_o: np.ndarray) -> np.ndarray:
        """Dense centred overlap matrix ``S`` from ``O`` of shape (B, d)."""
        o = np.asarray(per_sample_o, dtype=np.float64)
        oc = o - o.mean(axis=0, keepdims=True)
        return oc.T @ oc / o.shape[0]

    # -- centring and the matrix-free operator -----------------------------------

    @staticmethod
    def _center(o: np.ndarray, comm) -> tuple[np.ndarray, int]:
        """Centre ``O`` with the (global) mean; return ``(Oc, total_count)``.

        With a communicator the mean is the **global** one — allreducing
        the length-``d+1`` vector ``[Σ_local O, B_local]`` yields both the
        column sums and the global sample count in one collective.
        """
        bsz, d = o.shape
        if comm is None or comm.size == 1:
            return o - o.mean(axis=0, keepdims=True), bsz
        sums = comm.allreduce(
            np.concatenate([o.sum(axis=0), [float(bsz)]]), op="sum"
        )
        total = int(round(sums[-1]))
        return o - sums[:d] / total, total

    def fisher_operator(self, per_sample_o: np.ndarray, comm=None):
        """The action of ``(S + λI)`` on d-vectors, matrix-free.

        Returns ``(matvec, total_count)`` where ``matvec(v)`` evaluates the
        globally-centred ``Ocᵀ(Oc v)/N + λv``. With a communicator, each
        call allreduces one d-vector — never a d×d matrix — so the
        operator is exactly the dense global-S matvec (property-tested in
        ``tests/test_optim/test_sr_distributed.py``) at O(d) communication.
        """
        o = np.asarray(per_sample_o, dtype=np.float64)
        oc, total = self._center(o, comm)
        matvec = self._matvec_from(oc, total, comm)
        return matvec, total

    def _matvec_from(self, oc: np.ndarray, total: int, comm):
        distributed = comm is not None and comm.size > 1

        def matvec(v: np.ndarray) -> np.ndarray:
            sv = oc.T @ (oc @ v)
            if distributed:
                sv = comm.allreduce(sv, op="sum")
            return sv / total + self.diag_shift * v

        return matvec

    # -- solve -------------------------------------------------------------------

    def natural_gradient(
        self, per_sample_o: np.ndarray, grad: np.ndarray, comm=None
    ) -> np.ndarray:
        """Return ``(S + λI)^{-1} grad`` for the (global) Fisher matrix.

        Parameters
        ----------
        per_sample_o:
            This rank's ``O`` shard, shape ``(B_local, d)``.
        grad:
            The *globally reduced* energy gradient, shape ``(d,)`` —
            identical on every rank in distributed runs.
        comm:
            Optional communicator. When given (and ``size > 1``), the
            solve targets the global system over all ranks' samples:
            the CG path allreduces only d-vectors (one per iteration);
            the dense path allreduces the d×d moment matrix. All solver
            selection (``'auto'``/``'dense'``/``'cg'``) and CG controls
            behave identically in serial and parallel.
        """
        o = np.asarray(per_sample_o, dtype=np.float64)
        grad = np.asarray(grad, dtype=np.float64)
        bsz, d = o.shape
        if grad.shape != (d,):
            raise ValueError(f"grad shape {grad.shape} != ({d},)")

        distributed = comm is not None and comm.size > 1
        bytes_before = comm.stats.collective_bytes if distributed else 0
        tracer = self.tracer

        # 'auto' resolves on d alone — identical on every rank, so all
        # ranks pick the same path and issue congruent collectives.
        solver = self.solver
        if solver == "auto":
            solver = "dense" if d <= self.dense_threshold else "cg"

        with tracer.span("sr.center", d=d, distributed=distributed):
            oc, total = self._center(o, comm)

        if solver == "dense":
            with tracer.span("sr.dense", d=d, distributed=distributed):
                s = oc.T @ oc
                if distributed:
                    s = comm.allreduce(s, op="sum")
                s /= total
                s[np.diag_indices_from(s)] += self.diag_shift
                sol = scipy.linalg.solve(s, grad, assume_a="pos")
                residual = float(
                    np.linalg.norm(s @ sol - grad)
                    / max(np.linalg.norm(grad), np.finfo(np.float64).tiny)
                )
            iterations, incomplete = 0, False
        else:
            matvec = self._matvec_from(oc, total, comm)
            op = scipy.sparse.linalg.LinearOperator((d, d), matvec=matvec)
            with tracer.span("sr.cg", d=d, distributed=distributed):
                sol, info, iterations = _cg(op, grad, self.cg_tol, self.cg_maxiter)
                # One extra matvec for the residual — 1/iters overhead,
                # and it keeps "incomplete" quantified, not just flagged.
                residual = float(
                    np.linalg.norm(matvec(sol) - grad)
                    / max(np.linalg.norm(grad), np.finfo(np.float64).tiny)
                )
            # info > 0: CG hit maxiter; the partial solution is still a
            # descent direction (S is PSD + λI), so use it but record it.
            incomplete = info > 0

        self.last_cg_incomplete = incomplete
        comm_bytes = (
            comm.stats.collective_bytes - bytes_before if distributed else 0
        )
        self.last_solve = SRSolveInfo(
            solver=solver,
            distributed=distributed,
            d=d,
            samples=total,
            iterations=iterations,
            residual=residual,
            incomplete=incomplete,
            comm_bytes=comm_bytes,
        )
        metrics = self.metrics
        if metrics is not None:
            metrics.inc("sr.solves")
            metrics.inc("sr.cg_iterations", iterations)
            if incomplete:
                metrics.inc("sr.cg_incomplete")
            metrics.inc("sr.comm_bytes", comm_bytes)
            metrics.set("sr.residual", residual)
        return sol

    # -- gradient assembly (shared with the VQMC driver) ---------------------------

    @staticmethod
    def energy_gradient(
        per_sample_o: np.ndarray, local_energies: np.ndarray
    ) -> np.ndarray:
        """Covariance form ``F_k = ⟨(l - ⟨l⟩) O_k⟩`` — half the paper's Eq. 5."""
        o = np.asarray(per_sample_o, dtype=np.float64)
        l = np.asarray(local_energies, dtype=np.float64)
        centred = l - l.mean()
        return centred @ o / o.shape[0]
