"""RMSprop and AdaGrad — additional first-order optimisers.

Not used in the paper's tables but common in the NQS literature; provided
for the ablation harnesses and downstream users, with reference-checked
update rules.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer

__all__ = ["RMSprop", "AdaGrad"]


class RMSprop(Optimizer):
    """``v ← α v + (1−α) g²;  θ ← θ − lr · g / (√v + ε)``."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = alpha
        self.eps = eps
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._v):
            if p.grad is None:
                continue
            v *= self.alpha
            v += (1.0 - self.alpha) * p.grad**2
            p.data -= self.lr * p.grad / (np.sqrt(v) + self.eps)
            p.bump_version()

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "alpha": self.alpha,
            "eps": self.eps,
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.alpha = state["alpha"]
        self.eps = state["eps"]
        self._v = [v.copy() for v in state["v"]]


class AdaGrad(Optimizer):
    """``G ← G + g²;  θ ← θ − lr · g / (√G + ε)`` — monotone per-coordinate
    step decay."""

    def __init__(
        self, params: Sequence[Parameter], lr: float = 0.1, eps: float = 1e-10
    ):
        super().__init__(params, lr)
        self.eps = eps
        self._g2 = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, g2 in zip(self.params, self._g2):
            if p.grad is None:
                continue
            g2 += p.grad**2
            p.data -= self.lr * p.grad / (np.sqrt(g2) + self.eps)
            p.bump_version()

    def state_dict(self) -> dict:
        return {"lr": self.lr, "eps": self.eps, "g2": [g.copy() for g in self._g2]}

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.eps = state["eps"]
        self._g2 = [g.copy() for g in state["g2"]]
