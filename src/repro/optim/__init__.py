"""Optimisers and the stochastic-reconfiguration (natural gradient) engine.

The paper trains with SGD (lr 0.1) or Adam (lr 0.01), optionally
preconditioned by stochastic reconfiguration (SR, Sorella 1998) with
diagonal shift λ = 0.001 and lr 0.1 (§5.1 "Training").
"""

from repro.optim.base import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.rmsprop import RMSprop, AdaGrad
from repro.optim.sr import SRSolveInfo, StochasticReconfiguration
from repro.optim.lr_scheduler import ConstantLR, StepLR, CosineAnnealingLR

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "RMSprop",
    "AdaGrad",
    "StochasticReconfiguration",
    "SRSolveInfo",
    "ConstantLR",
    "StepLR",
    "CosineAnnealingLR",
]
