"""Optimiser base class (reads ``.grad`` buffers, updates ``.data`` in place)."""

from __future__ import annotations

from typing import Sequence

from repro.nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class over a flat list of parameters.

    Subclasses implement :meth:`step`, which must treat ``p.grad is None``
    as a zero gradient (a parameter untouched by the current graph).
    """

    def __init__(self, params: Sequence[Parameter], lr: float):
        params = list(params)
        if not params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = params
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
