"""Adam (Kingma & Ba 2015) — the paper's default optimiser (lr 0.01)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = (b1, b2)
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= b1
            m += (1.0 - b1) * p.grad
            v *= b2
            v += (1.0 - b2) * p.grad**2
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            p.bump_version()

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "betas": self.betas,
            "eps": self.eps,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
            "t": self._t,
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.betas = state["betas"]
        self.eps = state["eps"]
        self._m = [m.copy() for m in state["m"]]
        self._v = [v.copy() for v in state["v"]]
        self._t = state["t"]
