"""Learning-rate schedules.

The paper applies no scheduler ("No learning rate scheduler is applied",
§5.1); :class:`ConstantLR` is the faithful default. Step and cosine
schedules are provided as the natural extension knobs for the ablation
benches.
"""

from __future__ import annotations

import math

from repro.optim.base import Optimizer

__all__ = ["ConstantLR", "StepLR", "CosineAnnealingLR"]


class _Scheduler:
    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()


class ConstantLR(_Scheduler):
    """No-op schedule (the paper's setting)."""

    def get_lr(self) -> float:
        return self.base_lr


class StepLR(_Scheduler):
    """Multiply lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from base lr to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError(f"t_max must be >= 1, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        frac = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * frac)
        )
