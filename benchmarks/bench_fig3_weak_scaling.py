"""Figure 3 / Table 7 companion — weak scaling of AUTO sampling.

Paper's claim: with the per-GPU mini-batch fixed, execution time is flat as
GPUs are added (normalised times ≈ 1 across configurations 1×1 … 6×4),
because exact sampling needs no coordination and the gradient allreduce is
tiny (O(hn) floats).

Two reproductions:

1. **Calibrated V100 model** at the paper's dimensions (1K/2K/5K/10K) and
   all nine GPU configurations — regenerates the normalised-time bars.
2. **Real multiprocess runs** on this machine: fixed mini-batch per rank,
   L ∈ {1, 2, 4} OS processes; wall time per iteration should stay roughly
   flat (subject to CPU core contention, which we report alongside).
"""

from __future__ import annotations

import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, parse_args  # noqa: E402

from repro.cluster import calibrate_to_table1  # noqa: E402
from repro.cluster.memory import PAPER_MBS_LADDER  # noqa: E402

CONFIGS = [(1, 1), (1, 2), (1, 4), (2, 2), (2, 4), (4, 2), (4, 4), (8, 2), (6, 4)]


def bench_ring_allreduce_gradient_sized(benchmark):
    """The only communication in the paper's scheme: allreduce of d floats."""
    from repro.distributed import run_threaded

    d = 2 * 170 * 1000 + 170 + 1000  # MADE n=1000 gradient length

    def work(comm, rank):
        return comm.allreduce(np.ones(d))

    benchmark(lambda: run_threaded(work, 4))


def _dp_worker(comm, rank, n, mbs, iters):
    from repro.core import VQMC
    from repro.hamiltonians import TransverseFieldIsing
    from repro.models import MADE
    from repro.optim import Adam
    from repro.samplers import AutoregressiveSampler
    from repro.utils.rng import spawn_generators

    model = MADE(n, rng=np.random.default_rng(0))
    ham = TransverseFieldIsing.random(n, seed=1)
    vqmc = VQMC(
        model, ham, AutoregressiveSampler(), Adam(model.parameters()),
        comm=comm, seed=spawn_generators(42, comm.size)[rank],
    )
    start = time.perf_counter()
    vqmc.run(iters, batch_size=mbs)
    return time.perf_counter() - start


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])

    # ---- 1. analytic model at paper scale -----------------------------------
    made_model, _ = calibrate_to_table1()
    dims = (1000, 2000, 5000, 10000)
    table = made_model.weak_scaling_table(
        dims, {n: PAPER_MBS_LADDER[n] for n in dims}, CONFIGS, iterations=300
    )
    rows = []
    for n in dims:
        times = np.array([table[n][cfg] for cfg in CONFIGS])
        normalised = times / table[n][(6, 4)]
        rows.append([f"{n}"] + [f"{v:.3f}" for v in normalised])
    print(format_table(
        ["n \\ config"] + [f"{a}x{b}" for a, b in CONFIGS],
        rows,
        title="Figure 3 (model): normalised sampling time (ref = 6x4)",
    ))

    # ---- 2. real multiprocess weak scaling ----------------------------------
    from repro.distributed.mp import run_processes

    n = 200 if args.paper else 60
    mbs = 64 if args.paper else 32
    iters = args.iters or (20 if args.paper else 8)
    import os

    cores = os.cpu_count() or 1
    rows = []
    base = None
    for L in (1, 2, 4):
        results = run_processes(_dp_worker, L, args=(n, mbs, iters), timeout=600)
        wall = max(results)  # slowest rank bounds the iteration
        if base is None:
            base = wall
        # On a machine with fewer cores than ranks the L replicas timeshare,
        # so raw wall time necessarily grows ∝ L. The meaningful weak-scaling
        # witness is then the *work-normalised* time wall / ceil(L / cores):
        # flat ⇔ adding ranks adds no coordination overhead.
        slots = -(-L // cores)  # ceil
        rows.append([L, L * mbs, wall, wall / slots, (wall / slots) / base])
    print()
    print(format_table(
        ["ranks L", "effective bs", "wall (s)", "wall/timeshare (s)", "normalised"],
        rows,
        title=f"Figure 3 (measured, n={n}, mbs={mbs}/rank, {iters} iters, "
        f"OS processes, {cores} CPU core(s))",
    ))
    print(
        "\nFlat 'normalised' values mean the coordination cost (broadcast +\n"
        "per-step ring allreduce) does not grow with L — the paper's\n"
        "weak-scaling property. With dedicated devices per rank (paper's\n"
        "GPUs) raw wall time itself is flat, as the model table above shows."
    )


if __name__ == "__main__":
    main()
