"""Ablation — collective algorithms: ring vs recursive doubling vs naive.

DESIGN.md's distributed layer implements three allreduce algorithms over
the same point-to-point channels. This bench measures them on the thread
backend across payload sizes and world sizes, and cross-checks the
analytic α–β model's predictions (latency-bound → recursive doubling wins;
bandwidth-bound → ring wins).
"""

from __future__ import annotations

import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, parse_args  # noqa: E402

from repro.cluster.comm_model import allreduce_time  # noqa: E402
from repro.distributed import run_threaded  # noqa: E402


def _measure(alg: str, world: int, payload: int, repeats: int = 5) -> float:
    def worker(comm, rank):
        comm.algorithm = alg
        arr = np.ones(payload)
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(repeats):
            comm.allreduce(arr)
        return (time.perf_counter() - t0) / repeats

    return max(run_threaded(worker, world))


def bench_allreduce_ring_threads(benchmark):
    benchmark(lambda: _measure("ring", 4, 10_000, repeats=1))


def bench_allreduce_rec_double_threads(benchmark):
    benchmark(lambda: _measure("rec_double", 4, 10_000, repeats=1))


def bench_allreduce_naive_threads(benchmark):
    benchmark(lambda: _measure("naive", 4, 10_000, repeats=1))


def main() -> None:
    parse_args(__doc__.splitlines()[0])
    rows = []
    for world in (4, 8):
        for payload in (64, 10_000, 1_000_000):
            times = {
                alg: _measure(alg, world, payload) * 1e3
                for alg in ("ring", "rec_double", "naive")
            }
            best = min(times, key=times.get)
            rows.append([world, payload, times["ring"], times["rec_double"],
                         times["naive"], best])
    print(format_table(
        ["L", "payload (floats)", "ring (ms)", "rec_double (ms)",
         "naive (ms)", "winner"],
        rows,
        title="Collective-algorithm ablation (thread backend)",
    ))

    # Analytic model's prediction for a V100-cluster-like fabric.
    rows = []
    for payload in (64, 10_000, 1_000_000):
        ring = allreduce_time(payload, 8, 12.5e9, 2e-6) * 1e6
        # Recursive doubling: log2(L) rounds, full payload each round.
        rd = (np.log2(8) * (2e-6 + payload * 4 / 12.5e9)) * 1e6
        rows.append([payload, ring, rd, "rec_double" if rd < ring else "ring"])
    print()
    print(format_table(
        ["payload (floats)", "ring (µs)", "rec_double (µs)", "model winner"],
        rows,
        title="α–β model (L=8, IB 12.5 GB/s, 2 µs latency)",
    ))
    print("\nExpected: recursive doubling wins tiny payloads (latency-bound),\n"
          "ring wins large payloads (bandwidth-optimal 2(L-1)/L factor).")


if __name__ == "__main__":
    main()
