"""Regenerate every experiment table into ``benchmarks/out/``.

Runs each ``bench_*.py`` harness's ``main()`` in its reduced preset and
tees the output to ``benchmarks/out/<name>.txt``. The full set takes tens
of minutes on one CPU; pass harness names to run a subset:

    python benchmarks/run_all.py                 # everything
    python benchmarks/run_all.py table1 fig3     # substring filter
"""

from __future__ import annotations

import contextlib
import importlib.util
import io
import pathlib
import sys
import time
import traceback

BENCH_DIR = pathlib.Path(__file__).parent
OUT_DIR = BENCH_DIR / "out"


def discover() -> list[pathlib.Path]:
    return sorted(BENCH_DIR.glob("bench_*.py"))


def run_one(path: pathlib.Path) -> tuple[bool, float]:
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    buffer = io.StringIO()
    start = time.perf_counter()
    ok = True
    # Harness main()s parse sys.argv — present them a clean one.
    old_argv = sys.argv
    sys.argv = [str(path)]
    try:
        with contextlib.redirect_stdout(buffer):
            spec.loader.exec_module(module)
            module.main()
    except Exception:  # noqa: BLE001 — recorded per harness, run continues
        ok = False
        buffer.write("\n" + traceback.format_exc())
    finally:
        sys.argv = old_argv
    elapsed = time.perf_counter() - start
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{path.stem}.txt").write_text(buffer.getvalue(), encoding="utf-8")
    return ok, elapsed


def main(filters: list[str]) -> int:
    targets = [
        p for p in discover()
        if not filters or any(f in p.stem for f in filters)
    ]
    if not targets:
        print(f"no harness matches {filters!r}")
        return 1
    failures = 0
    for path in targets:
        print(f"[{path.stem}] running ...", flush=True)
        ok, elapsed = run_one(path)
        status = "ok" if ok else "FAILED"
        print(f"[{path.stem}] {status} in {elapsed:.1f}s "
              f"→ out/{path.stem}.txt")
        failures += not ok
    print(f"\n{len(targets) - failures}/{len(targets)} harnesses succeeded; "
          f"outputs in {OUT_DIR}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
