"""Ablation — gradient estimator paths: autograd tape vs per-sample matrix.

The VQMC driver supports two mathematically identical gradient paths
(verified equal in the tests):

- ``autograd``: one backward pass through the tape — O(forward) memory,
  cheapest when only the mean gradient is needed;
- ``per_sample``: the closed-form (B, d) score matrix — more memory/compute
  but required by stochastic reconfiguration, which consumes O anyway.

This bench quantifies the cost difference and the SR overhead on top.
"""

from __future__ import annotations

import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, parse_args  # noqa: E402

from repro.core.vqmc import VQMC, VQMCConfig  # noqa: E402
from repro.hamiltonians import TransverseFieldIsing  # noqa: E402
from repro.models import MADE  # noqa: E402
from repro.optim import SGD, StochasticReconfiguration  # noqa: E402
from repro.samplers import AutoregressiveSampler  # noqa: E402


def _make(n: int, mode: str, sr: bool):
    model = MADE(n, rng=np.random.default_rng(0))
    ham = TransverseFieldIsing.random(n, seed=1)
    return VQMC(
        model, ham, AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.1),
        sr=StochasticReconfiguration() if sr else None,
        seed=2,
        config=VQMCConfig(gradient_mode=mode),
    )


def _time_steps(vqmc, batch: int, steps: int = 5) -> float:
    vqmc.step(batch_size=batch)  # warm-up
    t0 = time.perf_counter()
    for _ in range(steps):
        vqmc.step(batch_size=batch)
    return (time.perf_counter() - t0) / steps


def bench_step_autograd(benchmark):
    vqmc = _make(30, "autograd", sr=False)
    benchmark(lambda: vqmc.step(batch_size=128))


def bench_step_per_sample(benchmark):
    vqmc = _make(30, "per_sample", sr=False)
    benchmark(lambda: vqmc.step(batch_size=128))


def bench_step_per_sample_sr(benchmark):
    vqmc = _make(30, "per_sample", sr=True)
    benchmark(lambda: vqmc.step(batch_size=128))


def main() -> None:
    parse_args(__doc__.splitlines()[0])
    rows = []
    for n in (20, 50, 100):
        t_auto = _time_steps(_make(n, "autograd", False), batch=256) * 1e3
        t_ps = _time_steps(_make(n, "per_sample", False), batch=256) * 1e3
        t_sr = _time_steps(_make(n, "per_sample", True), batch=256) * 1e3
        rows.append([n, t_auto, t_ps, t_sr, t_ps / t_auto, t_sr / t_ps])
    print(format_table(
        ["n", "autograd (ms)", "per-sample (ms)", "per-sample+SR (ms)",
         "ps/auto", "sr/ps"],
        rows,
        title="Gradient-path ablation (bs=256, per training step)",
    ))


if __name__ == "__main__":
    main()
