"""Shared machinery for the benchmark harnesses.

Every ``bench_*.py`` in this directory regenerates one table or figure from
the paper. Each file works in two modes:

- as a pytest-benchmark suite (``pytest benchmarks/ --benchmark-only``):
  micro-benchmarks of the operation the experiment times, at a scale that
  finishes in milliseconds;
- as a standalone script (``python benchmarks/bench_tableX_*.py``):
  regenerates the full table. The default preset is *reduced* (smaller
  dimensions / iterations / seeds so a CPU finishes in minutes); pass
  ``--paper`` for the paper's exact parameters (V100-cluster scale — only
  sensible for the analytic-model harnesses).

The experimental protocol itself (§5.1 architectures, optimiser settings,
MCMC defaults) lives in :mod:`repro.experiments.protocol`; this module just
re-exports it and adds harness-side conveniences (CLI, table helpers).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.experiments.protocol import (  # noqa: F401 — re-exported
    TrainOutcome,
    build_model,
    build_optimizer,
    build_sampler,
    make_hamiltonian,
    train_once,
)
from repro.utils.tables import format_table  # noqa: F401 — re-exported

__all__ = [
    "PAPER_DIMS",
    "OUT_DIR",
    "build_model",
    "build_sampler",
    "build_optimizer",
    "make_hamiltonian",
    "train_once",
    "TrainOutcome",
    "parse_args",
    "format_table",
    "mean_std",
    "emit_json",
]

PAPER_DIMS = (20, 50, 100, 200, 500)

OUT_DIR = Path(__file__).parent / "out"


def emit_json(name: str, payload: dict, out_dir: Path | str | None = None) -> Path:
    """Write ``BENCH_<name>.json`` next to the text outputs.

    Every harness emits its measurements in this machine-readable envelope
    so the perf trajectory of the hot paths (sampling / local-energy
    throughput, training time) can be tracked commit over commit instead of
    parsed out of formatted tables. ``payload`` carries the
    benchmark-specific fields (typically a ``results`` row list); the
    envelope adds provenance.
    """
    out = Path(out_dir) if out_dir is not None else OUT_DIR
    out.mkdir(parents=True, exist_ok=True)
    doc = {
        "benchmark": name,
        "schema_version": 1,
        "unix_time": round(time.time(), 3),  # repro-lint: disable=det-wall-clock -- provenance timestamp in the output envelope, never an input to any computation
        "python": platform.python_version(),
        "numpy": np.__version__,
        **payload,
    }
    path = out / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"[json] wrote {path}")
    return path


def parse_args(description: str) -> argparse.Namespace:
    """Standard CLI for all harnesses: --paper for full parameters."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the paper's full parameters (V100-cluster scale; the "
        "measured harnesses will be very slow on CPU)",
    )
    parser.add_argument("--seeds", type=int, default=None, help="override #seeds")
    parser.add_argument("--iters", type=int, default=None, help="override #iterations")
    return parser.parse_args()


def mean_std(values) -> tuple[float, float]:
    arr = np.asarray(values, dtype=np.float64)
    return float(arr.mean()), float(arr.std())
