"""Shared machinery for the benchmark harnesses.

Every ``bench_*.py`` in this directory regenerates one table or figure from
the paper. Each file works in two modes:

- as a pytest-benchmark suite (``pytest benchmarks/ --benchmark-only``):
  micro-benchmarks of the operation the experiment times, at a scale that
  finishes in milliseconds;
- as a standalone script (``python benchmarks/bench_tableX_*.py``):
  regenerates the full table. The default preset is *reduced* (smaller
  dimensions / iterations / seeds so a CPU finishes in minutes); pass
  ``--paper`` for the paper's exact parameters (V100-cluster scale — only
  sensible for the analytic-model harnesses).

The experimental protocol itself (§5.1 architectures, optimiser settings,
MCMC defaults) lives in :mod:`repro.experiments.protocol`; this module just
re-exports it and adds harness-side conveniences (CLI, table helpers).
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.experiments.protocol import (  # noqa: F401 — re-exported
    TrainOutcome,
    build_model,
    build_optimizer,
    build_sampler,
    make_hamiltonian,
    train_once,
)
from repro.utils.tables import format_table  # noqa: F401 — re-exported

__all__ = [
    "PAPER_DIMS",
    "OUT_DIR",
    "build_model",
    "build_sampler",
    "build_optimizer",
    "make_hamiltonian",
    "train_once",
    "TrainOutcome",
    "parse_args",
    "format_table",
    "mean_std",
    "emit_json",
    "read_bench_json",
    "BENCH_SCHEMA_VERSION",
]

#: envelope schema: v2 added git_sha + hostname provenance stamps
BENCH_SCHEMA_VERSION = 2

PAPER_DIMS = (20, 50, 100, 200, 500)

OUT_DIR = Path(__file__).parent / "out"


def _git_sha() -> str | None:
    """Short commit SHA of the working tree, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def emit_json(name: str, payload: dict, out_dir: Path | str | None = None) -> Path:
    """Write ``BENCH_<name>.json`` next to the text outputs.

    Every harness emits its measurements in this machine-readable envelope
    so the perf trajectory of the hot paths (sampling / local-energy
    throughput, training time) can be tracked commit over commit instead of
    parsed out of formatted tables. ``payload`` carries the
    benchmark-specific fields (typically a ``results`` row list); the
    envelope adds provenance: schema version, wall timestamp, interpreter
    and numpy versions, and — since schema v2 — the git SHA and hostname,
    so ``tools/bench_track.py`` can attribute every trajectory point to a
    commit and a machine.
    """
    out = Path(out_dir) if out_dir is not None else OUT_DIR
    out.mkdir(parents=True, exist_ok=True)
    doc = {
        "benchmark": name,
        "schema_version": BENCH_SCHEMA_VERSION,
        "unix_time": round(time.time(), 3),  # repro-lint: disable=det-wall-clock -- provenance timestamp in the output envelope, never an input to any computation
        "python": platform.python_version(),
        "numpy": np.__version__,
        "git_sha": _git_sha(),
        "hostname": platform.node(),
        **payload,
    }
    path = out / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"[json] wrote {path}")
    return path


def read_bench_json(path: str | Path) -> dict:
    """Load a ``BENCH_*.json`` envelope, backfilling pre-v2 files.

    The committed corpus still contains schema-v1 documents (no
    ``git_sha`` / ``hostname``); those keys are normalised to ``None`` so
    readers (the bench observatory, tests) never need per-version paths.
    """
    path = Path(path)
    doc = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: not a benchmark envelope")
    doc.setdefault("benchmark", path.stem.removeprefix("BENCH_"))
    doc.setdefault("schema_version", 1)
    doc.setdefault("git_sha", None)
    doc.setdefault("hostname", None)
    return doc


def parse_args(description: str) -> argparse.Namespace:
    """Standard CLI for all harnesses: --paper for full parameters."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the paper's full parameters (V100-cluster scale; the "
        "measured harnesses will be very slow on CPU)",
    )
    parser.add_argument("--seeds", type=int, default=None, help="override #seeds")
    parser.add_argument("--iters", type=int, default=None, help="override #iterations")
    return parser.parse_args()


def mean_std(values) -> tuple[float, float]:
    arr = np.asarray(values, dtype=np.float64)
    return float(arr.mean()), float(arr.std())
