"""Figure 1 — the sampling-cost comparison the overview figure annotates.

Figure 1's quantitative content: producing a batch of ``bs`` samples costs

- MCMC: ``k + bs/c`` sequential forward passes (k burn-in steps, c chains),
- AUTO: exactly ``n`` forward passes, independent of ``bs``.

This harness measures the *actual* pass counts of both samplers across
batch sizes and chain counts and checks them against the formula, then
shows the consequence: AUTO's cost is flat in ``bs`` while MCMC's grows
linearly once ``bs/c`` passes the burn-in.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, parse_args  # noqa: E402

from repro.models import MADE, RBM  # noqa: E402
from repro.samplers import AutoregressiveSampler, MetropolisSampler  # noqa: E402


def bench_auto_batch_independence(benchmark):
    model = MADE(50, rng=np.random.default_rng(0))
    sampler = AutoregressiveSampler()
    rng = np.random.default_rng(1)
    benchmark(lambda: sampler.sample(model, 512, rng))


def main() -> None:
    parse_args(__doc__.splitlines()[0])
    n = 50
    made = MADE(n, rng=np.random.default_rng(0))
    rbm = RBM(n, rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)

    rows = []
    for bs in (64, 256, 1024, 4096):
        auto = AutoregressiveSampler()
        auto.sample(made, bs, rng)
        auto_passes = auto.last_stats.forward_passes
        row = [bs, auto_passes]
        for c in (1, 2, 8):
            mcmc = MetropolisSampler(n_chains=c)
            mcmc.sample(rbm, bs, rng)
            got = mcmc.last_stats.forward_passes
            formula = 1 + (3 * n + 100) + int(np.ceil(bs / c))
            assert got == formula, (got, formula)
            row.append(got)
        rows.append(row)
    print(format_table(
        ["batch size", "AUTO passes", "MCMC c=1", "MCMC c=2", "MCMC c=8"],
        rows,
        title=f"Figure 1: forward passes per batch (n={n}, burn-in k=3n+100)",
    ))
    print(
        "\nAUTO's pass count is exactly n regardless of batch size — every\n"
        "pass advances the whole batch one site. MCMC pays the k burn-in\n"
        "serially and then bs/c collection steps; all counts match the\n"
        "k + bs/c formula annotated in the paper's Figure 1."
    )


if __name__ == "__main__":
    main()
