"""Figure 1 — the sampling-cost comparison the overview figure annotates.

Figure 1's quantitative content: producing a batch of ``bs`` samples costs

- MCMC: ``k + bs/c`` sequential forward passes (k burn-in steps, c chains),
- AUTO: exactly ``n`` forward passes, independent of ``bs``.

This harness measures the *actual* pass counts of both samplers across
batch sizes and chain counts and checks them against the formula, then
shows the consequence: AUTO's cost is flat in ``bs`` while MCMC's grows
linearly once ``bs/c`` passes the burn-in.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import emit_json, format_table, parse_args  # noqa: E402

from repro.models import MADE, RBM  # noqa: E402
from repro.samplers import AutoregressiveSampler, MetropolisSampler  # noqa: E402


def bench_auto_batch_independence(benchmark):
    model = MADE(50, rng=np.random.default_rng(0))
    sampler = AutoregressiveSampler()
    rng = np.random.default_rng(1)
    benchmark(lambda: sampler.sample(model, 512, rng))


def main() -> None:
    parse_args(__doc__.splitlines()[0])
    n = 50
    made = MADE(n, rng=np.random.default_rng(0))
    rbm = RBM(n, rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)

    rows = []
    records = []
    for bs in (64, 256, 1024, 4096):
        naive = AutoregressiveSampler(method="naive")
        naive.sample(made, bs, rng)
        naive_passes = naive.last_stats.forward_passes
        assert naive_passes == n, (naive_passes, n)
        incr = AutoregressiveSampler()  # incremental by default
        incr.sample(made, bs, rng)
        incr_equiv = incr.last_stats.forward_pass_equivalents
        row = [bs, naive_passes, round(incr_equiv, 3)]
        record = {
            "batch_size": bs,
            "auto_naive_passes": naive_passes,
            "auto_incremental_pass_equivalents": incr_equiv,
        }
        for c in (1, 2, 8):
            mcmc = MetropolisSampler(n_chains=c)
            mcmc.sample(rbm, bs, rng)
            got = mcmc.last_stats.forward_passes
            formula = 1 + (3 * n + 100) + int(np.ceil(bs / c))
            assert got == formula, (got, formula)
            row.append(got)
            record[f"mcmc_passes_c{c}"] = got
        rows.append(row)
        records.append(record)
    print(format_table(
        ["batch size", "AUTO naive", "AUTO incr (equiv)",
         "MCMC c=1", "MCMC c=2", "MCMC c=8"],
        rows,
        title=f"Figure 1: forward passes per batch (n={n}, burn-in k=3n+100)",
    ))
    emit_json("fig1_sampling_cost", {"n": n, "results": records})
    print(
        "\nThe naive AUTO pass count is exactly n regardless of batch size —\n"
        "every pass advances the whole batch one site — and the incremental\n"
        "kernel shrinks the measured cost to ~1 pass-equivalent. MCMC pays\n"
        "the k burn-in serially and then bs/c collection steps; all counts\n"
        "match the k + bs/c formula annotated in the paper's Figure 1."
    )


if __name__ == "__main__":
    main()
