"""Table 5 — time to reach a target cut (MADE+AUTO vs RBM+MCMC, Adam).

Protocol (§6.3): after every training update, draw a fresh evaluation batch
and stop as soon as its score surpasses the target; evaluation time is
excluded. Paper's claim: MADE+AUTO hits the target 1–2 orders of magnitude
faster, and the gap widens with n.

Targets in the reduced preset are set to 85% of the Burer–Monteiro cut for
each instance (the paper hand-picked targets just under the converged
values); ``--paper`` uses the published targets.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import build_model, build_optimizer, build_sampler, format_table, parse_args  # noqa: E402

from repro.baselines import BurerMonteiro  # noqa: E402
from repro.core import HittingTime, VQMC  # noqa: E402
from repro.hamiltonians import MaxCut  # noqa: E402

PAPER_TARGETS = {20: 41, 50: 190, 100: 730, 200: 2800, 500: 16800}


def _hit(ham: MaxCut, arch: str, sampler_kind: str, target: float,
         batch: int, max_iters: int, seed: int) -> float | None:
    model = build_model(arch, ham.n, seed)
    sampler = build_sampler(sampler_kind, ham.n)
    optimizer, _ = build_optimizer("adam", model)
    vqmc = VQMC(model, ham, sampler, optimizer, seed=seed + 10_000)
    cb = HittingTime(
        target,
        score_fn=lambda x: float(ham.cut_value(x).mean()),
        eval_batch_size=batch,
    )
    vqmc.run(max_iters, batch_size=batch, callbacks=[cb])
    return cb.hit_time


def bench_hitting_time_made(benchmark):
    ham = MaxCut.random(16, seed=16)
    benchmark(lambda: _hit(ham, "made", "auto", target=20.0, batch=64,
                           max_iters=50, seed=0))


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    dims = (20, 50, 100, 200, 500) if args.paper else (16, 30)
    batch = 1024 if args.paper else 128
    max_iters = args.iters or (300 if args.paper else 150)
    seeds = range(args.seeds or (5 if args.paper else 2))

    rows = []
    for method, arch, samp in (
        ("MADE+AUTO", "made", "auto"),
        ("RBM+MCMC", "rbm", "mcmc"),
    ):
        row = [method]
        for n in dims:
            ham = MaxCut.random(n, seed=n)
            if args.paper and n in PAPER_TARGETS:
                target = PAPER_TARGETS[n]
            else:
                target = 0.85 * BurerMonteiro(rounds=30).solve(
                    ham.adjacency, seed=0
                ).value
            times = [
                _hit(ham, arch, samp, target, batch, max_iters, seed=s)
                for s in seeds
            ]
            if any(t is None for t in times):
                row.append("timeout")
            else:
                row.append(float(np.mean(times)))
        rows.append(row)
    print(format_table(
        ["method"] + [f"n={n}" for n in dims],
        rows,
        title="Table 5 — seconds to reach target cut (mean over seeds; "
        "training time only, evaluation excluded)",
    ))


if __name__ == "__main__":
    main()
